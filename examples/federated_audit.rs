//! Federated-database flavour (paper §8): autonomous member databases, no
//! global commitment for the well-behaved traffic — and a demonstration of
//! §3.2 compensation: a failed leg of a multi-database transaction is
//! erased everywhere by compensating subtransactions, invisibly to reads.
//!
//! ```text
//! cargo run --release --example federated_audit
//! ```

use threev::analysis::{Auditor, TxnStatus};
use threev::core::client::Arrival;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::model::{Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnPlan, UpdateOp};
use threev::sim::SimTime;

fn main() {
    // Three autonomous member databases, each with a ledger journal.
    let members: Vec<NodeId> = (0..3).map(NodeId).collect();
    let ledger = |m: NodeId| Key(1000 + m.0 as u64);
    let schema = Schema::new(
        members
            .iter()
            .map(|&m| KeyDecl::journal(ledger(m), m))
            .collect(),
    );

    // A federated posting writes all three ledgers.
    let posting = |amount: i64, tag: u32| {
        TxnPlan::commuting(
            SubtxnPlan::new(members[0])
                .update(ledger(members[0]), UpdateOp::Append { amount, tag })
                .child(
                    SubtxnPlan::new(members[1])
                        .update(ledger(members[1]), UpdateOp::Append { amount, tag }),
                )
                .child(
                    SubtxnPlan::new(members[2])
                        .update(ledger(members[2]), UpdateOp::Append { amount, tag }),
                ),
        )
    };
    let audit_plan = TxnPlan::read_only(
        SubtxnPlan::new(members[0])
            .read(ledger(members[0]))
            .child(SubtxnPlan::new(members[1]).read(ledger(members[1])))
            .child(SubtxnPlan::new(members[2]).read(ledger(members[2]))),
    );

    let ms = |x: u64| SimTime(x * 1_000);
    let arrivals = vec![
        Arrival::at(ms(1), posting(100, 1)),
        // This posting's member-2 leg fails — §3.2 compensation kicks in.
        Arrival::failing_at(ms(2), posting(999, 2), members[2]),
        Arrival::at(ms(3), posting(250, 3)),
        Arrival::at(ms(120), audit_plan),
    ];

    let mut cluster = ThreeVCluster::new(&schema, ClusterConfig::new(3), arrivals);
    cluster.run_until(ms(100));
    cluster.trigger_advancement(); // publish the postings for auditing
    cluster.run(SimTime(60_000_000));

    for r in cluster.records() {
        println!("{} {:<11} -> {:?}", r.id, r.kind.to_string(), r.status);
    }
    let records = cluster.records();
    assert_eq!(records[1].status, TxnStatus::Aborted, "failed posting");

    // The auditor's read (version 1) must see postings 1 and 3 on every
    // ledger, and NO trace of the compensated posting 2.
    let audit_rec = records.last().unwrap();
    for obs in &audit_rec.reads {
        let entries = obs.value.as_journal().unwrap();
        let tags: Vec<u32> = entries.iter().map(|e| e.tag).collect();
        println!("ledger {} sees postings tagged {tags:?}", obs.key);
        assert!(tags.contains(&1) && tags.contains(&3));
        assert!(!tags.contains(&2), "compensated posting leaked!");
    }

    let audit = Auditor::new(records).check();
    assert!(audit.clean(), "{audit:?}");
    let comps: u64 = cluster
        .node_stats()
        .iter()
        .map(|s| s.compensations_applied)
        .sum();
    println!("\ncompensating subtransactions applied: {comps}; audit CLEAN");
}
