//! The paper's §1 motivating example at full scale: a hospital with several
//! departments, concurrent patient visits, balance inquiries, and periodic
//! version advancement — plus the serializability audit proving that no
//! inquiry ever sees partial charges (Theorem 4.1).
//!
//! ```text
//! cargo run --release --example hospital_billing
//! ```

use threev::analysis::{Auditor, RunSummary, TxnStatus};
use threev::core::advance::AdvancementPolicy;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::sim::{SimDuration, SimTime};
use threev::workload::HospitalWorkload;

fn main() {
    let workload = HospitalWorkload {
        departments: 6,
        patients: 500,
        rate_tps: 8_000.0,
        read_pct: 25,
        max_fanout: 4,
        duration: SimDuration::from_secs(1),
        zipf_s: 1.0,
        seed: 2026,
    };
    let schema = workload.schema();
    let arrivals = workload.arrivals();
    println!(
        "hospital: {} departments, {} patients, {} transactions over 1s",
        workload.departments,
        workload.patients,
        arrivals.len()
    );

    let cfg = ClusterConfig::new(workload.departments).advancement(AdvancementPolicy::Periodic {
        first: SimDuration::from_millis(100),
        period: SimDuration::from_millis(100),
    });
    let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
    cluster.run_until(SimTime(4_000_000));

    let records = cluster.records();
    let summary = RunSummary::from_records(records, SimTime::ZERO, cluster.now());
    println!(
        "committed: {} read-only, {} visits; throughput {:.0} tps",
        summary.committed.0, summary.committed.1, summary.throughput_tps
    );
    println!(
        "visit latency: p50 {}us p99 {}us  |  inquiry latency: p50 {}us p99 {}us",
        summary.update_latency.p50(),
        summary.update_latency.p99(),
        summary.read_latency.p50(),
        summary.read_latency.p99(),
    );
    println!(
        "advancements: {}; max live versions of any item: {}",
        cluster.advancements().len(),
        cluster.max_versions_high_water()
    );

    assert!(records.iter().all(|r| r.status == TxnStatus::Committed));

    // Theorem 4.1: every inquiry saw, for each patient, exactly the visits
    // of versions <= its own — all charges of a visit or none.
    let audit = Auditor::new(records).check();
    println!(
        "audit: {} inquiries, {} (inquiry, visit) pairs checked -> {}",
        audit.reads_checked,
        audit.pairs_checked,
        if audit.clean() { "CLEAN" } else { "VIOLATIONS" }
    );
    assert!(audit.clean(), "{audit:?}");
}
