//! Point-of-sale retail with NC3V: commuting sales, read-only revenue
//! audits, and *non-commuting* price changes handled by the §5 extension —
//! exclusive locks, the `vu == vr + 1` gate, and two-phase commitment.
//!
//! ```text
//! cargo run --release --example retail_inventory
//! ```

use threev::analysis::{RunSummary, TxnStatus};
use threev::core::advance::AdvancementPolicy;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::model::TxnKind;
use threev::sim::{SimDuration, SimTime};
use threev::workload::RetailWorkload;

fn main() {
    let workload = RetailWorkload {
        stores: 4,
        products: 200,
        rate_tps: 5_000.0,
        read_pct: 15,
        nc_pct: 3,
        duration: SimDuration::from_millis(800),
        zipf_s: 1.1,
        seed: 88,
    };
    let schema = workload.schema();
    let arrivals = workload.arrivals();
    println!(
        "retail: {} stores, {} products, {} transactions (3% price changes)\n",
        workload.stores,
        workload.products,
        arrivals.len()
    );

    let cfg = ClusterConfig::new(workload.stores)
        .with_locks() // NC3V mode: the workload has non-commuting txns
        .advancement(AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(80),
            period: SimDuration::from_millis(80),
        });
    let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
    cluster.run_until(SimTime(5_000_000));

    let records = cluster.records();
    let summary = RunSummary::from_records(records, SimTime::ZERO, cluster.now());
    println!(
        "committed: {} audits, {} sales, {} price changes; {} aborted",
        summary.committed.0, summary.committed.1, summary.committed.2, summary.aborted
    );

    // Per-kind latency: sales stay fast; price changes pay for 2PC.
    let (sale_p99, price_p99) = {
        use threev::analysis::Histogram;
        let mut sales = Histogram::new();
        let mut prices = Histogram::new();
        for r in records {
            if r.status != TxnStatus::Committed {
                continue;
            }
            if let Some(l) = r.latency() {
                match r.kind {
                    TxnKind::Commuting => sales.record(l.as_micros()),
                    TxnKind::NonCommuting => prices.record(l.as_micros()),
                    TxnKind::ReadOnly => {}
                }
            }
        }
        (sales.p99(), prices.p99())
    };
    println!("sale p99: {sale_p99}us   price-change p99 (NC3V + 2PC): {price_p99}us");

    // NC3V bookkeeping across the cluster.
    let (mut gated, mut commits, mut stale_aborts) = (0, 0, 0);
    for s in cluster.node_stats() {
        gated += s.nc_gated;
        commits += s.nc_commits;
        stale_aborts += s.nc_stale_aborts;
    }
    println!(
        "NC3V: {commits} participant commits, {gated} roots gated at vu==vr+1, \
         {stale_aborts} stale-version aborts"
    );
    println!(
        "max live versions of any item: {} (bound: 3)",
        cluster.max_versions_high_water()
    );
    assert!(cluster.max_versions_high_water() <= 3);
}
