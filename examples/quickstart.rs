//! Quickstart: a two-node 3V cluster in ~50 lines.
//!
//! A multi-node update transaction (the paper's hospital visit) and a
//! multi-node read-only inquiry run concurrently; then a version
//! advancement makes the update visible to later reads — with no user
//! transaction ever waiting on anything remote.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use threev::core::client::Arrival;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::model::{Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnPlan, UpdateOp};
use threev::sim::SimTime;

fn main() {
    // Two departments, one balance counter each.
    let radiology = NodeId(0);
    let pediatrics = NodeId(1);
    let schema = Schema::new(vec![
        KeyDecl::counter(Key(1), radiology, 0),
        KeyDecl::counter(Key(2), pediatrics, 0),
    ]);

    // T1 = {w11(x1), w12(x2)}: one visit charging both departments.
    let visit = TxnPlan::commuting(
        SubtxnPlan::new(radiology)
            .update(Key(1), UpdateOp::Add(120))
            .child(SubtxnPlan::new(pediatrics).update(Key(2), UpdateOp::Add(80))),
    );
    // T2 = {r21(x1), r22(x2)}: a balance inquiry across both departments.
    let inquiry = || {
        TxnPlan::read_only(
            SubtxnPlan::new(radiology)
                .read(Key(1))
                .child(SubtxnPlan::new(pediatrics).read(Key(2))),
        )
    };

    let arrivals = vec![
        Arrival::at(SimTime(1_000), visit),
        Arrival::at(SimTime(1_100), inquiry()), // races the visit
        Arrival::at(SimTime(200_000), inquiry()), // after advancement
    ];

    let mut cluster = ThreeVCluster::new(&schema, ClusterConfig::new(2), arrivals);

    // Let the visit and the first inquiry finish, then advance versions.
    cluster.run_until(SimTime(100_000));
    cluster.trigger_advancement();
    cluster.run(SimTime(10_000_000));

    for record in cluster.records() {
        let total: i64 = record
            .reads
            .iter()
            .filter_map(|o| o.value.as_counter())
            .sum();
        println!(
            "{} {:<13} version {:?} status {:?}{}",
            record.id,
            record.kind.to_string(),
            record.version.expect("versioned engine"),
            record.status,
            if record.reads.is_empty() {
                String::new()
            } else {
                format!("  -> read total balance {total}")
            }
        );
    }

    // The racing inquiry read version 0 (total 0): it saw either ALL of the
    // visit or NONE of it — never a partial charge. The late inquiry read
    // version 1 (total 200).
    let late = cluster.records().last().unwrap();
    let total: i64 = late.reads.iter().filter_map(|o| o.value.as_counter()).sum();
    assert_eq!(total, 200);
    println!(
        "\nadvancements: {}; max live versions of any item: {} (3V bound: <= 3)",
        cluster.advancements().len(),
        cluster.max_versions_high_water()
    );
}
