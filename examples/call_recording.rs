//! Telephone call recording — the application that motivated the paper —
//! contrasted against running the very same workload with no coordination:
//! 3V keeps bills exact while the uncoordinated system bills partial calls.
//!
//! ```text
//! cargo run --release --example call_recording
//! ```

use threev::analysis::Auditor;
use threev::baselines::NoCoordCluster;
use threev::core::advance::AdvancementPolicy;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::sim::{SimConfig, SimDuration, SimTime};
use threev::workload::TelecomWorkload;

fn main() {
    let workload = TelecomWorkload {
        switches: 6,
        accounts: 400,
        rate_tps: 10_000.0,
        read_pct: 8,
        inter_region_pct: 70,
        duration: SimDuration::from_millis(800),
        zipf_s: 1.1,
        seed: 1997, // ICDE 1997
    };
    let schema = workload.schema();
    let arrivals = workload.arrivals();
    println!(
        "telecom: {} switches, {} accounts, {} calls+bills over 0.8s\n",
        workload.switches,
        workload.accounts,
        arrivals.len()
    );

    // --- 3V ---------------------------------------------------------------
    let cfg = ClusterConfig::new(workload.switches).advancement(AdvancementPolicy::Periodic {
        first: SimDuration::from_millis(50),
        period: SimDuration::from_millis(50),
    });
    let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals.clone());
    cluster.run_until(SimTime(4_000_000));
    let audit = Auditor::new(cluster.records()).check();
    println!(
        "3V:        {} bills audited against {} (bill, call) pairs -> {} violations",
        audit.reads_checked,
        audit.pairs_checked,
        audit.total_violations()
    );
    assert!(audit.clean());

    // --- The same calls with no coordination -------------------------------
    let mut nocoord =
        NoCoordCluster::new(&schema, workload.switches, SimConfig::seeded(1), arrivals);
    nocoord.run(SimTime(4_000_000));
    let audit = Auditor::new(nocoord.records()).check();
    println!(
        "no-coord:  {} bills audited against {} (bill, call) pairs -> {} violations",
        audit.reads_checked,
        audit.pairs_checked,
        audit.total_violations()
    );
    println!(
        "\nthe paper's anomaly, measured: {} bills included only one leg of an\n\
         inter-region call (atomicity violations) under no coordination.",
        audit.atomicity_violations
    );
    assert!(
        audit.atomicity_violations > 0,
        "expected anomalies in the race"
    );
}
