//! Property: crash-restart recovery preserves 3V correctness.
//!
//! A database node is crash-injected mid-advancement: its volatile state
//! (store, counters, version variables, in-flight bookkeeping) is dropped
//! and its inbox purged, then it restarts from its checkpoint plus WAL
//! tail ([`threev::durability`]). With coordinator retransmission enabled
//! and every node handler idempotent, the advancement must still complete
//! exactly once, the recovered node must catch up on `(vr, vu)` through
//! the paper's §2.3/§4.1 version-skew rules, and the final stores must be
//! byte-identical to a zero-fault run of the same seed.
//!
//! The crash instants are derived from the clean run's own
//! [`AdvancementRecord`] phase windows. That is sound because the crashed
//! run is schedule-identical to the clean run up to the crash instant:
//! crash events are injected at construction (a uniform sequence-number
//! shift that preserves relative order of ordinary events) and a
//! crashes-only fault plane draws nothing from either RNG stream — both
//! pinned by kernel/transport unit tests.
//!
//! [`AdvancementRecord`]: threev::core::advance::AdvancementRecord

use threev::analysis::TxnStatus;
use threev::core::advance::AdvancementPolicy;
use threev::core::client::Arrival;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::core::node::{DurabilityMode, ThreeVNode};
use threev::model::{
    Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnPlan, UpdateOp, Value, VersionNo,
};
use threev::sim::{LatencyModel, NodeCrash, QuiesceOutcome, SimDuration, SimTime};

const N_NODES: u16 = 3;
/// The node that gets crash-injected (a participant, not the root).
const CRASHED: NodeId = NodeId(1);

fn ms(x: u64) -> SimTime {
    SimTime(x * 1_000)
}

fn k(i: u64) -> Key {
    Key(i)
}
fn n(i: u16) -> NodeId {
    NodeId(i)
}

/// Hospital-style schema: one balance counter and one charge journal per
/// node.
fn schema() -> Schema {
    Schema::new(vec![
        KeyDecl::counter(k(1), n(0), 0),
        KeyDecl::journal(k(11), n(0)),
        KeyDecl::counter(k(2), n(1), 0),
        KeyDecl::journal(k(12), n(1)),
        KeyDecl::counter(k(3), n(2), 0),
        KeyDecl::journal(k(13), n(2)),
    ])
}

/// A visit: root on node 0 charging all three nodes.
fn visit(amount: i64, tag: u32) -> TxnPlan {
    TxnPlan::commuting(
        SubtxnPlan::new(n(0))
            .update(k(1), UpdateOp::Add(amount))
            .update(k(11), UpdateOp::Append { amount, tag })
            .child(
                SubtxnPlan::new(n(1))
                    .update(k(2), UpdateOp::Add(amount))
                    .update(k(12), UpdateOp::Append { amount, tag }),
            )
            .child(
                SubtxnPlan::new(n(2))
                    .update(k(3), UpdateOp::Add(amount))
                    .update(k(13), UpdateOp::Append { amount, tag }),
            ),
    )
}

/// Data-plane traffic finishes well before the ms(30) advancement
/// trigger, so the crash hits a node with no in-flight subtransactions —
/// the in-doubt-transaction limitation documented in DESIGN.md.
fn arrivals() -> Vec<Arrival> {
    (0..20)
        .map(|i| Arrival::at(ms(i), visit(1 + i as i64 % 5, i as u32)))
        .collect()
}

/// Canonical per-node store image; journal entry order carries no meaning
/// for commuting appends, so entries are sorted.
fn store_image(node: &ThreeVNode) -> Vec<String> {
    let mut keys: Vec<Key> = node.store().keys().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|key| {
            let layout = node.store().layout(key).expect("key exists");
            let canon: Vec<String> = layout
                .into_iter()
                .map(|(v, value)| match value {
                    Value::Journal(mut entries) => {
                        entries.sort_by_key(|e| (e.txn, e.amount, e.tag));
                        format!("{v:?}:jrn{entries:?}")
                    }
                    other => format!("{v:?}:{other:?}"),
                })
                .collect();
            format!("{key:?} => {canon:?}")
        })
        .collect()
}

struct Outcome {
    stores: Vec<Vec<String>>,
    committed: usize,
    /// Coordinator-side phase boundaries: `[started, p1, p2, p3, p4]`.
    phase_marks: [SimTime; 5],
    recoveries: u64,
    wal_replayed: u64,
}

/// Shared configuration of the clean and crashed runs. Retransmission is
/// on in *both* (the prefix-identity argument needs identical configs up
/// to the crash list), and so is in-memory durability.
fn config(seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(N_NODES)
        .seed(seed)
        .advancement(AdvancementPolicy::Manual)
        .durability(DurabilityMode::Memory {
            checkpoint_every: 64,
        });
    cfg.sim.latency = LatencyModel::Uniform {
        min: SimDuration::from_micros(50),
        max: SimDuration::from_micros(150),
    };
    cfg.protocol.coordinator.retransmit = Some(SimDuration::from_millis(2));
    cfg
}

/// Run the workload, trigger one advancement at ms(30), and drive the
/// cluster to quiescence. `crashes` is empty for the clean reference run.
fn run(seed: u64, crashes: Vec<NodeCrash>) -> Outcome {
    let crashed = !crashes.is_empty();
    let mut cfg = config(seed);
    cfg.sim.faults.crashes = crashes;
    let mut cluster = ThreeVCluster::new(&schema(), cfg, arrivals());
    cluster.run_until(ms(30));
    cluster.trigger_advancement();
    let out = cluster.run(SimTime(60_000_000_000));
    assert!(
        matches!(out, QuiesceOutcome::Quiescent(_)),
        "cluster failed to quiesce (seed {seed}, crashed {crashed}): {out:?}"
    );

    // Exactly one advancement, fully recorded, on every node — including
    // the one that lost its version variables mid-flight.
    assert_eq!(
        cluster.advancements().len(),
        1,
        "exactly one advancement must complete (seed {seed}, crashed {crashed})"
    );
    for i in 0..N_NODES {
        let node = cluster.node(i);
        assert_eq!(
            (node.vu(), node.vr()),
            (VersionNo(2), VersionNo(1)),
            "node {i} version window after advancement (seed {seed}, crashed {crashed})"
        );
        assert!(node.is_quiescent(), "node {i} left in-flight state");
    }
    assert!(cluster.max_versions_high_water() <= 3, "3V bound violated");

    let committed = cluster
        .records()
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count();
    assert_eq!(committed, arrivals().len(), "every visit commits");

    let rec = &cluster.advancements()[0];
    let crashed_stats = cluster.node(CRASHED.0).stats();
    Outcome {
        stores: (0..N_NODES).map(|i| store_image(cluster.node(i))).collect(),
        committed,
        phase_marks: [
            rec.started,
            rec.p1_done,
            rec.p2_done,
            rec.p3_done,
            rec.p4_done,
        ],
        recoveries: crashed_stats.recoveries,
        wal_replayed: crashed_stats.wal_replayed,
    }
}

/// Midpoint of the clean run's phase-`phase` window (1-based).
fn mid_phase(clean: &Outcome, phase: usize) -> SimTime {
    let (a, b) = (clean.phase_marks[phase - 1], clean.phase_marks[phase]);
    assert!(b > a, "phase {phase} window is empty: {a:?}..{b:?}");
    SimTime((a.0 + b.0) / 2)
}

/// Crash `CRASHED` at `at` for 3ms, then compare against the clean run.
/// Returns the number of WAL records the recovery replayed (zero is
/// legitimate when a checkpoint truncated the log just before the crash;
/// callers assert replay happened *somewhere* in aggregate).
fn check_crash_at(seed: u64, clean: &Outcome, at: SimTime, label: &str) -> u64 {
    let crashed = run(
        seed,
        vec![NodeCrash {
            node: CRASHED,
            at,
            restart_after: SimDuration::from_millis(3),
        }],
    );
    assert_eq!(clean.committed, crashed.committed, "{label} (seed {seed})");
    assert!(
        crashed.recoveries >= 1,
        "{label}: node {CRASHED} never recovered (seed {seed})"
    );
    for (i, (c, f)) in clean.stores.iter().zip(&crashed.stores).enumerate() {
        assert_eq!(
            c, f,
            "node {i} diverged after crash-restart ({label}, seed {seed})"
        );
    }
    crashed.wal_replayed
}

/// The acceptance gate: a node crashed mid-phase-2 (the counter-poll
/// phase, which is where durable counters matter most) restarts from
/// checkpoint + WAL, rejoins via version skew, and the stores converge —
/// across ten consecutive seeds.
#[test]
fn crash_mid_phase2_recovers_and_converges_ten_seeds() {
    let mut replayed = 0;
    for seed in 1..=10u64 {
        let clean = run(seed, Vec::new());
        replayed += check_crash_at(seed, &clean, mid_phase(&clean, 2), "mid-phase-2");
    }
    assert!(replayed > 0, "no seed exercised WAL-tail replay");
}

/// One crash per advancement phase (1–4) at a fixed seed: each run must
/// still complete the advancement exactly once and converge.
#[test]
fn crash_in_each_phase_converges() {
    let seed = 7u64;
    let clean = run(seed, Vec::new());
    for phase in 1..=4usize {
        let label = format!("mid-phase-{phase}");
        check_crash_at(seed, &clean, mid_phase(&clean, phase), &label);
    }
}

/// The §2.3 rejoin path specifically: crash the node across the *whole*
/// advancement (it is down when every phase-1/3 notice and retransmit
/// would arrive), so its recovered `(vu, vr)` is genuinely stale and the
/// catch-up must come from the coordinator's retransmits after restart.
#[test]
fn crash_spanning_advancement_rejoins_via_skew() {
    let seed = 11u64;
    let clean = run(seed, Vec::new());
    let start = clean.phase_marks[0];
    let crashed = run(
        seed,
        vec![NodeCrash {
            node: CRASHED,
            at: SimTime(start.0.saturating_sub(200)),
            restart_after: SimDuration::from_millis(4),
        }],
    );
    assert!(crashed.recoveries >= 1);
    assert_eq!(clean.stores, crashed.stores);
}

/// CI recovery-matrix hook: pin the seed from the environment so the
/// matrix can sweep seeds without recompiling.
#[test]
fn crash_recovery_at_env_seed() {
    let seed = threev::testutil::fault_seed_or(0xFA17);
    let clean = run(seed, Vec::new());
    check_crash_at(seed, &clean, mid_phase(&clean, 2), "env-seed mid-phase-2");
}

/// Guard: durability and crash plumbing are observationally free when no
/// crash is injected — a WAL-enabled run and a durability-less run of the
/// same seed produce identical stores (logging draws no randomness and
/// sends no messages).
#[test]
fn durability_without_crashes_changes_nothing() {
    let seed = 3u64;
    let with_wal = run(seed, Vec::new());

    let mut cfg = config(seed);
    cfg.protocol.node.durability = DurabilityMode::None;
    let mut cluster = ThreeVCluster::new(&schema(), cfg, arrivals());
    cluster.run_until(ms(30));
    cluster.trigger_advancement();
    let out = cluster.run(SimTime(60_000_000_000));
    assert!(matches!(out, QuiesceOutcome::Quiescent(_)));
    let plain: Vec<Vec<String>> = (0..N_NODES).map(|i| store_image(cluster.node(i))).collect();

    assert_eq!(with_wal.stores, plain);
    for i in 0..N_NODES {
        assert_eq!(cluster.node(i).stats().wal_records, 0);
        assert_eq!(cluster.node(i).stats().recoveries, 0);
    }
}
