//! Cross-crate end-to-end tests: every engine over every workload profile,
//! with comparative assertions matching the paper's claims.

use threev::analysis::{Auditor, RunSummary, TxnStatus};
use threev::core::advance::AdvancementPolicy;
use threev::sim::{SimConfig, SimDuration, SimTime};
use threev::workload::{
    HospitalWorkload, RetailWorkload, SyntheticParams, SyntheticWorkload, TelecomWorkload,
};
use threev_bench::engines::{run_engine, Engine, RunOpts};

fn opts(n_nodes: u16) -> RunOpts {
    let mut o = RunOpts::new(n_nodes, SimTime(8_000_000));
    o.advancement = AdvancementPolicy::Periodic {
        first: SimDuration::from_millis(60),
        period: SimDuration::from_millis(120),
    };
    o
}

#[test]
fn hospital_all_engines_complete() {
    let w = HospitalWorkload {
        departments: 4,
        patients: 80,
        rate_tps: 1_500.0,
        duration: SimDuration::from_millis(400),
        ..HospitalWorkload::default()
    };
    let (schema, arrivals) = (w.schema(), w.arrivals());
    for engine in Engine::ALL {
        let report = run_engine(engine, &schema, arrivals.clone(), &opts(4));
        let committed = report
            .records
            .iter()
            .filter(|r| r.status == TxnStatus::Committed)
            .count();
        assert!(
            committed as f64 / arrivals.len() as f64 > 0.95,
            "{engine:?}: {committed}/{}",
            arrivals.len()
        );
    }
}

#[test]
fn three_v_is_serializable_where_no_coord_is_not() {
    let w = TelecomWorkload {
        switches: 4,
        accounts: 60,
        rate_tps: 4_000.0,
        read_pct: 15,
        inter_region_pct: 80,
        duration: SimDuration::from_millis(400),
        zipf_s: 1.2,
        seed: 3,
    };
    let (schema, arrivals) = (w.schema(), w.arrivals());

    let r3v = run_engine(Engine::ThreeV, &schema, arrivals.clone(), &opts(4));
    let a3v = Auditor::new(&r3v.records).check();
    assert!(a3v.clean(), "{a3v:?}");
    assert!(r3v.max_versions <= 3);

    let rnc = run_engine(Engine::NoCoord, &schema, arrivals, &opts(4));
    let anc = Auditor::new(&rnc.records).check();
    assert!(
        anc.atomicity_violations > 0,
        "no-coordination should show the partial-charges anomaly"
    );
}

#[test]
fn three_v_tracks_no_coord_latency_and_beats_two_pc() {
    let w = SyntheticWorkload::new(SyntheticParams {
        n_nodes: 6,
        rate_tps: 6_000.0,
        fanout_min: 2,
        fanout_max: 3,
        duration: SimDuration::from_millis(400),
        ..SyntheticParams::default()
    });
    let (schema, arrivals) = w.generate();

    let lat = |engine| {
        let r = run_engine(engine, &schema, arrivals.clone(), &opts(6));
        let s = RunSummary::from_records(&r.records, SimTime::ZERO, r.ended_at);
        (s.update_latency.p50(), s.total_committed())
    };
    let (p50_3v, n_3v) = lat(Engine::ThreeV);
    let (p50_nc, n_nc) = lat(Engine::NoCoord);
    let (p50_2pc, _) = lat(Engine::TwoPc);

    assert_eq!(n_3v, n_nc, "both commit everything");
    // 3V update latency within 30% of uncoordinated execution...
    assert!(
        (p50_3v as f64) < p50_nc as f64 * 1.3,
        "3v p50 {p50_3v}us vs no-coord {p50_nc}us"
    );
    // ...while 2PC pays multiple round trips.
    assert!(
        p50_2pc > p50_3v * 3,
        "2pc p50 {p50_2pc}us should dwarf 3v {p50_3v}us"
    );
}

#[test]
fn retail_with_nc_transactions_commits_and_holds_bound() {
    let w = RetailWorkload {
        stores: 4,
        products: 50,
        rate_tps: 2_000.0,
        nc_pct: 5,
        duration: SimDuration::from_millis(400),
        ..RetailWorkload::default()
    };
    let (schema, arrivals) = (w.schema(), w.arrivals());
    let mut o = opts(4);
    o.locks = true;
    let report = run_engine(Engine::ThreeV, &schema, arrivals.clone(), &o);
    let committed = report
        .records
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count();
    assert!(
        committed as f64 / arrivals.len() as f64 > 0.98,
        "{committed}/{}",
        arrivals.len()
    );
    assert!(report.max_versions <= 3);
    let audit = Auditor::new(&report.records).check();
    assert!(audit.clean(), "{audit:?}");
}

#[test]
fn deterministic_across_identical_runs() {
    let w = HospitalWorkload {
        departments: 3,
        patients: 30,
        rate_tps: 1_000.0,
        duration: SimDuration::from_millis(200),
        ..HospitalWorkload::default()
    };
    let (schema, arrivals) = (w.schema(), w.arrivals());
    let fingerprint = || {
        let r = run_engine(Engine::ThreeV, &schema, arrivals.clone(), &opts(3));
        (
            r.messages,
            r.ended_at,
            r.advancements.len(),
            r.records
                .iter()
                .map(|x| (x.id, x.completed, x.version))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(fingerprint(), fingerprint());
}

#[test]
fn fifo_and_reordering_networks_both_audit_clean() {
    let w = TelecomWorkload {
        switches: 3,
        accounts: 40,
        rate_tps: 3_000.0,
        duration: SimDuration::from_millis(300),
        ..TelecomWorkload::default()
    };
    let (schema, arrivals) = (w.schema(), w.arrivals());
    for fifo in [false, true] {
        let mut o = opts(3);
        o.sim = SimConfig {
            fifo,
            ..SimConfig::seeded(12)
        };
        let report = run_engine(Engine::ThreeV, &schema, arrivals.clone(), &o);
        let audit = Auditor::new(&report.records).check();
        assert!(audit.clean(), "fifo={fifo}: {audit:?}");
        assert!(report.max_versions <= 3);
    }
}
