//! Property: version advancement is fault-tolerant.
//!
//! The coordinator's four-phase protocol runs over the unified transport
//! with the fault plane enabled on every coordinator↔node link: messages
//! drop, duplicate, suffer delay spikes — and one database node is paused
//! across the advancement window. With retransmission enabled
//! ([`threev::core::advance::CoordinatorConfig::retransmit`]) and every
//! handler idempotent, the advancement must still complete exactly once:
//! every node reaches `vr + 1`, and the final stores are identical to a
//! zero-fault run of the same workload.
//!
//! Faults are scoped to the *control plane* only (the coordinator's
//! links). The data plane stays clean, so completion counters balance and
//! convergence is well-defined; making subtransaction delivery itself
//! reliable is a different protocol (§6 of the paper leaves it to the
//! network layer).

use proptest::prelude::*;
use threev::analysis::TxnStatus;
use threev::core::advance::AdvancementPolicy;
use threev::core::client::Arrival;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::core::node::ThreeVNode;
use threev::model::{
    Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnPlan, UpdateOp, Value, VersionNo,
};
use threev::sim::{
    FaultPlane, FaultScope, LatencyModel, NodePause, QuiesceOutcome, SimDuration, SimTime,
};

const N_NODES: u16 = 3;
/// Actor id of the coordinator (nodes occupy `0..N_NODES`).
const COORD: NodeId = NodeId(N_NODES);
/// The node paused across the advancement window.
const PAUSED: NodeId = NodeId(1);

fn ms(x: u64) -> SimTime {
    SimTime(x * 1_000)
}

fn k(i: u64) -> Key {
    Key(i)
}
fn n(i: u16) -> NodeId {
    NodeId(i)
}

/// Hospital-style schema: one balance counter and one charge journal per
/// node.
fn schema() -> Schema {
    Schema::new(vec![
        KeyDecl::counter(k(1), n(0), 0),
        KeyDecl::journal(k(11), n(0)),
        KeyDecl::counter(k(2), n(1), 0),
        KeyDecl::journal(k(12), n(1)),
        KeyDecl::counter(k(3), n(2), 0),
        KeyDecl::journal(k(13), n(2)),
    ])
}

/// A visit: root on node 0 charging all three nodes.
fn visit(amount: i64, tag: u32) -> TxnPlan {
    TxnPlan::commuting(
        SubtxnPlan::new(n(0))
            .update(k(1), UpdateOp::Add(amount))
            .update(k(11), UpdateOp::Append { amount, tag })
            .child(
                SubtxnPlan::new(n(1))
                    .update(k(2), UpdateOp::Add(amount))
                    .update(k(12), UpdateOp::Append { amount, tag }),
            )
            .child(
                SubtxnPlan::new(n(2))
                    .update(k(3), UpdateOp::Add(amount))
                    .update(k(13), UpdateOp::Append { amount, tag }),
            ),
    )
}

fn arrivals() -> Vec<Arrival> {
    (0..20)
        .map(|i| Arrival::at(ms(i), visit(1 + i as i64 % 5, i as u32)))
        .collect()
}

/// Every coordinator↔node link, both directions. Client links are
/// excluded (the client is not part of the advancement protocol).
fn control_plane_links() -> Vec<(NodeId, NodeId)> {
    (0..N_NODES)
        .flat_map(|i| [(COORD, n(i)), (n(i), COORD)])
        .collect()
}

/// Canonical per-node store image; journal entry order carries no meaning
/// for commuting appends, so entries are sorted.
fn store_image(node: &ThreeVNode) -> Vec<String> {
    let mut keys: Vec<Key> = node.store().keys().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|key| {
            let layout = node.store().layout(key).expect("key exists");
            let canon: Vec<String> = layout
                .into_iter()
                .map(|(v, value)| match value {
                    Value::Journal(mut entries) => {
                        entries.sort_by_key(|e| (e.txn, e.amount, e.tag));
                        format!("{v:?}:jrn{entries:?}")
                    }
                    other => format!("{v:?}:{other:?}"),
                })
                .collect();
            format!("{key:?} => {canon:?}")
        })
        .collect()
}

struct Outcome {
    stores: Vec<Vec<String>>,
    committed: usize,
}

/// Run the workload, trigger one advancement mid-pause, and drive the
/// cluster to quiescence. `faults == None` is the clean reference run.
fn run(seed: u64, faults: Option<FaultPlane>) -> Outcome {
    let faulty = faults.is_some();
    let mut cfg = ClusterConfig::new(N_NODES)
        .seed(seed)
        .advancement(AdvancementPolicy::Manual);
    cfg.sim.latency = LatencyModel::Uniform {
        min: SimDuration::from_micros(50),
        max: SimDuration::from_micros(150),
    };
    if let Some(plane) = faults {
        cfg.sim.faults = plane;
        // Retransmit is what buys liveness on the lossy control plane.
        cfg.protocol.coordinator.retransmit = Some(SimDuration::from_millis(2));
    }
    let mut cluster = ThreeVCluster::new(&schema(), cfg, arrivals());
    // Trigger the advancement while the paused node is still frozen and
    // data-plane work is still in flight: phase 2 must poll through both.
    cluster.run_until(ms(30));
    cluster.trigger_advancement();
    let out = cluster.run(SimTime(60_000_000_000));
    assert!(
        matches!(out, QuiesceOutcome::Quiescent(_)),
        "cluster failed to quiesce (seed {seed}, faulty {faulty}): {out:?}"
    );

    if faulty {
        let stats = cluster.sim_stats();
        assert!(
            stats.dropped > 0,
            "fault plane must actually drop (seed {seed}): {stats:?}"
        );
        assert!(
            stats.duplicated > 0,
            "fault plane must actually duplicate (seed {seed}): {stats:?}"
        );
    }

    // Exactly one advancement, fully recorded, on every node.
    assert_eq!(
        cluster.advancements().len(),
        1,
        "exactly one advancement must complete (seed {seed}, faulty {faulty})"
    );
    for i in 0..N_NODES {
        let node = cluster.node(i);
        assert_eq!(
            (node.vu(), node.vr()),
            (VersionNo(2), VersionNo(1)),
            "node {i} version window after advancement (seed {seed}, faulty {faulty})"
        );
        assert!(node.is_quiescent(), "node {i} left in-flight state");
    }
    assert!(cluster.max_versions_high_water() <= 3, "3V bound violated");

    let committed = cluster
        .records()
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count();
    assert_eq!(committed, arrivals().len(), "every visit commits");

    Outcome {
        stores: (0..N_NODES).map(|i| store_image(cluster.node(i))).collect(),
        committed,
    }
}

/// The fault plane under test: `drop_ppm` loss + 10% duplication + 5%
/// delay spikes on every coordinator link, and one DB node paused over
/// the advancement trigger.
fn plane(drop_ppm: u32) -> FaultPlane {
    FaultPlane {
        drop_ppm,
        dup_ppm: 100_000,
        delay_ppm: 50_000,
        scope: FaultScope::Links(control_plane_links()),
        pauses: vec![NodePause {
            node: PAUSED,
            from: ms(10),
            until: ms(50),
        }],
        ..FaultPlane::default()
    }
}

/// One seed, one loss rate: the faulty run must converge to the clean
/// run's stores.
fn check(seed: u64, drop_ppm: u32) {
    let clean = run(seed, None);
    let faulty = run(seed, Some(plane(drop_ppm)));
    assert_eq!(clean.committed, faulty.committed);
    for (i, (c, f)) in clean.stores.iter().zip(&faulty.stores).enumerate() {
        assert_eq!(
            c, f,
            "node {i} diverged under faults (seed {seed}, drop {drop_ppm}ppm)"
        );
    }
}

/// The acceptance gate: 20% loss + duplication + a paused node, on ten
/// consecutive seeds.
#[test]
fn advancement_completes_at_20pct_loss_ten_seeds() {
    for seed in 1..=10u64 {
        check(seed, 200_000);
    }
}

#[test]
fn advancement_completes_at_5pct_loss() {
    for seed in 1..=4u64 {
        check(seed, 50_000);
    }
}

/// CI fault-matrix hook: pin the seed from the environment so the matrix
/// can sweep seeds without recompiling.
#[test]
fn advancement_completes_at_env_seed() {
    let seed = threev::testutil::fault_seed_or(0xFA17);
    check(seed, 200_000);
    check(seed, 50_000);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case runs three full clusters (clean + two loss rates)
        .. ProptestConfig::default()
    })]

    #[test]
    fn advancement_converges_under_faults(seed in any::<u64>()) {
        check(seed, 50_000);
        check(seed, 200_000);
    }
}
