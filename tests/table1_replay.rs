//! The paper's Table 1 / Figure 2 replay as an integration test (the
//! `exp_table1` binary prints the same run for human inspection).

#[test]
fn paper_example_execution_reproduced() {
    let replay = threev_bench::table1::run();
    replay
        .verify()
        .expect("Table 1 / Figure 2 replay must verify");

    // Spot-check a few headline facts beyond verify():
    // the dual write on item D at site q (paper times 13-14)...
    assert!(replay
        .trace
        .contains("updates k102 version v1 (and newer copies)"));
    // ...and the single-version write on E (no version-2 copy, time 15).
    let e_line = replay
        .trace
        .lines()
        .iter()
        .find(|l| l.text.contains("updates k103"))
        .expect("E updated");
    assert!(
        !e_line.text.contains("newer copies"),
        "E must not dual-write: {}",
        e_line.text
    );
}

#[test]
fn replay_is_deterministic() {
    let a = threev_bench::table1::run();
    let b = threev_bench::table1::run();
    assert_eq!(a.panels.len(), b.panels.len());
    for (x, y) in a.panels.iter().zip(&b.panels) {
        assert_eq!(x, y);
    }
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.trace.lines().len(), b.trace.lines().len());
}
