//! Tier-1 gate: the protocol-invariant linter must find nothing in the
//! tree. Equivalent to `cargo run -p threev-lint -- --deny`, wired into
//! `cargo test -q` so a violation fails the suite, not just CI.

use std::path::Path;

use threev_lint::{find_root, lint_workspace};

#[test]
fn workspace_passes_threev_lint() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above CARGO_MANIFEST_DIR");
    let findings = lint_workspace(&root).expect("workspace lint runs");
    assert!(
        findings.is_empty(),
        "threev-lint found {} violation(s); run `cargo run -p threev-lint -- --deny` \
         for details, or suppress a justified site with \
         `// lint-allow(rule-id): reason`:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
