//! Property: WAL replay is idempotent under crashes *during recovery*.
//!
//! ARIES-style restart logic must tolerate dying mid-replay and starting
//! over: applying any prefix of the log and then replaying the whole log
//! again must land in exactly the state of a single clean replay. The
//! [`threev::durability`] layer guarantees this with per-record LSNs — a
//! record at or below `applied_lsn` is skipped — so the property holds
//! for *every* operation mix, which is what this proptest drives.

use proptest::prelude::*;
use threev::durability::{Durability, MemBackend, RecoveredState, Snapshot, WalOp, WalRecord};
use threev::model::{Key, NodeId, TxnId, UpdateOp, Value, VersionNo};
use threev::storage::LockMode;

fn k(i: u64) -> Key {
    Key(i)
}
fn n(i: u16) -> NodeId {
    NodeId(i)
}
fn v(i: u32) -> VersionNo {
    VersionNo(i)
}
fn t(i: u64) -> TxnId {
    TxnId::new(i, n(0))
}

/// Base checkpoint: three counters at version 0, empty counter and lock
/// tables, the paper's initial `(vr, vu) = (0, 1)` window.
fn base_snapshot() -> Snapshot {
    Snapshot {
        node: n(0),
        lsn: 0,
        vu: v(1),
        vr: v(0),
        external_store: false,
        store: (1..=3)
            .map(|i| (k(i), vec![(v(0), Value::Counter(0))]))
            .collect(),
        counters: Vec::new(),
        locks: Vec::new(),
    }
}

/// One arbitrary WAL operation. Lock traffic sticks to commute mode on a
/// dedicated key range: commute locks never conflict, so every logged
/// acquire replays to a grant, mirroring what the engine logs (it only
/// logs grants).
fn wal_op() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        (1..=3u64, 0..=2u32, -5..=5i64, 0..=9u64).prop_map(|(key, ver, amt, txn)| {
            WalOp::Update {
                key: k(key),
                version: v(ver),
                op: UpdateOp::Add(amt),
                txn: t(txn),
            }
        }),
        (1..=3u64, 0..=2u32, any::<bool>(), -9..=9i64).prop_map(|(key, ver, some, prior)| {
            WalOp::Restore {
                key: k(key),
                version: v(ver),
                prior: some.then_some(Value::Counter(prior)),
            }
        }),
        (0..=2u32, 0..=2u16).prop_map(|(ver, to)| WalOp::IncRequest {
            version: v(ver),
            to: n(to)
        }),
        (0..=2u32, 0..=2u16).prop_map(|(ver, from)| WalOp::IncCompletion {
            version: v(ver),
            from: n(from)
        }),
        (1..=4u32).prop_map(|ver| WalOp::SetVu(v(ver))),
        (0..=3u32).prop_map(|ver| WalOp::SetVr(v(ver))),
        (0..=2u32).prop_map(|ver| WalOp::Gc { vr_new: v(ver) }),
        (1..=4u32, 1..=4u8).prop_map(|(ver, phase)| WalOp::Phase {
            version: v(ver),
            phase
        }),
        (10..=12u64, 0..=9u64).prop_map(|(key, txn)| WalOp::LockAcquire {
            key: k(key),
            txn: t(txn),
            mode: LockMode::Commute,
        }),
        (0..=9u64).prop_map(|txn| WalOp::LockRelease { txn: t(txn) }),
    ]
}

/// Everything observable about a recovered state, in canonical order.
fn fingerprint(s: &RecoveredState) -> String {
    format!(
        "store={:?} counters={:?} locks={:?} vu={:?} vr={:?} lsn={}",
        s.store.export_parts(),
        s.counters,
        s.locks.export_parts(),
        s.vu,
        s.vr,
        s.applied_lsn,
    )
}

proptest! {
    /// Replay(prefix) ; Replay(all) == Replay(all), for every prefix.
    #[test]
    fn prefix_replayed_twice_equals_replayed_once(
        ops in proptest::collection::vec(wal_op(), 1..60),
        cut in 0..60usize,
    ) {
        let records: Vec<WalRecord> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| WalRecord { lsn: i as u64 + 1, op })
            .collect();
        let cut = cut.min(records.len());

        let mut once = RecoveredState::from_snapshot(base_snapshot());
        for rec in &records {
            once.apply(rec);
        }

        // Crash mid-recovery after `cut` records, then restart replay from
        // the beginning of the log.
        let mut twice = RecoveredState::from_snapshot(base_snapshot());
        for rec in &records[..cut] {
            twice.apply(rec);
        }
        for rec in &records {
            twice.apply(rec);
        }

        prop_assert_eq!(fingerprint(&once), fingerprint(&twice));
    }

    /// End-to-end flavour: the same op stream logged through a real
    /// [`Durability`] handle recovers to the same state no matter how many
    /// times recovery runs (each recovery re-reads snapshot + log).
    #[test]
    fn repeated_recovery_is_stable(
        ops in proptest::collection::vec(wal_op(), 1..40),
    ) {
        let mut dur = Durability::new(Box::new(MemBackend::new()), 0);
        dur.checkpoint(base_snapshot());
        for op in ops {
            dur.log(op);
        }
        let first = dur.recover().expect("snapshot exists");
        let second = dur.recover().expect("snapshot exists");
        prop_assert_eq!(fingerprint(&first), fingerprint(&second));
    }
}
