//! Chaos matrix: the 3V engine across hostile network conditions —
//! WAN-scale latency, heavy-tailed spikes, reordering vs FIFO links —
//! always with racing advancement. Safety (audit + version bound) must hold
//! in every cell; liveness (drain + advancement completion) too.

use threev::analysis::{Auditor, TxnStatus};
use threev::core::advance::AdvancementPolicy;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::sim::{LatencyModel, SimConfig, SimDuration, SimTime};
use threev::workload::TelecomWorkload;

fn run_cell(latency: LatencyModel, fifo: bool, seed: u64) {
    let workload = TelecomWorkload {
        switches: 4,
        accounts: 30,
        rate_tps: 2_000.0,
        read_pct: 20,
        inter_region_pct: 75,
        duration: SimDuration::from_millis(300),
        zipf_s: 1.1,
        seed,
    };
    let schema = workload.schema();
    let arrivals = workload.arrivals();
    let n = arrivals.len();
    let cfg = ClusterConfig {
        n_nodes: 4,
        sim: SimConfig {
            latency,
            local_latency: SimDuration::from_micros(1),
            fifo,
            seed,
            ..SimConfig::default()
        },
        protocol: Default::default(),
    }
    .advancement(AdvancementPolicy::Periodic {
        first: SimDuration::from_millis(30),
        period: SimDuration::from_millis(60),
    });
    let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
    // Generous horizon: WAN spikes can stretch a tree's lifetime a lot.
    cluster.run_until(SimTime(20_000_000));

    let label = format!("latency={latency:?} fifo={fifo} seed={seed}");
    assert!(cluster.all_quiescent(), "undrained: {label}");
    assert!(
        cluster.max_versions_high_water() <= 3,
        "version bound: {label}"
    );
    let records = cluster.records();
    assert_eq!(records.len(), n);
    assert!(
        records.iter().all(|r| r.status == TxnStatus::Committed),
        "incomplete transactions: {label}"
    );
    let audit = Auditor::new(records).check();
    assert!(audit.clean(), "{label}: {audit:?}");
    assert!(
        !cluster.advancements().is_empty(),
        "advancement starved: {label}"
    );
}

#[test]
fn chaos_lan_reordering() {
    run_cell(LatencyModel::lan(), false, 101);
}

#[test]
fn chaos_lan_fifo() {
    run_cell(LatencyModel::lan(), true, 102);
}

#[test]
fn chaos_wan_reordering() {
    run_cell(LatencyModel::wan(), false, 103);
}

#[test]
fn chaos_wan_fifo() {
    run_cell(LatencyModel::wan(), true, 104);
}

#[test]
fn chaos_spiky_heavy_tail() {
    // 5% of messages take 50x the base latency: maximal straggler pressure
    // across advancement switchovers.
    run_cell(
        LatencyModel::Spiky {
            base: SimDuration::from_micros(500),
            spike_ppm: 50_000,
            spike_factor: 50,
        },
        false,
        105,
    );
}

#[test]
fn chaos_extreme_jitter_window() {
    // Latencies spanning two orders of magnitude; reordering everywhere.
    run_cell(
        LatencyModel::Uniform {
            min: SimDuration::from_micros(50),
            max: SimDuration::from_millis(8),
        },
        false,
        106,
    );
}
