//! Chaos matrix: the 3V engine across hostile network conditions —
//! WAN-scale latency, heavy-tailed spikes, reordering vs FIFO links — and,
//! through the injectable [`FaultPlane`], control-plane message loss and
//! node crash-restarts, always with racing advancement. Safety (audit +
//! version bound) must hold in every cell; liveness (drain + advancement
//! completion) too.
//!
//! The full-hostility cell reads its seed from `THREEV_FAULT_SEED`, so the
//! CI fault matrix can sweep seeds without recompiling.

use threev::analysis::{Auditor, TxnStatus};
use threev::core::advance::AdvancementPolicy;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::core::node::DurabilityMode;
use threev::model::NodeId;
use threev::sim::{
    FaultPlane, FaultScope, LatencyModel, NodeCrash, SimConfig, SimDuration, SimTime,
};
use threev::workload::TelecomWorkload;

const N_SWITCHES: u16 = 4;

/// Loss + duplication scoped to the coordinator↔node control links. The
/// data plane stays clean, matching the paper's §6 assumption of reliable
/// subtransaction delivery; the advancement protocol retransmits through
/// the lossy control plane.
fn control_plane(loss_ppm: u32) -> FaultPlane {
    let coord = NodeId(N_SWITCHES);
    FaultPlane {
        drop_ppm: loss_ppm,
        dup_ppm: 50_000,
        scope: FaultScope::Links(
            (0..N_SWITCHES)
                .flat_map(|i| [(coord, NodeId(i)), (NodeId(i), coord)])
                .collect(),
        ),
        ..FaultPlane::default()
    }
}

/// Add a crash-restart of switch 1 well after the 300ms arrival window
/// (no in-flight user transactions to lose) but in the middle of the
/// periodic advancement cadence.
fn with_crash(mut plane: FaultPlane) -> FaultPlane {
    plane.crashes = vec![NodeCrash {
        node: NodeId(1),
        at: SimTime(600_000),
        restart_after: SimDuration::from_millis(5),
    }];
    plane
}

fn run_cell(latency: LatencyModel, fifo: bool, seed: u64) {
    run_cell_with(latency, fifo, seed, FaultPlane::default());
}

fn run_cell_with(latency: LatencyModel, fifo: bool, seed: u64, faults: FaultPlane) {
    let workload = TelecomWorkload {
        switches: N_SWITCHES,
        accounts: 30,
        rate_tps: 2_000.0,
        read_pct: 20,
        inter_region_pct: 75,
        duration: SimDuration::from_millis(300),
        zipf_s: 1.1,
        seed,
    };
    let schema = workload.schema();
    let arrivals = workload.arrivals();
    let n = arrivals.len();
    let lossy = faults.drop_ppm > 0;
    let crashy = !faults.crashes.is_empty();
    let mut cfg = ClusterConfig {
        n_nodes: N_SWITCHES,
        sim: SimConfig {
            latency,
            local_latency: SimDuration::from_micros(1),
            fifo,
            seed,
            faults,
            ..SimConfig::default()
        },
        protocol: Default::default(),
    }
    .advancement(AdvancementPolicy::Periodic {
        first: SimDuration::from_millis(30),
        period: SimDuration::from_millis(60),
    });
    // Hostile planes need the fault-tolerant control plane: retransmission
    // rides over loss and carries a restarted node's rejoin; crashed nodes
    // need a WAL to restart from.
    if lossy || crashy {
        cfg.protocol.coordinator.retransmit = Some(SimDuration::from_millis(2));
    }
    if crashy {
        cfg = cfg.durability(DurabilityMode::Memory {
            checkpoint_every: 64,
        });
    }
    let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
    // Generous horizon: WAN spikes can stretch a tree's lifetime a lot.
    cluster.run_until(SimTime(20_000_000));

    let label =
        format!("latency={latency:?} fifo={fifo} seed={seed} lossy={lossy} crashy={crashy}");
    assert!(cluster.all_quiescent(), "undrained: {label}");
    assert!(
        cluster.max_versions_high_water() <= 3,
        "version bound: {label}"
    );
    let records = cluster.records();
    assert_eq!(records.len(), n);
    assert!(
        records.iter().all(|r| r.status == TxnStatus::Committed),
        "incomplete transactions: {label}"
    );
    let audit = Auditor::new(records).check();
    assert!(audit.clean(), "{label}: {audit:?}");
    assert!(
        !cluster.advancements().is_empty(),
        "advancement starved: {label}"
    );
}

#[test]
fn chaos_lan_reordering() {
    run_cell(LatencyModel::lan(), false, 101);
}

#[test]
fn chaos_lan_fifo() {
    run_cell(LatencyModel::lan(), true, 102);
}

#[test]
fn chaos_wan_reordering() {
    run_cell(LatencyModel::wan(), false, 103);
}

#[test]
fn chaos_wan_fifo() {
    run_cell(LatencyModel::wan(), true, 104);
}

#[test]
fn chaos_spiky_heavy_tail() {
    // 5% of messages take 50x the base latency: maximal straggler pressure
    // across advancement switchovers.
    run_cell(
        LatencyModel::Spiky {
            base: SimDuration::from_micros(500),
            spike_ppm: 50_000,
            spike_factor: 50,
        },
        false,
        105,
    );
}

#[test]
fn chaos_extreme_jitter_window() {
    // Latencies spanning two orders of magnitude; reordering everywhere.
    run_cell(
        LatencyModel::Uniform {
            min: SimDuration::from_micros(50),
            max: SimDuration::from_millis(8),
        },
        false,
        106,
    );
}

#[test]
fn chaos_wan_control_loss() {
    // 5% control-plane loss (plus duplication) on WAN latency with
    // reordering: advancement must still make rounds and the data plane
    // must drain untouched.
    run_cell_with(LatencyModel::wan(), false, 107, control_plane(50_000));
}

#[test]
fn chaos_crash_restart_under_jitter() {
    // A switch crash-restarts amid extreme jitter while periodic
    // advancement keeps firing; recovery from checkpoint + WAL must rejoin
    // it without losing a transaction.
    run_cell_with(
        LatencyModel::Uniform {
            min: SimDuration::from_micros(50),
            max: SimDuration::from_millis(8),
        },
        false,
        108,
        with_crash(FaultPlane::default()),
    );
}

#[test]
fn chaos_full_hostility_at_env_seed() {
    // Everything at once — heavy-tailed latency, lossy duplicated control
    // plane, a crash-restart — at a seed the CI fault matrix pins via
    // `THREEV_FAULT_SEED`.
    let seed = threev::testutil::fault_seed_or(0xFA17);
    run_cell_with(
        LatencyModel::Spiky {
            base: SimDuration::from_micros(500),
            spike_ppm: 50_000,
            spike_factor: 50,
        },
        false,
        seed,
        with_crash(control_plane(50_000)),
    );
}
