//! Property-based safety of the asynchronous version advancement.
//!
//! The two-round stable-counter termination rule (see
//! `threev_core::advance`) must never declare a version drained while
//! version-`v` work is still in flight. If it ever did, one of three
//! observable disasters follows:
//!
//! * a read transaction observes a partially-applied update — caught by
//!   the auditor's atomicity/exactness checks;
//! * a version is garbage-collected under a straggler — the engine panics
//!   with `NoVisibleVersion`;
//! * the ≤3-live-versions bound breaks — caught by the store's high-water
//!   counter.
//!
//! The fuzz explores random cluster sizes, rates, fan-outs, skews, network
//! jitter (with reordering), advancement cadences, and fault injection.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use threev::analysis::{Auditor, TxnStatus};
use threev::core::advance::AdvancementPolicy;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::model::NodeId;
use threev::sim::{LatencyModel, SimConfig, SimDuration, SimTime};
use threev::workload::HospitalWorkload;

#[derive(Debug, Clone)]
struct Scenario {
    n_nodes: u16,
    rate: f64,
    zipf: f64,
    seed: u64,
    adv_period_ms: u64,
    jitter_max_us: u64,
    fail_ppm: u32,
    fifo: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        2u16..6,
        500.0f64..4_000.0,
        0.0f64..1.3,
        any::<u64>(),
        5u64..80,
        200u64..8_000,
        0u32..60_000,
        any::<bool>(),
    )
        .prop_map(
            |(n_nodes, rate, zipf, seed, adv_period_ms, jitter_max_us, fail_ppm, fifo)| Scenario {
                n_nodes,
                rate,
                zipf,
                seed,
                adv_period_ms,
                jitter_max_us,
                fail_ppm,
                fifo,
            },
        )
}

fn run_scenario(s: &Scenario) {
    let workload = HospitalWorkload {
        departments: s.n_nodes,
        patients: 20, // few patients: maximal contention
        rate_tps: s.rate,
        read_pct: 30,
        max_fanout: s.n_nodes.min(3),
        duration: SimDuration::from_millis(250),
        zipf_s: s.zipf,
        seed: s.seed,
    };
    let schema = workload.schema();
    let mut arrivals = workload.arrivals();

    // Fault injection: some update transactions abort mid-tree.
    let mut rng = SmallRng::seed_from_u64(s.seed ^ 0xFA11);
    for a in &mut arrivals {
        if a.plan.kind == threev::model::TxnKind::Commuting
            && rng.gen_range(0u32..1_000_000) < s.fail_ppm
        {
            let nodes = a.plan.root.nodes();
            a.fail_node = Some(NodeId(nodes[rng.gen_range(0..nodes.len())].0));
        }
    }

    // Aggressive periodic advancement racing the (fault-injected) workload.
    let cfg = ClusterConfig {
        n_nodes: s.n_nodes,
        sim: SimConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_micros(100),
                max: SimDuration::from_micros(100 + s.jitter_max_us),
            },
            local_latency: SimDuration::from_micros(1),
            fifo: s.fifo,
            seed: s.seed,
            ..SimConfig::default()
        },
        protocol: Default::default(),
    }
    .advancement(AdvancementPolicy::Periodic {
        first: SimDuration::from_millis(s.adv_period_ms),
        period: SimDuration::from_millis(s.adv_period_ms),
    });
    let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
    cluster.run_until(SimTime(3_000_000));

    // Safety: space bound (a premature phase-2 verdict would eventually
    // overlap four live versions or GC under a straggler, which panics).
    assert!(
        cluster.max_versions_high_water() <= 3,
        "bound violated: {s:?}"
    );
    // Safety: serializability (a premature phase-3 publish exposes a
    // version still being updated).
    let audit = Auditor::new(cluster.records()).check();
    assert!(audit.clean(), "audit failed for {s:?}: {audit:?}");
    // Liveness: advancements actually completed and the cluster drained.
    assert!(
        !cluster.advancements().is_empty(),
        "no advancement completed: {s:?}"
    );
    assert!(cluster.all_quiescent(), "undrained cluster: {s:?}");
    assert!(cluster
        .records()
        .iter()
        .all(|r| r.status != TxnStatus::InFlight));
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case simulates a full cluster run
        .. ProptestConfig::default()
    })]

    #[test]
    fn advancement_never_declares_termination_early(s in scenario()) {
        run_scenario(&s);
    }
}

/// A hand-picked worst case kept as a fast regression: tiny jitter window,
/// maximal advancement frequency, failures, reordering network.
#[test]
fn adversarial_fixed_case() {
    run_scenario(&Scenario {
        n_nodes: 4,
        rate: 3_500.0,
        zipf: 1.2,
        seed: 0xDEADBEEF,
        adv_period_ms: 5,
        jitter_max_us: 7_500,
        fail_ppm: 50_000,
        fifo: false,
    });
}
