//! Property tier for the message-plane codec.
//!
//! Three contracts, each over randomly generated [`Msg`] values:
//!
//! 1. **Round trip** — `decode(encode(m)) == m` for every variant, with
//!    arbitrarily shaped plans, observation lists, and counter snapshots.
//! 2. **Truncation totality** — every strict prefix of a valid frame is
//!    rejected with `Err`, never a panic (frames are exact-length).
//! 3. **Corruption totality** — bit flips anywhere in a frame, and pure
//!    garbage bytes, never panic the decoder. (A flip in the `kind` byte
//!    can legally re-parse as a different variant — the checksum covers
//!    the payload, and cross-variant protection is the layer above's
//!    concern — so only payload flips are asserted to fail.)

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use proptest::prelude::*;
use threev::analysis::ReadObservation;
use threev::core::{CounterSnapshot, Msg};
use threev::model::{
    Key, NodeId, SubtxnId, SubtxnPlan, TxnId, TxnKind, UpdateOp, Value, VersionNo,
};

fn arb_txn(rng: &mut SmallRng) -> TxnId {
    TxnId::new(
        rng.gen_range(0u64..1 << 48),
        NodeId(rng.gen_range(0u16..64)),
    )
}

fn arb_kind(rng: &mut SmallRng) -> TxnKind {
    match rng.gen_range(0u8..3) {
        0 => TxnKind::ReadOnly,
        1 => TxnKind::Commuting,
        _ => TxnKind::NonCommuting,
    }
}

fn arb_op(rng: &mut SmallRng) -> UpdateOp {
    match rng.gen_range(0u8..4) {
        0 => UpdateOp::Add(rng.gen_range(-1_000i64..1_000)),
        1 => UpdateOp::Append {
            amount: rng.gen_range(-1_000i64..1_000),
            tag: rng.gen_range(0u32..1 << 20),
        },
        2 => UpdateOp::Retract {
            amount: rng.gen_range(-1_000i64..1_000),
            tag: rng.gen_range(0u32..1 << 20),
        },
        _ => UpdateOp::Assign(rng.gen_range(-1_000i64..1_000)),
    }
}

fn arb_value(rng: &mut SmallRng) -> Value {
    match rng.gen_range(0u8..3) {
        0 => Value::Counter(rng.gen_range(-10_000i64..10_000)),
        1 => Value::Register(rng.gen_range(-10_000i64..10_000)),
        _ => {
            let n = rng.gen_range(0usize..4);
            Value::Journal(
                (0..n)
                    .map(|_| threev::model::JournalEntry {
                        txn: arb_txn(rng),
                        amount: rng.gen_range(-100i64..100),
                        tag: rng.gen_range(0u32..100),
                    })
                    .collect(),
            )
        }
    }
}

/// Random plan subtree: bounded depth and fanout, arbitrary step mix.
fn arb_plan(rng: &mut SmallRng, depth: u8) -> SubtxnPlan {
    let mut plan = SubtxnPlan::new(NodeId(rng.gen_range(0u16..16)));
    for _ in 0..rng.gen_range(0usize..4) {
        let key = Key(rng.gen_range(0u64..1 << 32));
        plan = if rng.gen_range(0u8..2) == 0 {
            plan.read(key)
        } else {
            plan.update(key, arb_op(rng))
        };
    }
    if depth > 0 {
        for _ in 0..rng.gen_range(0usize..3) {
            plan = plan.child(arb_plan(rng, depth - 1));
        }
    }
    plan
}

fn arb_snapshot(rng: &mut SmallRng) -> CounterSnapshot {
    let rows = |rng: &mut SmallRng| {
        let n = rng.gen_range(0usize..5);
        (0..n)
            .map(|_| {
                (
                    NodeId(rng.gen_range(0u16..32)),
                    rng.gen_range(0u64..1 << 40),
                )
            })
            .collect()
    };
    CounterSnapshot {
        version: VersionNo(rng.gen_range(0u32..1 << 20)),
        requests_to: rows(rng),
        completions_from: rows(rng),
    }
}

fn arb_sub(rng: &mut SmallRng) -> SubtxnId {
    SubtxnId {
        spawner: NodeId(rng.gen_range(0u16..64)),
        seq: rng.gen_range(0u64..1 << 40),
    }
}

fn arb_opt_node(rng: &mut SmallRng) -> Option<NodeId> {
    if rng.gen_range(0u8..2) == 0 {
        None
    } else {
        Some(NodeId(rng.gen_range(0u16..64)))
    }
}

/// One random message; the discriminant range is kept in sync with
/// `Msg` by `build_msg`'s exhaustive match (a new variant extends 20).
fn build_msg(seed: u64) -> Msg {
    let rng = &mut SmallRng::seed_from_u64(seed);
    let v = VersionNo(rng.gen_range(0u32..1 << 20));
    match rng.gen_range(0u8..20) {
        0 => Msg::Submit {
            txn: arb_txn(rng),
            kind: arb_kind(rng),
            plan: arb_plan(rng, 3),
            client: NodeId(rng.gen_range(0u16..64)),
            fail_node: arb_opt_node(rng),
        },
        1 => Msg::TxnDone {
            txn: arb_txn(rng),
            version: v,
            committed: rng.gen_range(0u8..2) == 1,
        },
        2 => {
            let n = rng.gen_range(0usize..6);
            Msg::ReadResults {
                txn: arb_txn(rng),
                reads: (0..n)
                    .map(|_| ReadObservation {
                        key: Key(rng.gen_range(0u64..1 << 32)),
                        version: if rng.gen_range(0u8..2) == 0 {
                            None
                        } else {
                            Some(VersionNo(rng.gen_range(0u32..1 << 20)))
                        },
                        value: arb_value(rng),
                    })
                    .collect(),
            }
        }
        3 => Msg::Subtxn {
            txn: arb_txn(rng),
            kind: arb_kind(rng),
            version: v,
            plan: arb_plan(rng, 3),
            parent_sub: arb_sub(rng),
            client: NodeId(rng.gen_range(0u16..64)),
            fail_node: arb_opt_node(rng),
        },
        4 => {
            let n = rng.gen_range(0usize..6);
            Msg::SubtreeDone {
                txn: arb_txn(rng),
                parent_sub: arb_sub(rng),
                participants: (0..n).map(|_| NodeId(rng.gen_range(0u16..64))).collect(),
                clean: rng.gen_range(0u8..2) == 1,
            }
        }
        5 => Msg::Compensate {
            txn: arb_txn(rng),
            version: v,
        },
        6 => Msg::XpResolve { txn: arb_txn(rng) },
        7 => Msg::StartAdvancement { vu_new: v },
        8 => Msg::AdvanceAck { vu_new: v },
        9 => Msg::ReadCounters {
            round: rng.gen_range(0u64..1 << 30),
            version: v,
        },
        10 => Msg::CountersReport {
            round: rng.gen_range(0u64..1 << 30),
            version: v,
            snapshot: arb_snapshot(rng),
        },
        11 => Msg::AdvanceRead { vr_new: v },
        12 => Msg::AdvanceReadAck { vr_new: v },
        13 => Msg::Gc { vr_new: v },
        14 => Msg::GcAck { vr_new: v },
        15 => Msg::TriggerAdvancement,
        16 => Msg::NcPrepare { txn: arb_txn(rng) },
        17 => Msg::NcVote {
            txn: arb_txn(rng),
            node: NodeId(rng.gen_range(0u16..64)),
            yes: rng.gen_range(0u8..2) == 1,
        },
        18 => Msg::NcDecision {
            txn: arb_txn(rng),
            commit: rng.gen_range(0u8..2) == 1,
        },
        _ => Msg::ReleaseLocks { txn: arb_txn(rng) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 400, ..ProptestConfig::default() })]

    #[test]
    fn every_message_round_trips(seed in any::<u64>()) {
        let msg = build_msg(seed);
        let bytes = msg.encode().expect("hot-path messages encode");
        let back = Msg::decode(&bytes).expect("own frames decode");
        prop_assert_eq!(msg, back);
    }

    #[test]
    fn every_truncation_is_rejected(seed in any::<u64>()) {
        let bytes = build_msg(seed).encode().expect("encode");
        // Frames are exact-length: every strict prefix must fail cleanly.
        for cut in 0..bytes.len() {
            prop_assert!(Msg::decode(&bytes[..cut]).is_err(), "cut at {}", cut);
        }
    }

    #[test]
    fn bit_flips_never_panic(seed in any::<u64>()) {
        let bytes = build_msg(seed).encode().expect("encode");
        let rng = &mut SmallRng::seed_from_u64(seed ^ 0xF11D);
        for _ in 0..64 {
            let mut bad = bytes.clone();
            let pos = rng.gen_range(0..bad.len());
            bad[pos] ^= 1 << rng.gen_range(0u32..8);
            let _ = Msg::decode(&bad); // must return, never panic
        }
    }

    #[test]
    fn payload_flips_fail_the_checksum(seed in any::<u64>()) {
        let bytes = build_msg(seed).encode().expect("encode");
        if bytes.len() <= 16 {
            return; // no payload (e.g. TriggerAdvancement): nothing to flip
        }
        let rng = &mut SmallRng::seed_from_u64(seed ^ 0xC45C);
        for _ in 0..32 {
            let mut bad = bytes.clone();
            let pos = rng.gen_range(16..bad.len());
            bad[pos] ^= 1 << rng.gen_range(0u32..8);
            prop_assert!(Msg::decode(&bad).is_err(), "payload flip at {} decoded", pos);
        }
    }

    #[test]
    fn garbage_bytes_never_panic(seed in any::<u64>()) {
        let rng = &mut SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..512);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
        let _ = Msg::decode(&garbage); // must return, never panic

        // Garbage wearing a valid header shape is the adversarial case:
        // correct magic, in-range length, arbitrary body.
        let mut framed = Vec::new();
        framed.extend_from_slice(&0x3356_4652u32.to_le_bytes());
        framed.extend_from_slice(&1u16.to_le_bytes());
        framed.push(rng.gen_range(0u8..=255)); // kind
        framed.push(0); // reserved
        framed.extend_from_slice(&(len as u32).to_le_bytes());
        framed.extend_from_slice(&threev::storage::wire::checksum(&garbage).to_le_bytes());
        framed.extend_from_slice(&garbage);
        let _ = Msg::decode(&framed); // must return, never panic
    }
}
