//! Regression corpus replay: every schedule checked into `tests/schedules/`
//! must replay cleanly through the model checker's invariant oracle, and
//! replaying it twice must produce byte-identical reports (the kernel and
//! the checker are fully deterministic).
//!
//! The corpus is curated from recorded random walks (`threev-check record`)
//! chosen for the orderings they pin down: transactions straddling each of
//! the four advancement phase boundaries, an ahead/behind version-skew pair
//! under a three-node advancement, a crash executed inside Phase 2, an NC3V
//! gate race, a reordered two-node baseline, and a cross-partition tree
//! alive across both partitions' concurrent advancements.

use std::path::PathBuf;

use threev::check::{run_schedule, scenario, Schedule, DEFAULT_MAX_STEPS};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/schedules")
}

fn corpus() -> Vec<(String, Schedule)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/schedules/ must exist") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("sched") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable schedule file");
        let sched = Schedule::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        out.push((name, sched));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[test]
fn corpus_is_present_and_parses() {
    let corpus = corpus();
    assert!(
        corpus.len() >= 5,
        "expected at least the 5 curated schedules, found {}",
        corpus.len()
    );
    // The orderings the issue asks the corpus to pin down must be present.
    for required in [
        "phase-boundary-p1p2p3.sched",
        "phase-boundary-p2p3p4.sched",
        "skew-ahead.sched",
        "skew-behind.sched",
        "crash-spanning-p2.sched",
        "skew-cross-partition.sched",
    ] {
        assert!(
            corpus.iter().any(|(n, _)| n == required),
            "missing required corpus schedule {required}"
        );
    }
}

#[test]
fn every_corpus_schedule_replays_clean() {
    for (name, sched) in corpus() {
        let sc = scenario::find(&sched.scenario)
            .unwrap_or_else(|| panic!("{name}: unknown scenario {:?}", sched.scenario));
        let out = run_schedule(sc, sched.seed, &sched.choices, DEFAULT_MAX_STEPS);
        assert!(
            out.violation.is_none(),
            "{name}: oracle violation at step {}: {}",
            out.violation.as_ref().unwrap().step,
            out.violation.as_ref().unwrap().violation
        );
        assert!(
            out.quiescent,
            "{name}: did not quiesce in {} steps",
            out.steps
        );
    }
}

#[test]
fn replaying_twice_is_byte_identical() {
    for (name, sched) in corpus() {
        let sc = scenario::find(&sched.scenario).expect("scenario exists");
        let a = run_schedule(sc, sched.seed, &sched.choices, DEFAULT_MAX_STEPS);
        let b = run_schedule(sc, sched.seed, &sched.choices, DEFAULT_MAX_STEPS);
        assert_eq!(
            a.steps, b.steps,
            "{name}: step counts differ across replays"
        );
        assert_eq!(
            a.report, b.report,
            "{name}: oracle reports differ across replays"
        );
    }
}
