//! Property: batched delivery is an *amortisation*, never a semantic
//! change.
//!
//! The kernel's batched mode ([`threev::sim::SimConfig::batch`]) coalesces
//! same-timestamp runs of messages to one actor into a single
//! [`threev::sim::Actor::on_batch`] call. The engines override `on_batch`
//! to hoist per-wakeup work out of the per-message loop. None of that may
//! be observable: for any workload — jittery reordering networks, fault
//! injection, racing advancement — a batched run must be *bit-identical*
//! to the per-message run with the same seed: same transaction records,
//! same per-node version state and store layouts, same kernel statistics
//! (save for the batch counters themselves, which exist only to report
//! amortisation).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use threev::core::advance::AdvancementPolicy;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::model::NodeId;
use threev::sim::{FaultPlane, LatencyModel, SimConfig, SimDuration, SimTime};
use threev::storage::BackendConfig;
use threev::workload::HospitalWorkload;

#[derive(Debug, Clone)]
struct Scenario {
    n_nodes: u16,
    rate: f64,
    seed: u64,
    adv_period_ms: u64,
    jitter_max_us: u64,
    fail_ppm: u32,
    fifo: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        2u16..6,
        500.0f64..3_000.0,
        any::<u64>(),
        5u64..60,
        0u64..6_000,
        0u32..60_000,
        any::<bool>(),
    )
        .prop_map(
            |(n_nodes, rate, seed, adv_period_ms, jitter_max_us, fail_ppm, fifo)| Scenario {
                n_nodes,
                rate,
                seed,
                adv_period_ms,
                jitter_max_us,
                fail_ppm,
                fifo,
            },
        )
}

/// Everything observable about a finished run, in comparable form.
/// Transaction records and values carry no `PartialEq` across the
/// workspace facade, so the fingerprint canonicalises through `Debug` —
/// exact, and self-describing in the failure diff.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    records: Vec<String>,
    /// Per node: (vu, vr, full store layout over all keys).
    nodes: Vec<(String, String, Vec<String>)>,
    messages: u64,
    timers: u64,
    events: u64,
    /// Transport fault counters; asserted zero in [`run`] — with the fault
    /// plane disabled, the unified transport must be a pure latency pipe.
    dropped: u64,
    duplicated: u64,
    reordered: u64,
    messages_by_tag: Vec<(String, u64)>,
    advancements: usize,
}

fn run(s: &Scenario, batch: bool, backend: BackendConfig) -> Fingerprint {
    let workload = HospitalWorkload {
        departments: s.n_nodes,
        patients: 20,
        rate_tps: s.rate,
        read_pct: 30,
        max_fanout: s.n_nodes.min(3),
        duration: SimDuration::from_millis(200),
        zipf_s: 0.9,
        seed: s.seed,
    };
    let schema = workload.schema();
    let mut arrivals = workload.arrivals();

    // Fault injection so compensation runs under batching too.
    let mut rng = SmallRng::seed_from_u64(s.seed ^ 0xFA11);
    for a in &mut arrivals {
        if a.plan.kind == threev::model::TxnKind::Commuting
            && rng.gen_range(0u32..1_000_000) < s.fail_ppm
        {
            let nodes = a.plan.root.nodes();
            a.fail_node = Some(NodeId(nodes[rng.gen_range(0..nodes.len())].0));
        }
    }

    let cfg = ClusterConfig {
        n_nodes: s.n_nodes,
        sim: SimConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_micros(100),
                max: SimDuration::from_micros(100 + s.jitter_max_us),
            },
            local_latency: SimDuration::from_micros(1),
            fifo: s.fifo,
            seed: s.seed,
            batch,
            faults: FaultPlane::default(),
            fault_stream: 0,
        },
        protocol: Default::default(),
    }
    .backend(backend)
    .advancement(AdvancementPolicy::Periodic {
        first: SimDuration::from_millis(s.adv_period_ms),
        period: SimDuration::from_millis(s.adv_period_ms),
    });
    let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
    cluster.run_until(SimTime(2_000_000));

    let mut nodes = Vec::new();
    for i in 0..s.n_nodes {
        let node = cluster.node(i);
        let mut keys: Vec<_> = node.store().keys().collect();
        keys.sort_unstable();
        let layout: Vec<String> = keys
            .into_iter()
            .map(|k| format!("{k:?} => {:?}", node.store().layout(k)))
            .collect();
        nodes.push((
            format!("{:?}", node.vu()),
            format!("{:?}", node.vr()),
            layout,
        ));
    }
    let stats = cluster.sim_stats();
    assert_eq!(
        (stats.dropped, stats.duplicated, stats.reordered),
        (0, 0, 0),
        "no-fault run must not drop/duplicate/reorder"
    );
    let mut messages_by_tag: Vec<(String, u64)> = stats
        .messages_by_tag
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    messages_by_tag.sort();
    Fingerprint {
        records: cluster.records().iter().map(|r| format!("{r:?}")).collect(),
        nodes,
        messages: stats.messages,
        timers: stats.timers,
        events: stats.events,
        dropped: stats.dropped,
        duplicated: stats.duplicated,
        reordered: stats.reordered,
        messages_by_tag,
        advancements: cluster.advancements().len(),
    }
}

fn check(s: &Scenario) {
    // `THREEV_BACKEND=paged` reruns the whole suite over the on-disk
    // backend (fresh scratch dir per run); unset/`mem` keeps the
    // historical in-memory runs.
    let per_message = run(s, false, threev::testutil::backend_from_env("batch-eq"));
    let batched = run(s, true, threev::testutil::backend_from_env("batch-eq"));
    assert_eq!(per_message, batched, "batched run diverged for {s:?}");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case simulates two full cluster runs
        .. ProptestConfig::default()
    })]

    #[test]
    fn batched_delivery_is_observationally_identical(s in scenario()) {
        check(&s);
    }
}

/// Hand-picked worst case as a fast deterministic regression: reordering
/// network, aggressive advancement, fault injection.
#[test]
fn adversarial_fixed_case() {
    check(&Scenario {
        n_nodes: 4,
        rate: 2_500.0,
        seed: 0xBA7C4,
        adv_period_ms: 5,
        jitter_max_us: 5_000,
        fail_ppm: 40_000,
        fifo: false,
    });
}

/// Zero jitter + FIFO piles everything onto identical timestamps — the
/// maximal-coalescing regime where batches are actually large.
#[test]
fn max_coalescing_fixed_case() {
    check(&Scenario {
        n_nodes: 3,
        rate: 2_000.0,
        seed: 7,
        adv_period_ms: 10,
        jitter_max_us: 0,
        fail_ppm: 0,
        fifo: true,
    });
}

/// The storage seam itself must be invisible: the same seeded scenario run
/// over the in-memory backend and over the on-disk paged backend must
/// produce bit-identical fingerprints (records, stores, kernel stats). This
/// pins the tentpole's equivalence claim without needing `THREEV_BACKEND`.
#[test]
fn paged_backend_is_observationally_identical() {
    let s = Scenario {
        n_nodes: 4,
        rate: 2_500.0,
        seed: 0xBA7C4,
        adv_period_ms: 5,
        jitter_max_us: 5_000,
        fail_ppm: 40_000,
        fifo: false,
    };
    let dir = std::env::temp_dir().join(format!("threev-batch-eq-xb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mem = run(&s, true, BackendConfig::Mem);
    let paged = run(&s, true, BackendConfig::Paged { dir: dir.clone() });
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(mem, paged, "paged backend diverged for {s:?}");
}
