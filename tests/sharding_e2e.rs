//! End-to-end property: cross-partition transaction trees are atomic.
//!
//! A sharded cluster executes commuting trees whose children land on
//! foreign partitions. Whatever the network does on the *control plane*
//! (each partition's coordinator↔node links suffer 20% loss, duplication,
//! delay spikes, and a paused node — the same plane as
//! `advancement_under_faults`), a cross-partition tree must commit on
//! **all** partitions or on **none**: a committed visit's journal entry is
//! present on every node it charged, an aborted visit's on none. Each
//! partition's advancement still completes exactly once, and the faulty
//! run converges to the stores of a zero-fault run with the same seed.
//!
//! Faults are scoped to the control plane only; the data plane (including
//! the inter-partition shuttle) stays reliable, matching the paper's §6
//! delegation of update delivery to the network layer.

use threev::analysis::TxnStatus;
use threev::core::advance::AdvancementPolicy;
use threev::core::client::Arrival;
use threev::core::node::ThreeVNode;
use threev::model::{
    Key, KeyDecl, NodeId, PartitionId, Schema, SubtxnPlan, Topology, TxnPlan, UpdateOp, Value,
    VersionNo,
};
use threev::shard::{ShardOutcome, ShardedCluster, ShardedConfig, ShardedHospital};
use threev::sim::{FaultPlane, FaultScope, LatencyModel, NodePause, SimDuration, SimTime};
use threev::workload::HospitalWorkload;

/// 2 partitions x 2 nodes: P0 = {0, 1} (coord 2), P1 = {4, 5} (coord 6).
fn topology() -> Topology {
    Topology::new(2, 2)
}

fn ms(x: u64) -> SimTime {
    SimTime(x * 1_000)
}

/// One balance counter and one charge journal per global node.
fn schema(topo: &Topology) -> Schema {
    let mut decls = Vec::new();
    for p in 0..topo.n_partitions() {
        for node in topo.nodes(PartitionId(p)) {
            decls.push(KeyDecl::counter(Key(u64::from(node.0)), node, 0));
            decls.push(KeyDecl::journal(Key(1_000 + u64::from(node.0)), node));
        }
    }
    Schema::new(decls)
}

/// A visit charging each node of `targets` (root = first target).
fn visit(targets: &[NodeId], amount: i64, tag: u32) -> TxnPlan {
    let charge = |node: NodeId| {
        SubtxnPlan::new(node)
            .update(Key(u64::from(node.0)), UpdateOp::Add(amount))
            .update(
                Key(1_000 + u64::from(node.0)),
                UpdateOp::Append { amount, tag },
            )
    };
    let mut root = charge(targets[0]);
    for &node in &targets[1..] {
        root = root.child(charge(node));
    }
    TxnPlan::commuting(root)
}

/// The workload: cross-partition visits rooted on each side, local visits
/// on both, and one cross-partition visit that aborts on its foreign leg.
/// Tags are unique per transaction, so journal entries identify their
/// writer.
fn arrivals(topo: &Topology) -> Vec<Vec<Arrival>> {
    let p0 = topo.nodes(PartitionId(0));
    let p1 = topo.nodes(PartitionId(1));
    let mut s0 = Vec::new();
    let mut s1 = Vec::new();
    let mut tag = 0u32;
    for i in 0..10u64 {
        // Cross-partition: rooted on P0, charging one node of each side.
        s0.push(Arrival::at(ms(1 + i), visit(&[p0[0], p1[1]], 2, tag)));
        tag += 1;
        // Cross-partition the other way.
        s1.push(Arrival::at(ms(2 + i), visit(&[p1[0], p0[1]], 3, tag)));
        tag += 1;
        // Partition-local traffic on both sides.
        s0.push(Arrival::at(ms(3 + i), visit(&[p0[1]], 1, tag)));
        tag += 1;
        s1.push(Arrival::at(ms(3 + i), visit(&[p1[1]], 1, tag)));
        tag += 1;
    }
    // The doomed tree: aborts on its foreign (P1) leg, must compensate on
    // both partitions.
    s0.push(Arrival::failing_at(
        ms(8),
        visit(&[p0[0], p1[0]], 100, ABORT_TAG),
        p1[0],
    ));
    vec![s0, s1]
}

const ABORT_TAG: u32 = 9_999;

/// Every coordinator↔node link of every partition, both directions.
fn control_plane_links(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    (0..topo.n_partitions())
        .flat_map(|p| {
            let pid = PartitionId(p);
            let coord = topo.coordinator(pid);
            topo.nodes(pid)
                .into_iter()
                .flat_map(move |n| [(coord, n), (n, coord)])
        })
        .collect()
}

/// The fault plane under test: `drop_ppm` loss + 10% duplication + 5%
/// delay spikes on every control-plane link, and one DB node of P1 paused
/// over the advancement trigger.
fn plane(topo: &Topology, drop_ppm: u32) -> FaultPlane {
    FaultPlane {
        drop_ppm,
        dup_ppm: 100_000,
        delay_ppm: 50_000,
        scope: FaultScope::Links(control_plane_links(topo)),
        pauses: vec![NodePause {
            node: topo.nodes(PartitionId(1))[0],
            from: ms(10),
            until: ms(50),
        }],
        ..FaultPlane::default()
    }
}

/// Canonical image of the *newest* version of every key on a node.
///
/// Unlike the single-partition fault suite, the full version layout is not
/// fault-invariant here: version numbers live in per-partition spaces, so
/// a subtransaction stalled (by a pause) past a foreign partition's
/// advancement legitimately lands in that partition's next version. What
/// must be invariant is the content the run converges to — the newest
/// version's value per key. Journal entries are sorted (commuting appends
/// carry no meaningful order).
fn store_image(node: &ThreeVNode) -> Vec<String> {
    let mut keys: Vec<Key> = node.store().keys().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|key| {
            let layout = node.store().layout(key).expect("key exists");
            let newest = layout.into_iter().last().map(|(_, value)| match value {
                Value::Journal(mut entries) => {
                    entries.sort_by_key(|e| (e.txn, e.amount, e.tag));
                    format!("jrn{entries:?}")
                }
                other => format!("{other:?}"),
            });
            format!("{key:?} => {newest:?}")
        })
        .collect()
}

struct Outcome {
    stores: Vec<Vec<String>>,
    committed: usize,
}

/// Tags of journal entries currently visible on `node` (any version).
fn visible_tags(node: &ThreeVNode) -> Vec<u32> {
    let mut tags = Vec::new();
    for key in node.store().keys() {
        if let Some(layout) = node.store().layout(key) {
            for (_, value) in layout {
                if let Value::Journal(entries) = value {
                    tags.extend(entries.iter().map(|e| e.tag));
                }
            }
        }
    }
    tags.sort_unstable();
    tags.dedup();
    tags
}

/// Run the workload, trigger one advancement per partition mid-pause, and
/// drive the cluster to quiescence. `faults == None` is the clean
/// reference run.
fn run(seed: u64, faults: Option<FaultPlane>) -> Outcome {
    let topo = topology();
    let faulty = faults.is_some();
    let mut cfg = ShardedConfig::new(2, 2)
        .seed(seed)
        .advancement(AdvancementPolicy::Manual);
    cfg.sim.latency = LatencyModel::Uniform {
        min: SimDuration::from_micros(50),
        max: SimDuration::from_micros(150),
    };
    if let Some(fault_plane) = faults {
        cfg.sim.faults = fault_plane;
        // Retransmit buys liveness on the lossy control plane.
        cfg.protocol.coordinator.retransmit = Some(SimDuration::from_millis(2));
    }
    let schema = schema(&topo);
    let mut cluster = ShardedCluster::new(&schema, cfg, arrivals(&topo));
    cluster.run_until(ms(30));
    cluster.trigger_advancement_all();
    let out = cluster.run(SimTime(60_000_000_000));
    assert!(
        matches!(out, ShardOutcome::Quiescent(_)),
        "cluster failed to quiesce (seed {seed}, faulty {faulty}): {out:?}"
    );
    assert!(
        cluster.cross_messages() > 0,
        "workload must cross partitions"
    );

    if faulty {
        let dropped: u64 = (0..2)
            .map(|p| cluster.sim_stats(PartitionId(p)).dropped)
            .sum();
        assert!(dropped > 0, "fault plane must actually drop (seed {seed})");
    }

    // Exactly one advancement per partition, fully recorded on its nodes.
    for p in 0..2 {
        let pid = PartitionId(p);
        assert_eq!(
            cluster.advancements(pid).len(),
            1,
            "partition {p} advancement count (seed {seed}, faulty {faulty})"
        );
        for node in topo.nodes(pid) {
            let engine = cluster.node(node);
            assert_eq!(
                (engine.vu(), engine.vr()),
                (VersionNo(2), VersionNo(1)),
                "node {node} version window (seed {seed}, faulty {faulty})"
            );
            assert!(engine.is_quiescent(), "node {node} left in-flight state");
        }
    }
    assert!(cluster.max_versions_high_water() <= 3, "3V bound violated");

    // All-or-none across partitions, by journal tag: every committed
    // visit's tag is visible on every node it charged; the aborted visit's
    // tag is visible nowhere.
    let records = cluster.records();
    let committed = records
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count();
    assert_eq!(
        committed,
        records.len() - 1,
        "exactly the doomed visit aborts (seed {seed}, faulty {faulty})"
    );
    for node in [topo.nodes(PartitionId(0))[0], topo.nodes(PartitionId(1))[0]] {
        let tags = visible_tags(cluster.node(node));
        assert!(
            !tags.contains(&ABORT_TAG),
            "aborted tree left a trace on node {node} (seed {seed}, faulty {faulty})"
        );
    }

    let stores = (0..2)
        .flat_map(|p| topo.nodes(PartitionId(p)))
        .map(|n| store_image(cluster.node(n)))
        .collect();
    Outcome { stores, committed }
}

/// One seed, one loss rate: the faulty run must converge to the clean
/// run's stores on every node of every partition.
fn check(seed: u64, drop_ppm: u32) {
    let clean = run(seed, None);
    let faulty = run(seed, Some(plane(&topology(), drop_ppm)));
    assert_eq!(clean.committed, faulty.committed);
    for (i, (c, f)) in clean.stores.iter().zip(&faulty.stores).enumerate() {
        assert_eq!(
            c, f,
            "node {i} diverged under faults (seed {seed}, drop {drop_ppm}ppm)"
        );
    }
}

/// The acceptance gate: cross-partition trees stay atomic at 20%
/// control-plane loss, on five consecutive seeds.
#[test]
fn cross_partition_trees_atomic_at_20pct_loss() {
    for seed in 1..=5u64 {
        check(seed, 200_000);
    }
}

#[test]
fn cross_partition_trees_atomic_at_5pct_loss() {
    for seed in 1..=3u64 {
        check(seed, 50_000);
    }
}

/// CI fault-matrix hook: seed pinned from `THREEV_FAULT_SEED`.
#[test]
fn cross_partition_trees_atomic_at_env_seed() {
    let seed = threev::testutil::fault_seed_or(0x5A4D);
    check(seed, 200_000);
}

/// No-fault determinism across the shuttle: same seed, same everything.
#[test]
fn sharded_replay_is_deterministic() {
    let a = run(0xD7, None);
    let b = run(0xD7, None);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.stores, b.stores);
}

/// The CI 4-partition smoke: the hospital workload spread over a 4x2
/// topology commits work rooted on every partition, every partition
/// advances, and confinement controls cross traffic exactly (zero when
/// trees are pruned to their root partition, nonzero otherwise).
#[test]
fn four_partition_hospital_smoke() {
    let base = HospitalWorkload {
        departments: 8,
        patients: 64,
        rate_tps: 500.0,
        read_pct: 10,
        max_fanout: 2,
        duration: SimDuration::from_millis(40),
        zipf_s: 0.9,
        seed: 0x5A,
    };
    for confined in [true, false] {
        let cfg = ShardedConfig::new(4, 2)
            .seed(0x5A)
            .advancement(AdvancementPolicy::Periodic {
                first: SimDuration::from_millis(20),
                period: SimDuration::from_millis(30),
            });
        let mut hospital = ShardedHospital::new(base.clone(), cfg.topology);
        if confined {
            hospital = hospital.confined();
        }
        let mut cluster = ShardedCluster::new(&hospital.schema(), cfg, hospital.arrivals());
        cluster.run_until(SimTime(200_000));

        let records = cluster.records();
        for p in 0..4 {
            let pid = PartitionId(p);
            let committed_here = records
                .iter()
                .filter(|r| r.status == TxnStatus::Committed)
                .filter(|r| hospital.topology.partition_of(r.id.origin) == pid)
                .count();
            assert!(
                committed_here > 0,
                "partition {p} committed nothing (confined {confined})"
            );
            assert!(
                !cluster.advancements(pid).is_empty(),
                "partition {p} never advanced (confined {confined})"
            );
        }
        assert!(cluster.max_versions_high_water() <= 3, "3V bound violated");
        if confined {
            assert_eq!(
                cluster.cross_messages(),
                0,
                "confined run crossed partitions"
            );
        } else {
            assert!(cluster.cross_messages() > 0, "unconfined run never crossed");
        }
    }
}
