//! Property-based NC3V coverage (paper §5), at the unit level rather than
//! only end-to-end:
//!
//! * the lock-compatibility table, directly against
//!   [`threev::storage::LockTable`]: commute/commute is the only compatible
//!   pair, commute-only workloads never wait or die, and exclusive holders
//!   exclude everything under wait-die discipline;
//! * wait-die soundness over random mixed acquire/release sequences —
//!   granted holders stay pairwise compatible, waiters are strictly older
//!   than every conflicting holder, and full release always drains the
//!   table;
//! * the `vu == vr + 1` gate: randomized NC transactions racing a
//!   randomized advancement must all commit, with idle lock tables and
//!   balanced gate statistics at quiescence.

use proptest::prelude::*;
use threev::analysis::TxnStatus;
use threev::core::advance::AdvancementPolicy;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::core::Arrival;
use threev::model::{Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnId, TxnPlan, UpdateOp};
use threev::sim::{SimDuration, SimTime};
use threev::storage::{LockDecision, LockMode, LockTable};

fn t(seq: u64) -> TxnId {
    TxnId::new(seq, NodeId(0))
}

fn n(i: u16) -> NodeId {
    NodeId(i)
}

fn k(i: u64) -> Key {
    Key(i)
}

fn ms(x: u64) -> SimTime {
    SimTime(x * 1_000)
}

/// §5: "Commuting locks are compatible with each other but not with their
/// non-commuting counterparts." The whole matrix, both orders.
#[test]
fn compatibility_matrix_is_commute_commute_only() {
    use LockMode::*;
    for (a, b) in [
        (Commute, Commute),
        (Commute, Exclusive),
        (Exclusive, Commute),
        (Exclusive, Exclusive),
    ] {
        assert_eq!(
            a.compatible(b),
            a == Commute && b == Commute,
            "compatible({a:?}, {b:?})"
        );
        assert_eq!(a.compatible(b), b.compatible(a), "matrix must be symmetric");
    }
}

/// One randomly generated lock-table operation.
#[derive(Clone, Debug)]
enum LockOp {
    Acquire { txn: u64, key: u64, exclusive: bool },
    Release { txn: u64 },
}

fn lock_op(txns: u64, keys: u64) -> impl Strategy<Value = LockOp> {
    prop_oneof![
        4 => (0..txns, 0..keys, any::<bool>())
            .prop_map(|(txn, key, exclusive)| LockOp::Acquire { txn, key, exclusive }),
        1 => (0..txns).prop_map(|txn| LockOp::Release { txn }),
    ]
}

proptest! {
    /// §5: "in the absence of non-well-behaved transactions, there is no
    /// wait to obtain a commute lock" — any interleaving of commute
    /// acquisitions and releases is granted immediately, and releasing
    /// everything leaves the table idle.
    #[test]
    fn commute_only_workloads_never_wait(
        ops in proptest::collection::vec(lock_op(8, 4), 1..80),
    ) {
        let mut lt = LockTable::new();
        for op in &ops {
            match *op {
                LockOp::Acquire { txn, key, .. } => {
                    let d = lt.acquire(k(key), LockMode::Commute, t(txn));
                    prop_assert_eq!(d, LockDecision::Granted, "commute acquire blocked: {:?}", op);
                }
                LockOp::Release { txn } => {
                    // No waiters exist, so a release can never grant.
                    prop_assert!(lt.release_all(t(txn)).is_empty());
                }
            }
        }
        prop_assert_eq!(lt.waits, 0);
        prop_assert_eq!(lt.die_aborts, 0);
        for txn in 0..8 {
            lt.release_all(t(txn));
        }
        prop_assert!(lt.is_idle(), "table not drained after full release");
    }

    /// Wait-die soundness over random mixed workloads, checked against the
    /// exported table state after every operation:
    ///
    /// * holders of different transactions are pairwise compatible;
    /// * `Waiting` is only returned to a requester strictly older than
    ///   every conflicting holder (the "wait" half of wait-die);
    /// * `Abort` is only returned when a conflicting younger-blocking
    ///   holder or waiter exists (the "die" half);
    /// * releasing every transaction drains the table completely.
    #[test]
    fn wait_die_discipline_holds(
        ops in proptest::collection::vec(lock_op(10, 3), 1..120),
    ) {
        let mut lt = LockTable::new();
        for op in &ops {
            match *op {
                LockOp::Acquire { txn, key, exclusive } => {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Commute };
                    // Snapshot the state the decision was made against.
                    let before = lt.export_parts();
                    let pre = before.iter().find(|(pk, ..)| *pk == k(key));
                    let conflicting_elder = pre.is_some_and(|(_, holders, waiters)| {
                        holders.iter().any(|(h, m, _)| *h != t(txn) && !m.compatible(mode) && t(txn) > *h)
                            || waiters.iter().any(|(w, m)| *w != t(txn) && !m.compatible(mode) && t(txn) > *w)
                    });
                    let d = lt.acquire(k(key), mode, t(txn));
                    match d {
                        LockDecision::Granted => {}
                        LockDecision::Waiting => prop_assert!(
                            !conflicting_elder,
                            "{:?} waited behind an older conflicting txn (deadlock risk)", op
                        ),
                        LockDecision::Abort => prop_assert!(
                            conflicting_elder,
                            "{:?} died with no older conflicting holder/waiter", op
                        ),
                    }
                }
                LockOp::Release { txn } => {
                    for (gtxn, _, _) in lt.release_all(t(txn)) {
                        prop_assert!(gtxn != t(txn), "released txn was granted its own lock");
                    }
                }
            }
            // Global invariant: holders on a key are pairwise compatible
            // (or the same transaction, e.g. after an upgrade).
            for (key, holders, _) in lt.export_parts() {
                for (i, (ta, ma, _)) in holders.iter().enumerate() {
                    for (tb, mb, _) in &holders[i + 1..] {
                        prop_assert!(
                            ta == tb || ma.compatible(*mb),
                            "incompatible co-holders {ta:?}/{tb:?} on {key:?}"
                        );
                    }
                }
            }
        }
        for txn in 0..10 {
            lt.release_all(t(txn));
        }
        prop_assert!(lt.is_idle(), "table not drained after releasing every txn");
    }

    /// Exclusive really excludes: against a held exclusive lock, no other
    /// transaction is ever granted — an older requester waits, a younger
    /// one dies, in either request mode.
    #[test]
    fn exclusive_excludes_all_comers(
        holder in 20u64..40,
        delta in 1u64..20,
        req_exclusive in any::<bool>(),
    ) {
        let mode = if req_exclusive { LockMode::Exclusive } else { LockMode::Commute };
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire(k(1), LockMode::Exclusive, t(holder)), LockDecision::Granted);
        prop_assert_eq!(lt.acquire(k(1), mode, t(holder - delta)), LockDecision::Waiting);
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire(k(1), LockMode::Exclusive, t(holder)), LockDecision::Granted);
        prop_assert_eq!(lt.acquire(k(1), mode, t(holder + delta)), LockDecision::Abort);
    }

    /// The §5 admission gate: NC transactions submitted while an
    /// advancement holds the version window open (`vu == vr + 2`) are
    /// parked until `vr` catches up — and regardless of how arrivals and
    /// the trigger interleave, every transaction commits and every node's
    /// lock table is empty at quiescence.
    #[test]
    fn nc_gate_admits_everything_eventually(
        trigger_ms in 1u64..12,
        nc1_ms in 0u64..15,
        nc2_ms in 0u64..15,
        busy in 4u64..24,
    ) {
        let schema = Schema::new(vec![
            KeyDecl::register(k(1), n(0), 0),
            KeyDecl::register(k(2), n(1), 0),
            KeyDecl::counter(k(3), n(1), 0),
        ]);
        // Commuting traffic keeps the old update version busy so Phase 2
        // lasts long enough for the gate to matter.
        let mut arrivals: Vec<Arrival> = (0..busy)
            .map(|i| Arrival::at(
                ms(i),
                TxnPlan::commuting(SubtxnPlan::new(n(1)).update(k(3), UpdateOp::Add(1))),
            ))
            .collect();
        arrivals.push(Arrival::at(ms(nc1_ms), TxnPlan::non_commuting(
            SubtxnPlan::new(n(0))
                .update(k(1), UpdateOp::Assign(5))
                .child(SubtxnPlan::new(n(1)).update(k(2), UpdateOp::Assign(6))),
        )));
        arrivals.push(Arrival::at(ms(nc2_ms), TxnPlan::non_commuting(
            SubtxnPlan::new(n(1)).update(k(2), UpdateOp::Assign(7)),
        )));
        let cfg = ClusterConfig::new(2)
            .with_locks()
            .advancement(AdvancementPolicy::Periodic {
                first: SimDuration::from_millis(trigger_ms),
                period: SimDuration::from_secs(1000),
            });
        let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
        cluster.run_until(SimTime(60_000_000));
        prop_assert!(cluster.all_quiescent(), "cluster failed to quiesce");
        for r in cluster.records() {
            prop_assert_eq!(
                r.status, TxnStatus::Committed,
                "{:?} did not commit (trigger={}ms)", r.id, trigger_ms
            );
        }
        for i in 0..2u16 {
            prop_assert!(
                cluster.node(i).locks().is_idle(),
                "node {i} lock table has residue at quiescence"
            );
        }
    }
}

/// Deterministic witness that the gate actually closes: with the
/// advancement pinned mid-stream, the NC transaction must be counted at
/// the `vu == vr + 1` gate at least once, and still commit.
#[test]
fn nc_gate_observably_parks_and_releases() {
    let schema = Schema::new(vec![
        KeyDecl::register(k(1), n(0), 0),
        KeyDecl::counter(k(2), n(1), 0),
    ]);
    let nc = TxnPlan::non_commuting(SubtxnPlan::new(n(0)).update(k(1), UpdateOp::Assign(9)));
    let mut arrivals: Vec<Arrival> = (0..30)
        .map(|i| {
            Arrival::at(
                ms(i),
                TxnPlan::commuting(SubtxnPlan::new(n(1)).update(k(2), UpdateOp::Add(1))),
            )
        })
        .collect();
    arrivals.push(Arrival::at(ms(6), nc));
    let cfg = ClusterConfig::new(2)
        .with_locks()
        .advancement(AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(5),
            period: SimDuration::from_secs(1000),
        });
    let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
    // run_until, not run-to-quiescence: the periodic advancement timer
    // re-arms forever, so the event queue never drains.
    cluster.run_until(SimTime(30_000_000));
    assert!(cluster.all_quiescent());
    assert!(cluster
        .records()
        .iter()
        .all(|r| r.status == TxnStatus::Committed));
    let gated: u64 = cluster.node_stats().iter().map(|s| s.nc_gated).sum();
    assert!(gated >= 1, "NC txn should have been parked at the gate");
    assert!(cluster.node(0).locks().is_idle() && cluster.node(1).locks().is_idle());
}
