//! Model-checker acceptance tests (the issue's acceptance criteria, pinned
//! as tier-1 tests so they never regress):
//!
//! * exhaustive exploration of the 2-node / 1-advancement scenario finishes
//!   inside the CI budget with zero violations and a healthy count of
//!   distinct schedules;
//! * a bounded random sweep over every sound scenario stays clean;
//! * the deliberately sabotaged build (`skip_p2_drain`) is caught and the
//!   counterexample shrinks to at most 25 choices.

use threev::check::{
    explore_exhaustive, explore_random, run_schedule, scenario, shrink, DEFAULT_MAX_STEPS,
};

/// Exhaustive DFS over the two-node basic scenario at the CI-pinned budget.
/// Must complete (the sleep-set-reduced space fits the budget), find no
/// violation, and report a non-trivial number of distinct schedules.
#[test]
fn exhaustive_two_node_basic_is_clean() {
    let sc = scenario::find("two-node-basic").expect("catalogue scenario");
    let out = explore_exhaustive(sc, 3, 2_000, 400);
    assert!(
        out.violation.is_none(),
        "exhaustive exploration found a violation: {:?}",
        out.violation
    );
    assert!(
        out.schedules >= 150,
        "expected >= 150 distinct schedules under the pinned budget, got {}",
        out.schedules
    );
}

/// Exhaustive DFS over the striped two-node scenario at the same CI
/// budget: both stripes of node 0 advancing interleaved with cross-node
/// trees must leave P1/P2/P5 and the Thm 4.1 audit intact under every
/// explored interleaving — striping is layout, the version window stays
/// per-node.
#[test]
fn exhaustive_stripe_interleave_is_clean() {
    let sc = scenario::find("stripe-interleave").expect("catalogue scenario");
    let out = explore_exhaustive(sc, 3, 2_000, 400);
    assert!(
        out.violation.is_none(),
        "exhaustive exploration found a violation: {:?}",
        out.violation
    );
    assert!(
        out.schedules >= 150,
        "expected >= 150 distinct schedules under the pinned budget, got {}",
        out.schedules
    );
}

/// Quick random gate across every sound scenario — the same sweep CI runs
/// in the main job, at a smaller per-scenario budget.
#[test]
fn random_sweep_over_sound_scenarios_is_clean() {
    for sc in scenario::sound() {
        let out = explore_random(sc, 3, 2_000, DEFAULT_MAX_STEPS);
        assert!(
            out.violation.is_none(),
            "{}: random sweep found a violation: {}",
            sc.name,
            out.violation.as_ref().unwrap().at.violation
        );
        assert!(out.runs > 0, "{}: no walks completed", sc.name);
    }
}

/// The planted Phase-2 drain skip must be caught by random exploration and
/// shrink to a small, replayable counterexample (acceptance: <= 25 steps).
#[test]
fn planted_p2_skip_bug_is_caught_and_shrinks() {
    let sc = scenario::find("p2-skip").expect("catalogue scenario");
    assert!(sc.sabotaged, "p2-skip must be marked sabotaged");

    let out = explore_random(sc, 5, 60_000, 200);
    let cex = out
        .violation
        .expect("random exploration must catch the planted Phase-2 drain skip");

    let shrunk = shrink(sc, 5, &cex.choices, 200).expect("counterexample must still reproduce");
    assert!(
        shrunk.choices.len() <= 25,
        "shrunk counterexample has {} choices, expected <= 25",
        shrunk.choices.len()
    );

    // The minimal schedule replays to the same class of violation.
    let replay = run_schedule(sc, 5, &shrunk.choices, 200);
    let v = replay
        .violation
        .expect("minimal schedule must still violate");
    assert_eq!(
        std::mem::discriminant(&v.violation),
        std::mem::discriminant(&shrunk.at.violation),
        "replayed violation {:?} differs in kind from shrunk {:?}",
        v.violation,
        shrunk.at.violation
    );
}
