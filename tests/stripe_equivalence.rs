//! Property: intra-node key striping is an *execution layout*, never a
//! semantic change.
//!
//! A striped node partitions its store and lock table into N independent
//! stripes routed by a key hash. Every store rule (copy-on-update,
//! read-max-≤v, update-all-≥V(T)) and every lock decision is single-key
//! local, so routing by key must be exact: for any workload — lossy
//! networks, fault injection, racing advancement — a run with N stripes
//! must be *bit-identical* to the unsharded run with the same seed: same
//! transaction records, same per-node version state and store layouts,
//! same kernel statistics.
//!
//! The same harness pins the profiler's freedom: `ProfileMode::On` only
//! reads an injected clock and bumps counters nothing consults, so a
//! profiled run must fingerprint identically to `ProfileMode::Off`.

use proptest::prelude::*;
use threev::core::advance::AdvancementPolicy;
use threev::core::cluster::{ClusterConfig, ThreeVCluster};
use threev::core::node::ProfileMode;
use threev::sim::{FaultPlane, LatencyModel, SimConfig, SimDuration, SimTime};
use threev::storage::BackendConfig;
use threev::workload::HospitalWorkload;

#[derive(Debug, Clone)]
struct Scenario {
    n_nodes: u16,
    rate: f64,
    seed: u64,
    adv_period_ms: u64,
    jitter_max_us: u64,
    /// Wire loss, parts per million (5% = 50_000, 20% = 200_000).
    loss_ppm: u32,
    fifo: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        2u16..6,
        500.0f64..3_000.0,
        any::<u64>(),
        5u64..60,
        0u64..6_000,
        prop_oneof![Just(0u32), Just(50_000u32), Just(200_000u32)],
        any::<bool>(),
    )
        .prop_map(
            |(n_nodes, rate, seed, adv_period_ms, jitter_max_us, loss_ppm, fifo)| Scenario {
                n_nodes,
                rate,
                seed,
                adv_period_ms,
                jitter_max_us,
                loss_ppm,
                fifo,
            },
        )
}

/// Everything observable about a finished run, in comparable form
/// (canonicalised through `Debug`, as in `batch_equivalence`).
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    records: Vec<String>,
    /// Per node: (vu, vr, full store layout over all keys).
    nodes: Vec<(String, String, Vec<String>)>,
    messages: u64,
    timers: u64,
    events: u64,
    dropped: u64,
    duplicated: u64,
    messages_by_tag: Vec<(String, u64)>,
    advancements: usize,
}

fn run(s: &Scenario, stripes: u16, profile: ProfileMode, backend: BackendConfig) -> Fingerprint {
    let workload = HospitalWorkload {
        departments: s.n_nodes,
        patients: 20,
        rate_tps: s.rate,
        read_pct: 30,
        max_fanout: s.n_nodes.min(3),
        duration: SimDuration::from_millis(200),
        zipf_s: 0.9,
        seed: s.seed,
    };
    let schema = workload.schema();
    let arrivals = workload.arrivals();

    let cfg = ClusterConfig {
        n_nodes: s.n_nodes,
        sim: SimConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_micros(100),
                max: SimDuration::from_micros(100 + s.jitter_max_us),
            },
            local_latency: SimDuration::from_micros(1),
            fifo: s.fifo,
            seed: s.seed,
            batch: true,
            faults: if s.loss_ppm == 0 {
                FaultPlane::default()
            } else {
                FaultPlane::lossy(s.loss_ppm, 0)
            },
            fault_stream: 0,
        },
        protocol: Default::default(),
    }
    .backend(backend)
    .stripes(stripes)
    .profile(profile)
    .advancement(AdvancementPolicy::Periodic {
        first: SimDuration::from_millis(s.adv_period_ms),
        period: SimDuration::from_millis(s.adv_period_ms),
    });
    let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals);
    cluster.run_until(SimTime(2_000_000));

    let mut nodes = Vec::new();
    for i in 0..s.n_nodes {
        let node = cluster.node(i);
        let mut keys: Vec<_> = node.store().keys().collect();
        keys.sort_unstable();
        let layout: Vec<String> = keys
            .into_iter()
            .map(|k| format!("{k:?} => {:?}", node.store().layout(k)))
            .collect();
        nodes.push((
            format!("{:?}", node.vu()),
            format!("{:?}", node.vr()),
            layout,
        ));
    }
    let stats = cluster.sim_stats();
    let mut messages_by_tag: Vec<(String, u64)> = stats
        .messages_by_tag
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
    messages_by_tag.sort();
    Fingerprint {
        records: cluster.records().iter().map(|r| format!("{r:?}")).collect(),
        nodes,
        messages: stats.messages,
        timers: stats.timers,
        events: stats.events,
        dropped: stats.dropped,
        duplicated: stats.duplicated,
        messages_by_tag,
        advancements: cluster.advancements().len(),
    }
}

fn check(s: &Scenario) {
    let unsharded = run(
        s,
        1,
        ProfileMode::Off,
        threev::testutil::backend_from_env("stripe-eq"),
    );
    for stripes in [2u16, 8] {
        let striped = run(
            s,
            stripes,
            ProfileMode::Off,
            threev::testutil::backend_from_env("stripe-eq"),
        );
        assert_eq!(
            unsharded, striped,
            "striped run (N={stripes}) diverged for {s:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case simulates three full cluster runs
        .. ProptestConfig::default()
    })]

    #[test]
    fn striping_is_observationally_identical(s in scenario()) {
        check(&s);
    }
}

/// The issue's named fault points, as fast deterministic regressions:
/// 5% wire loss.
#[test]
fn lossy_5pct_fixed_case() {
    check(&Scenario {
        n_nodes: 4,
        rate: 2_500.0,
        seed: 0x57_21BE,
        adv_period_ms: 10,
        jitter_max_us: 3_000,
        loss_ppm: 50_000,
        fifo: false,
    });
}

/// 20% wire loss: retransmit/compensation paths dominate.
#[test]
fn lossy_20pct_fixed_case() {
    check(&Scenario {
        n_nodes: 4,
        rate: 2_500.0,
        seed: 0x57_21BE,
        adv_period_ms: 10,
        jitter_max_us: 3_000,
        loss_ppm: 200_000,
        fifo: false,
    });
}

/// Maximal-coalescing regime (zero jitter, FIFO) — the largest batches,
/// therefore the most consecutive same-stripe dispatches.
#[test]
fn max_coalescing_fixed_case() {
    check(&Scenario {
        n_nodes: 3,
        rate: 2_000.0,
        seed: 7,
        adv_period_ms: 10,
        jitter_max_us: 0,
        loss_ppm: 0,
        fifo: true,
    });
}

/// Striping over the on-disk paged backend (no durability: stripes are
/// legal there, each stripe gets its own page-file directory) must match
/// both the unsharded paged run and the striped in-memory run.
#[test]
fn paged_backend_striping_is_identical() {
    let s = Scenario {
        n_nodes: 4,
        rate: 2_000.0,
        seed: 0xD15C,
        adv_period_ms: 10,
        jitter_max_us: 2_000,
        loss_ppm: 50_000,
        fifo: false,
    };
    let dir = std::env::temp_dir().join(format!("threev-stripe-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mem = run(&s, 8, ProfileMode::Off, BackendConfig::Mem);
    let paged1 = run(
        &s,
        1,
        ProfileMode::Off,
        BackendConfig::Paged { dir: dir.clone() },
    );
    let _ = std::fs::remove_dir_all(&dir);
    let paged8 = run(
        &s,
        8,
        ProfileMode::Off,
        BackendConfig::Paged { dir: dir.clone() },
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(paged1, paged8, "paged striping diverged for {s:?}");
    assert_eq!(mem, paged8, "paged vs mem striping diverged for {s:?}");
}

/// Guard against the equivalence suite passing vacuously: a striped
/// cluster must really run N independent stripes and classify jobs
/// against them.
#[test]
fn striped_node_actually_stripes() {
    let workload = HospitalWorkload {
        departments: 4,
        patients: 20,
        rate_tps: 2_000.0,
        read_pct: 30,
        max_fanout: 3,
        duration: SimDuration::from_millis(200),
        zipf_s: 0.9,
        seed: 11,
    };
    let schema = workload.schema();
    let cfg = ClusterConfig::new(4).seed(11).stripes(8);
    let mut cluster = ThreeVCluster::new(&schema, cfg, workload.arrivals());
    cluster.run_until(SimTime(1_000_000));
    let node = cluster.node(0);
    assert_eq!(node.store().n_stripes(), 8, "stripes must be installed");
    let stats = node.stats();
    assert!(
        stats.stripe_local_jobs + stats.stripe_spanning_jobs > 0,
        "jobs must be classified against stripes: {stats:?}"
    );
}

/// Deterministic injected clock for the profiler guard: strictly monotone,
/// no wall-clock dependence.
fn counting_clock() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static T: AtomicU64 = AtomicU64::new(0);
    T.fetch_add(1, Ordering::Relaxed)
}

/// `ProfileMode::Off` must be bit-identical to a profiled run: the hooks
/// read a clock and bump counters nothing in the engine consults.
#[test]
fn profiler_is_free() {
    let s = Scenario {
        n_nodes: 4,
        rate: 2_500.0,
        seed: 0xF0F,
        adv_period_ms: 10,
        jitter_max_us: 3_000,
        loss_ppm: 50_000,
        fifo: false,
    };
    for stripes in [1u16, 8] {
        let off = run(&s, stripes, ProfileMode::Off, BackendConfig::Mem);
        let on = run(
            &s,
            stripes,
            ProfileMode::On(counting_clock),
            BackendConfig::Mem,
        );
        assert_eq!(off, on, "profiling changed behaviour at stripes={stripes}");
    }
}

/// A profiled node actually accumulates a breakdown; an unprofiled node
/// holds none.
#[test]
fn profiler_accumulates_when_on() {
    let s = Scenario {
        n_nodes: 2,
        rate: 1_000.0,
        seed: 3,
        adv_period_ms: 20,
        jitter_max_us: 0,
        loss_ppm: 0,
        fifo: true,
    };
    let workload = HospitalWorkload {
        departments: s.n_nodes,
        patients: 20,
        rate_tps: s.rate,
        read_pct: 30,
        max_fanout: 2,
        duration: SimDuration::from_millis(100),
        zipf_s: 0.9,
        seed: s.seed,
    };
    let schema = workload.schema();
    let cfg = ClusterConfig::new(s.n_nodes)
        .seed(s.seed)
        .profile(ProfileMode::On(counting_clock));
    let mut cluster = ThreeVCluster::new(&schema, cfg, workload.arrivals());
    cluster.run_until(SimTime(1_000_000));
    let b = cluster
        .node(0)
        .stage_breakdown()
        .expect("profiled node has a breakdown");
    use threev::core::node::Stage;
    assert!(
        b.calls[Stage::Dispatch as usize] > 0,
        "dispatch envelope must tick: {b:?}"
    );
    assert!(
        b.ns[Stage::Dispatch as usize] > 0,
        "injected clock must advance the envelope: {b:?}"
    );
    assert!(
        b.other_ns() <= b.total_ns(),
        "nested stages cannot exceed the envelope"
    );
}
