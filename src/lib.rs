//! # threev — Scalable Versioning in Distributed Databases with Commuting Updates
//!
//! A from-scratch Rust reproduction of the **3V algorithm** of Jagadish,
//! Mumick & Rabinovich (ICDE 1997): a three-version multiversioning scheme
//! for distributed data-recording systems whose version advancement is
//! completely asynchronous with user transactions.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`model`] — ids, values, commuting update operations, transaction trees;
//! * [`sim`] — the deterministic discrete-event simulation kernel;
//! * [`storage`] — the per-node multiversion storage engine;
//! * [`durability`] — per-node WAL, checkpoints, and crash recovery;
//! * [`core`] — the 3V protocol itself (and NC3V for non-commuting updates);
//! * [`baselines`] — global 2PL/2PC, no-coordination, and manual versioning;
//! * [`runtime`] — a real-thread driver for wall-clock execution;
//! * [`workload`] — hospital / telecom / retail data-recording workloads;
//! * [`analysis`] — metrics, staleness tracking, and the serializability
//!   auditor;
//! * [`check`] — the deterministic model checker (schedule exploration,
//!   invariant oracle, counterexample shrinking).
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the system inventory.

pub use threev_analysis as analysis;
pub use threev_baselines as baselines;
pub use threev_check as check;
pub use threev_core as core;
pub use threev_durability as durability;
pub use threev_model as model;
pub use threev_runtime as runtime;
pub use threev_shard as shard;
pub use threev_sim as sim;
pub use threev_storage as storage;
pub use threev_workload as workload;

pub mod testutil {
    //! Shared helpers for the workspace's integration tests.

    /// Read the fault-injection seed from `THREEV_FAULT_SEED`, falling back
    /// to `default` when the variable is unset.
    ///
    /// The CI fault matrices sweep seeds through this variable without
    /// recompiling (see `.github/workflows/ci.yml`). A value that is set but
    /// does not parse as `u64` is a matrix misconfiguration, so it panics
    /// rather than silently running the default seed and reporting green for
    /// a cell that never executed.
    pub fn fault_seed_or(default: u64) -> u64 {
        match std::env::var("THREEV_FAULT_SEED") {
            Ok(raw) => match raw.trim().parse() {
                Ok(seed) => seed,
                Err(e) => panic!(
                    "THREEV_FAULT_SEED={raw:?} is not a valid u64 seed ({e}); \
                     unset it or pass a decimal integer"
                ),
            },
            Err(std::env::VarError::NotPresent) => default,
            Err(e) => panic!("THREEV_FAULT_SEED is not readable: {e}"),
        }
    }
}
