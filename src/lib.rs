//! # threev — Scalable Versioning in Distributed Databases with Commuting Updates
//!
//! A from-scratch Rust reproduction of the **3V algorithm** of Jagadish,
//! Mumick & Rabinovich (ICDE 1997): a three-version multiversioning scheme
//! for distributed data-recording systems whose version advancement is
//! completely asynchronous with user transactions.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`model`] — ids, values, commuting update operations, transaction trees;
//! * [`sim`] — the deterministic discrete-event simulation kernel;
//! * [`storage`] — the per-node multiversion storage engine;
//! * [`durability`] — per-node WAL, checkpoints, and crash recovery;
//! * [`core`] — the 3V protocol itself (and NC3V for non-commuting updates);
//! * [`baselines`] — global 2PL/2PC, no-coordination, and manual versioning;
//! * [`runtime`] — a real-thread driver for wall-clock execution;
//! * [`workload`] — hospital / telecom / retail data-recording workloads;
//! * [`analysis`] — metrics, staleness tracking, and the serializability
//!   auditor;
//! * [`check`] — the deterministic model checker (schedule exploration,
//!   invariant oracle, counterexample shrinking).
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the system inventory.

pub use threev_analysis as analysis;
pub use threev_baselines as baselines;
pub use threev_check as check;
pub use threev_core as core;
pub use threev_durability as durability;
pub use threev_model as model;
pub use threev_runtime as runtime;
pub use threev_shard as shard;
pub use threev_sim as sim;
pub use threev_storage as storage;
pub use threev_workload as workload;

pub mod testutil {
    //! Shared helpers for the workspace's integration tests and binaries:
    //! the `THREEV_FAULT_SEED` / `THREEV_BACKEND` environment hooks the CI
    //! matrices (and the `threev-server` / `threev-load` binaries) use for
    //! reproducible runs, parsed in exactly one place.

    use threev_storage::BackendConfig;

    /// Read environment variable `name` and parse it with `parse`, falling
    /// back to `default` when unset. A value that is set but does not parse
    /// is a harness misconfiguration, so it panics (with `parse`'s message)
    /// rather than silently running the default and reporting green for a
    /// configuration that never executed.
    pub fn env_or<T>(name: &str, default: T, parse: impl FnOnce(&str) -> Result<T, String>) -> T {
        match std::env::var(name) {
            Ok(raw) => match parse(raw.trim()) {
                Ok(v) => v,
                Err(msg) => panic!("{name}={raw:?} is invalid: {msg}"),
            },
            Err(std::env::VarError::NotPresent) => default,
            Err(e) => panic!("{name} is not readable: {e}"),
        }
    }

    /// Read the fault-injection seed from `THREEV_FAULT_SEED`, falling back
    /// to `default` when the variable is unset.
    ///
    /// The CI fault matrices sweep seeds through this variable without
    /// recompiling (see `.github/workflows/ci.yml`).
    pub fn fault_seed_or(default: u64) -> u64 {
        env_or("THREEV_FAULT_SEED", default, |raw| {
            raw.parse().map_err(|e| {
                format!("not a valid u64 seed ({e}); unset it or pass a decimal integer")
            })
        })
    }

    /// Read the storage backend from `THREEV_BACKEND` (`mem`, `paged`, or
    /// unset → mem). `paged` gets a fresh per-call scratch directory via
    /// [`BackendConfig::paged_scratch`], namespaced by `tag`, so repeated
    /// runs within one process never see each other's page files.
    pub fn backend_from_env(tag: &str) -> BackendConfig {
        env_or("THREEV_BACKEND", BackendConfig::Mem, |raw| match raw {
            "mem" => Ok(BackendConfig::Mem),
            "paged" => Ok(BackendConfig::paged_scratch(tag)),
            _ => Err("must be `mem` or `paged`".to_string()),
        })
    }
}
