//! # threev — Scalable Versioning in Distributed Databases with Commuting Updates
//!
//! A from-scratch Rust reproduction of the **3V algorithm** of Jagadish,
//! Mumick & Rabinovich (ICDE 1997): a three-version multiversioning scheme
//! for distributed data-recording systems whose version advancement is
//! completely asynchronous with user transactions.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`model`] — ids, values, commuting update operations, transaction trees;
//! * [`sim`] — the deterministic discrete-event simulation kernel;
//! * [`storage`] — the per-node multiversion storage engine;
//! * [`durability`] — per-node WAL, checkpoints, and crash recovery;
//! * [`core`] — the 3V protocol itself (and NC3V for non-commuting updates);
//! * [`baselines`] — global 2PL/2PC, no-coordination, and manual versioning;
//! * [`runtime`] — a real-thread driver for wall-clock execution;
//! * [`workload`] — hospital / telecom / retail data-recording workloads;
//! * [`analysis`] — metrics, staleness tracking, and the serializability
//!   auditor.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the system inventory.

pub use threev_analysis as analysis;
pub use threev_baselines as baselines;
pub use threev_core as core;
pub use threev_durability as durability;
pub use threev_model as model;
pub use threev_runtime as runtime;
pub use threev_sim as sim;
pub use threev_storage as storage;
pub use threev_workload as workload;
