//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `proptest`'s API its tests use: range/tuple/[`Just`]
//! strategies, [`Strategy::prop_map`], `prop_oneof!` (weighted and
//! unweighted), `collection::vec`, `any::<T>()`, `ProptestConfig { cases }`,
//! and the `proptest!` test macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs through
//!   the ordinary panic message (every property here formats its inputs into
//!   its assertion), but no minimisation happens.
//! * **Deterministic seeding.** Each test function derives its RNG from a
//!   fixed seed and the case index, so CI failures reproduce locally.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Box a strategy (used by `prop_oneof!` to erase arm types).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Weighted union of same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as u64) as u32;
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum checked in Union::new")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Configuration accepted by `proptest!`'s `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Shrink-iteration budget (accepted for API compatibility; this
        /// stand-in reports the failing case unshrunk).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// The deterministic generator threaded through strategies.
    ///
    /// xoshiro256++ seeded via SplitMix64 (same construction as the
    /// workspace's `rand` shim, duplicated here to keep the shims
    /// dependency-free).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator with the fixed crate-wide seed.
        pub fn deterministic() -> Self {
            TestRng::with_seed(0x3A5F_9E3779B97F4A)
        }

        /// A generator seeded from `seed`.
        pub fn with_seed(seed: u64) -> Self {
            let mut st = seed;
            let mut next = move || {
                st = st.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = st;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, span)`; `span == 0` means the full 64-bit range.
        #[inline]
        pub fn below(&mut self, span: u64) -> u64 {
            if span == 0 {
                return self.next_u64();
            }
            let x = self.next_u64();
            ((x as u128 * span as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ..)` runs
/// `cases` times over freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident(
        $($pat:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases as u64 {
                // Derive a distinct, deterministic stream per case so any
                // failure reproduces regardless of which cases ran before.
                let mut __rng = $crate::test_runner::TestRng::with_seed(
                    0x5EED_0000_0000_0000u64 ^ __case.wrapping_mul(0x9E3779B97F4A7C15),
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        prop_oneof![
            3 => 0u8..10,
            1 => Just(42u8),
        ]
    }

    proptest! {
        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u32..5, -3i64..3), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 5);
                prop_assert!((-3..3).contains(&b));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]
        #[test]
        fn oneof_hits_both_arms(x in small()) {
            prop_assert!(x < 10 || x == 42);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let s = small();
        let mut rng = crate::test_runner::TestRng::deterministic();
        let mut saw_42 = false;
        let mut saw_small = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                42 => saw_42 = true,
                x if x < 10 => saw_small = true,
                other => panic!("impossible value {other}"),
            }
        }
        assert!(saw_42 && saw_small);
    }
}
