//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `crossbeam` it uses: `channel::unbounded` with
//! cloneable senders *and receivers* (MPMC), `send`, `recv`, `recv_timeout`,
//! and `try_recv`. The implementation is a mutex-protected `VecDeque` with a
//! condvar — not lock-free like the real crate, but correct, and fast enough
//! for the message rates the threaded runtime drives (the batched driver
//! amortises the lock across whole batches anyway).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Push `value`; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pop a value, blocking until one arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.ready.wait(st).unwrap();
            }
        }

        /// Pop a value, blocking for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.chan.ready.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    return if st.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Pop a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u64>();
            let tx2 = tx.clone();
            let h = thread::spawn(move || {
                for i in 0..1000 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got = 0;
            while got < 1000 {
                match rx.recv_timeout(Duration::from_secs(5)) {
                    Ok(_) => got += 1,
                    Err(e) => panic!("recv failed: {e:?}"),
                }
            }
            h.join().unwrap();
        }

        #[test]
        fn disconnect_reported() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
