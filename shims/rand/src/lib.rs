//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand`'s API it actually uses: the [`Rng`]
//! trait with `gen_range` over integer and float ranges, [`SeedableRng`]
//! with `seed_from_u64`, and [`rngs::SmallRng`] (implemented, as in
//! upstream `rand` on 64-bit targets, as xoshiro256++ seeded through
//! SplitMix64).
//!
//! The streams are *not* bit-identical to upstream `rand`; everything in
//! this workspace only relies on determinism-given-a-seed and reasonable
//! uniformity, both of which hold.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator trait.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw in `[0, span)` (`span == 0` means the full 64-bit range).
#[inline]
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Lemire's multiply-shift; bias is negligible for the spans used here,
    // and a single rejection round removes most of what remains.
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(span as u128);
    if (m as u64) < span {
        let t = span.wrapping_neg() % span;
        while (m as u64) < t {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(span as u128);
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 encodes the full 2^64 range.
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}
