//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `criterion`'s API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`measurement_time`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each sample calls the routine enough times to cover
//! at least ~1 ms (calibrated once), takes `sample_size` samples bounded by
//! `measurement_time`, and reports the min/mean/max per-iteration time —
//! no statistical post-processing or HTML reports. Numbers are also
//! appended to `target/shim-criterion.csv` for scripted consumption.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured routine.
pub struct Bencher {
    /// Calibrated iterations per sample.
    iters_per_sample: u64,
    /// Collected per-iteration durations (seconds), one per sample.
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size,
            measurement_time,
        }
    }

    /// Measure `routine`, calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: target >= 1ms per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u64;

        let started = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let per_iter = t.elapsed().as_secs_f64() / self.iters_per_sample as f64;
            self.samples.push(per_iter);
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let n = self.samples.len();
        let mean = self.samples.iter().sum::<f64>() / n as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0, f64::max);
        println!(
            "{id:<50} time: [{} {} {}] ({n} samples x {} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            self.iters_per_sample,
        );
        if let Ok(mut f) = OpenOptions::new()
            .create(true)
            .append(true)
            .open("target/shim-criterion.csv")
        {
            let _ = writeln!(f, "{id},{min},{mean},{max},{n}");
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Identifier for one parameterised benchmark case.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on the time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a routine under `id`.
    pub fn bench_function<R>(&mut self, id: impl Display, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        routine(&mut b);
        b.report(&format!("{}/{}", self.group_name, id));
        self
    }

    /// Benchmark a routine receiving `input` under `id`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        routine(&mut b, input);
        b.report(&format!("{}/{}", self.group_name, id.name));
        self
    }

    /// End the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            group_name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<R>(&mut self, id: impl Display, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(20, Duration::from_secs(5));
        routine(&mut b);
        b.report(&format!("{id}"));
        self
    }
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
