//! Crash recovery with the *paged* storage backend, end to end against
//! real files: version chains live in `pages.bin`/`meta.bin`, the control
//! state in `checkpoint.bin`, the tail in `wal.log`. Every test drives a
//! workload through the log-before-apply discipline, "crashes" by dropping
//! the handles (optionally mangling the files first), reopens everything
//! from disk, runs [`Durability::recover_paged`], and compares against an
//! uninterrupted reference run.
//!
//! Covered crash shapes:
//! * clean crash after an incremental checkpoint, with a WAL tail to
//!   replay on top of the page files;
//! * **torn page write**: a partial page appended past the published
//!   meta's high-water mark (the shadow-flush window) must be ignored;
//! * crash **between** the page-file flush and the checkpoint install —
//!   the window where the page files are *newer* than the snapshot, which
//!   only the independent `store_lsn` replay guard handles correctly
//!   (journal appends are not idempotent, so a single-guard replay would
//!   double-apply them).

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use threev_durability::{Durability, FileBackend, RecoveredState, Snapshot, WalOp};
use threev_model::{Key, NodeId, TxnId, UpdateOp, Value, VersionNo};
use threev_storage::{PagedBackend, Store, PAGE_SIZE};

fn k(i: u64) -> Key {
    Key(i)
}
fn n(i: u16) -> NodeId {
    NodeId(i)
}
fn v(i: u32) -> VersionNo {
    VersionNo(i)
}
fn t(i: u64) -> TxnId {
    TxnId::new(i, n(0))
}

fn scratch(tag: &str) -> PathBuf {
    // Tests run concurrently in one process; the counter keeps the
    // `reference` runs of different tests out of each other's directories.
    use std::sync::atomic::{AtomicU64, Ordering};
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let id = UNIQUE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "threev-paged-recovery-{tag}-{}-{id}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A paged store over `dir/store` seeded with two journal keys.
fn open_store(dir: &Path) -> Store<PagedBackend> {
    let backend = PagedBackend::open(&dir.join("store")).expect("open paged backend");
    let mut store = Store::on_backend(backend, n(0));
    if store.is_empty() {
        store.insert_initial(k(1), Value::Journal(Vec::new()));
        store.insert_initial(k(2), Value::Journal(Vec::new()));
    }
    store
}

fn file_durability(dir: &Path) -> Durability {
    let backend = FileBackend::open(dir.join("wal")).expect("open WAL dir");
    Durability::new(Box::new(backend), usize::MAX)
}

/// The workload: `count` journal appends alternating across the two keys
/// and two versions, plus a `SetVu` so control state moves too. Journal
/// appends are deliberately non-idempotent — double replay shows up as a
/// duplicated entry, which is exactly what the LSN guards must prevent.
fn ops(range: std::ops::Range<u64>) -> Vec<WalOp> {
    range
        .flat_map(|i| {
            let mut batch = vec![WalOp::Update {
                key: k(1 + i % 2),
                version: v(1 + (i % 2) as u32),
                op: UpdateOp::Append {
                    amount: i as i64,
                    tag: (i % 7) as u32,
                },
                txn: t(i),
            }];
            if i % 5 == 0 {
                batch.push(WalOp::SetVu(v(2 + (i / 5) as u32)));
            }
            batch
        })
        .collect()
}

/// Log-before-apply one op against live state.
fn apply_live(d: &mut Durability, store: &mut Store<PagedBackend>, vu: &mut VersionNo, op: WalOp) {
    d.log(op.clone());
    RecoveredState::apply_store_op(store, &op);
    if let WalOp::SetVu(x) = op {
        *vu = x;
    }
}

/// Control-only snapshot (`external_store`): what a paged node checkpoints.
fn control_snapshot(vu: VersionNo) -> Snapshot {
    Snapshot {
        node: n(0),
        lsn: 0, // stamped by Durability::checkpoint
        vu,
        vr: v(0),
        external_store: true,
        store: Vec::new(),
        counters: Vec::new(),
        locks: Vec::new(),
    }
}

/// Canonical chain image for comparison.
fn image(store: &Store<PagedBackend>) -> Vec<String> {
    store
        .iter_versions()
        .map(|(key, rec)| format!("{key:?} => {rec:?}"))
        .collect()
}

/// Run `ops(0..total)` without any crash: the reference final state.
fn reference(total: u64) -> (Vec<String>, VersionNo) {
    let dir = scratch("ref");
    let mut store = open_store(&dir);
    let mut d = file_durability(&dir);
    let mut vu = v(1);
    for op in ops(0..total) {
        apply_live(&mut d, &mut store, &mut vu, op);
    }
    let img = image(&store);
    let _ = std::fs::remove_dir_all(&dir);
    (img, vu)
}

/// Shared driver: run 30 ops with an incremental checkpoint after 18,
/// optionally flush again (without checkpoint) after 26, mangle the files
/// via `sabotage`, then recover and compare against the reference.
fn crash_and_recover(tag: &str, late_flush: bool, sabotage: impl FnOnce(&Path)) {
    let (want_img, want_vu) = reference(30);
    let dir = scratch(tag);
    {
        let mut store = open_store(&dir);
        let mut d = file_durability(&dir);
        let mut vu = v(1);
        let all = ops(0..30);
        for op in &all[..18] {
            apply_live(&mut d, &mut store, &mut vu, op.clone());
        }
        // Incremental checkpoint: flush dirty chains at the WAL position,
        // then install the control-only snapshot.
        let flushed = store.flush_dirty(d.lsn());
        assert!(flushed > 0, "dirty chains must hit the page files");
        d.checkpoint(control_snapshot(vu));
        d.sync();
        for op in &all[18..26] {
            apply_live(&mut d, &mut store, &mut vu, op.clone());
        }
        if late_flush {
            // Flush *without* a checkpoint: page files now ahead of the
            // snapshot — the crash window the independent guards cover.
            store.flush_dirty(d.lsn());
        }
        for op in &all[26..] {
            apply_live(&mut d, &mut store, &mut vu, op.clone());
        }
        d.sync();
        // Crash: both handles drop; only the files survive.
    }
    sabotage(&dir);

    let mut store = open_store(&dir);
    let store_lsn = store.durable_lsn().expect("page files carry an LSN");
    let mut d = file_durability(&dir);
    let state = d
        .recover_paged(&mut store, store_lsn)
        .expect("checkpoint exists");
    assert_eq!(image(&store), want_img, "recovered chains diverge ({tag})");
    assert_eq!(state.vu, want_vu, "recovered vu diverges ({tag})");
    assert!(
        state.store.is_empty(),
        "external_store snapshot must not carry chains"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_crash_replays_wal_tail_over_page_files() {
    crash_and_recover("clean", false, |_| {});
}

#[test]
fn torn_page_write_past_high_water_is_ignored() {
    crash_and_recover("torn", false, |dir| {
        // A torn page-write: half a page of garbage past the published
        // meta's high-water mark, as if the crash hit mid-`write_all`
        // during the *next* (never published) flush. Shadow paging means
        // published chains never point there.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("store").join("pages.bin"))
            .expect("pages.bin exists");
        f.write_all(&[0xDE; PAGE_SIZE / 2]).expect("append garbage");
    });
}

#[test]
fn crash_between_flush_and_checkpoint_does_not_double_apply() {
    // The late flush leaves store_lsn > snapshot lsn; replay must skip the
    // store half of that window (a double-applied journal append would
    // duplicate an entry and fail the image comparison).
    crash_and_recover("flush-gap", true, |_| {});
}

#[test]
fn torn_wal_tail_loses_only_the_torn_suffix() {
    // Baseline sanity on the WAL side with a paged store: chop the last
    // few bytes off wal.log — recovery must keep everything up to the torn
    // frame. The reference here is the run up to whatever survives, so
    // just assert recovery succeeds and the store image matches a replay
    // of the surviving prefix exactly: every key's chain well-formed and
    // the recovered vu consistent with the replayed records.
    let dir = scratch("torn-wal");
    {
        let mut store = open_store(&dir);
        let mut d = file_durability(&dir);
        let mut vu = v(1);
        let all = ops(0..30);
        for op in &all[..18] {
            apply_live(&mut d, &mut store, &mut vu, op.clone());
        }
        store.flush_dirty(d.lsn());
        d.checkpoint(control_snapshot(vu));
        d.sync();
        for op in &all[18..] {
            apply_live(&mut d, &mut store, &mut vu, op.clone());
        }
        d.sync();
    }
    let wal = dir.join("wal").join("wal.log");
    let bytes = std::fs::read(&wal).expect("wal.log exists");
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).expect("truncate tail");

    let mut store = open_store(&dir);
    let store_lsn = store.durable_lsn().expect("page files carry an LSN");
    let mut d = file_durability(&dir);
    let state = d
        .recover_paged(&mut store, store_lsn)
        .expect("checkpoint exists");
    // The torn record was the newest one; everything checkpointed or
    // intact in the tail is recovered.
    assert!(state.applied_lsn >= store_lsn);
    assert!(
        state.replayed > 0,
        "the intact WAL tail must replay over the page files"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
