//! Checkpoint snapshots.
//!
//! A snapshot is the whole durable state of one node at one LSN: the
//! ≤3-version chains, the R/C counter tables, the lock table, and the
//! `(vr, vu)` version window. Recovery loads the snapshot and replays
//! only the log records with a higher LSN.

use threev_model::{Key, NodeId, TxnId, Value, VersionNo};
use threev_storage::LockMode;

use crate::wire::{ByteReader, ByteWriter, WireError};

/// Format byte bumped on any incompatible layout change. Format 2 added
/// `external_store` (paged-backend checkpoints no longer inline the
/// chains).
const FORMAT: u8 = 2;

/// Counter rows of one version: `(requests_to, completions_from)`, each a
/// sorted `(node, count)` list — the serialisable form of the core
/// crate's counter table.
pub type CounterRow = (VersionNo, Vec<(NodeId, u64)>, Vec<(NodeId, u64)>);

/// Lock-table row of one key: holders `(txn, mode, re-entry count)` and
/// queued waiters `(txn, mode)` in queue order.
pub type LockRow = (Key, Vec<(TxnId, LockMode, u32)>, Vec<(TxnId, LockMode)>);

/// One node's durable state at one log position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The node this snapshot belongs to.
    pub node: NodeId,
    /// Log position folded into this snapshot; replay starts after it.
    pub lsn: u64,
    /// Update version variable.
    pub vu: VersionNo,
    /// Read version variable.
    pub vr: VersionNo,
    /// The ≤3-version chains live outside this snapshot, in the node's
    /// paged storage backend (whose own durable image carries an LSN).
    /// When set, [`Snapshot::store`] is empty and recovery replays store
    /// records against the reopened backend instead.
    pub external_store: bool,
    /// Version layout of every key, sorted by key (empty when
    /// [`Snapshot::external_store`] is set).
    pub store: Vec<(Key, Vec<(VersionNo, Value)>)>,
    /// R/C counter rows, sorted by version.
    pub counters: Vec<CounterRow>,
    /// Lock-table rows, sorted by key.
    pub locks: Vec<LockRow>,
}

impl Snapshot {
    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(FORMAT);
        w.node(self.node);
        w.u64(self.lsn);
        w.version(self.vu);
        w.version(self.vr);
        w.u8(u8::from(self.external_store));
        w.len(self.store.len());
        for (key, versions) in &self.store {
            w.key(*key);
            w.len(versions.len());
            for (v, val) in versions {
                w.version(*v);
                w.value(val);
            }
        }
        w.len(self.counters.len());
        for (v, reqs, comps) in &self.counters {
            w.version(*v);
            w.len(reqs.len());
            for (n, c) in reqs {
                w.node(*n);
                w.u64(*c);
            }
            w.len(comps.len());
            for (n, c) in comps {
                w.node(*n);
                w.u64(*c);
            }
        }
        w.len(self.locks.len());
        for (key, holders, waiters) in &self.locks {
            w.key(*key);
            w.len(holders.len());
            for (txn, mode, count) in holders {
                w.txn(*txn);
                w.lock_mode(*mode);
                w.u32(*count);
            }
            w.len(waiters.len());
            for (txn, mode) in waiters {
                w.txn(*txn);
                w.lock_mode(*mode);
            }
        }
        w.into_bytes()
    }

    /// Decode from bytes produced by [`Snapshot::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, WireError> {
        let mut r = ByteReader::new(bytes);
        if r.u8()? != FORMAT {
            return Err(WireError("unknown snapshot format"));
        }
        let node = r.node()?;
        let lsn = r.u64()?;
        let vu = r.version()?;
        let vr = r.version()?;
        let external_store = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError("bad external_store flag")),
        };
        let n_keys = r.read_len()?;
        let mut store = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            let key = r.key()?;
            let n_versions = r.read_len()?;
            let mut versions = Vec::with_capacity(n_versions);
            for _ in 0..n_versions {
                let v = r.version()?;
                let val = r.value()?;
                versions.push((v, val));
            }
            store.push((key, versions));
        }
        let n_counter_rows = r.read_len()?;
        let mut counters = Vec::with_capacity(n_counter_rows);
        for _ in 0..n_counter_rows {
            let v = r.version()?;
            let n_reqs = r.read_len()?;
            let mut reqs = Vec::with_capacity(n_reqs);
            for _ in 0..n_reqs {
                let n = r.node()?;
                let c = r.u64()?;
                reqs.push((n, c));
            }
            let n_comps = r.read_len()?;
            let mut comps = Vec::with_capacity(n_comps);
            for _ in 0..n_comps {
                let n = r.node()?;
                let c = r.u64()?;
                comps.push((n, c));
            }
            counters.push((v, reqs, comps));
        }
        let n_locks = r.read_len()?;
        let mut locks = Vec::with_capacity(n_locks);
        for _ in 0..n_locks {
            let key = r.key()?;
            let n_holders = r.read_len()?;
            let mut holders = Vec::with_capacity(n_holders);
            for _ in 0..n_holders {
                let txn = r.txn()?;
                let mode = r.lock_mode()?;
                let count = r.u32()?;
                holders.push((txn, mode, count));
            }
            let n_waiters = r.read_len()?;
            let mut waiters = Vec::with_capacity(n_waiters);
            for _ in 0..n_waiters {
                let txn = r.txn()?;
                let mode = r.lock_mode()?;
                waiters.push((txn, mode));
            }
            locks.push((key, holders, waiters));
        }
        if !r.is_exhausted() {
            return Err(WireError("trailing bytes after Snapshot"));
        }
        Ok(Snapshot {
            node,
            lsn,
            vu,
            vr,
            external_store,
            store,
            counters,
            locks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::JournalEntry;

    fn sample() -> Snapshot {
        Snapshot {
            node: NodeId(2),
            lsn: 41,
            vu: VersionNo(2),
            vr: VersionNo(1),
            external_store: false,
            store: vec![
                (
                    Key(1),
                    vec![
                        (VersionNo(1), Value::Counter(5)),
                        (VersionNo(2), Value::Counter(9)),
                    ],
                ),
                (
                    Key(11),
                    vec![(
                        VersionNo(1),
                        Value::Journal(vec![JournalEntry {
                            txn: TxnId::new(4, NodeId(0)),
                            amount: 3,
                            tag: 7,
                        }]),
                    )],
                ),
            ],
            counters: vec![(
                VersionNo(2),
                vec![(NodeId(0), 3), (NodeId(1), 1)],
                vec![(NodeId(0), 2)],
            )],
            locks: vec![(
                Key(1),
                vec![(TxnId::new(9, NodeId(1)), LockMode::Exclusive, 2)],
                vec![(TxnId::new(4, NodeId(0)), LockMode::Commute)],
            )],
        }
    }

    #[test]
    fn round_trip() {
        let snap = sample();
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn empty_round_trip() {
        let snap = Snapshot {
            node: NodeId(0),
            lsn: 0,
            vu: VersionNo(1),
            vr: VersionNo(0),
            external_store: false,
            store: vec![],
            counters: vec![],
            locks: vec![],
        };
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn external_store_round_trips() {
        let snap = Snapshot {
            external_store: true,
            store: vec![],
            ..sample()
        };
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn bad_format_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = 0xFF;
        assert!(Snapshot::decode(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Snapshot::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
