//! Write-ahead log records.
//!
//! The log is **logical redo**: each record names the state transition the
//! engine is about to apply (log-before-apply), not the message that
//! caused it. Replay therefore needs no protocol machinery — it drives the
//! storage and counter layers directly. Idempotence comes from the LSN:
//! recovery skips every record at or below the position already folded
//! into the snapshot or a previous replay pass.

use threev_model::{Key, NodeId, TxnId, UpdateOp, Value, VersionNo};
use threev_storage::LockMode;

use crate::wire::{ByteReader, ByteWriter, WireError};

/// One logged state transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// 3V store update (§4.1 step 4: copy-on-update + update-all-≥v).
    Update {
        /// Item updated.
        key: Key,
        /// Transaction version `V(T)`.
        version: VersionNo,
        /// The operation applied.
        op: UpdateOp,
        /// The writing transaction.
        txn: TxnId,
    },
    /// Restore one version to a prior value (`None` deletes the version).
    /// Logged for each entry of an NC rollback before the store applies
    /// it, in the order replay must re-apply.
    Restore {
        /// Item restored.
        key: Key,
        /// Version restored.
        version: VersionNo,
        /// Prior value; `None` removes the version.
        prior: Option<Value>,
    },
    /// `R(v)·q += 1` (§4.1 step 5).
    IncRequest {
        /// Version of the counted request.
        version: VersionNo,
        /// Destination node `q`.
        to: NodeId,
    },
    /// `C(v)o· += 1` (§4.1 step 6).
    IncCompletion {
        /// Version of the counted completion.
        version: VersionNo,
        /// Source node `o`.
        from: NodeId,
    },
    /// The update version variable changed.
    SetVu(VersionNo),
    /// The read version variable changed.
    SetVr(VersionNo),
    /// Garbage collection ran for `vr_new` (§4.3 Phase 4): drops store
    /// versions and counters below it.
    Gc {
        /// The new read version.
        vr_new: VersionNo,
    },
    /// Advancement-phase marker: this node processed phase `phase` of the
    /// advancement to `version`. Informational (replay is a no-op); kept
    /// so a recovered log tells the whole §4.3 story.
    Phase {
        /// The version being advanced to.
        version: VersionNo,
        /// Phase number, 1–4.
        phase: u8,
    },
    /// A lock was granted and recorded in the table (NC3V, §5) — whether
    /// directly or by promotion out of a release. Waiting and abort
    /// outcomes are not logged — they leave no durable state a restarted
    /// node could honour.
    LockAcquire {
        /// Locked item.
        key: Key,
        /// Holder.
        txn: TxnId,
        /// Mode requested.
        mode: LockMode,
    },
    /// All locks of `txn` were released.
    LockRelease {
        /// The releasing transaction.
        txn: TxnId,
    },
}

/// A [`WalOp`] stamped with its log sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone, 1-based log sequence number.
    pub lsn: u64,
    /// The logged transition.
    pub op: WalOp,
}

impl WalRecord {
    /// Encode to bytes (payload only; backends add their own framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.lsn);
        match &self.op {
            WalOp::Update {
                key,
                version,
                op,
                txn,
            } => {
                w.u8(0);
                w.key(*key);
                w.version(*version);
                w.op(*op);
                w.txn(*txn);
            }
            WalOp::Restore {
                key,
                version,
                prior,
            } => {
                w.u8(1);
                w.key(*key);
                w.version(*version);
                w.opt_value(prior);
            }
            WalOp::IncRequest { version, to } => {
                w.u8(2);
                w.version(*version);
                w.node(*to);
            }
            WalOp::IncCompletion { version, from } => {
                w.u8(3);
                w.version(*version);
                w.node(*from);
            }
            WalOp::SetVu(v) => {
                w.u8(4);
                w.version(*v);
            }
            WalOp::SetVr(v) => {
                w.u8(5);
                w.version(*v);
            }
            WalOp::Gc { vr_new } => {
                w.u8(6);
                w.version(*vr_new);
            }
            WalOp::Phase { version, phase } => {
                w.u8(7);
                w.version(*version);
                w.u8(*phase);
            }
            WalOp::LockAcquire { key, txn, mode } => {
                w.u8(8);
                w.key(*key);
                w.txn(*txn);
                w.lock_mode(*mode);
            }
            WalOp::LockRelease { txn } => {
                w.u8(9);
                w.txn(*txn);
            }
        }
        w.into_bytes()
    }

    /// Decode from bytes produced by [`WalRecord::encode`].
    pub fn decode(bytes: &[u8]) -> Result<WalRecord, WireError> {
        let mut r = ByteReader::new(bytes);
        let lsn = r.u64()?;
        let op = match r.u8()? {
            0 => WalOp::Update {
                key: r.key()?,
                version: r.version()?,
                op: r.op()?,
                txn: r.txn()?,
            },
            1 => WalOp::Restore {
                key: r.key()?,
                version: r.version()?,
                prior: r.opt_value()?,
            },
            2 => WalOp::IncRequest {
                version: r.version()?,
                to: r.node()?,
            },
            3 => WalOp::IncCompletion {
                version: r.version()?,
                from: r.node()?,
            },
            4 => WalOp::SetVu(r.version()?),
            5 => WalOp::SetVr(r.version()?),
            6 => WalOp::Gc {
                vr_new: r.version()?,
            },
            7 => WalOp::Phase {
                version: r.version()?,
                phase: r.u8()?,
            },
            8 => WalOp::LockAcquire {
                key: r.key()?,
                txn: r.txn()?,
                mode: r.lock_mode()?,
            },
            9 => WalOp::LockRelease { txn: r.txn()? },
            _ => return Err(WireError("unknown WalOp tag")),
        };
        if !r.is_exhausted() {
            return Err(WireError("trailing bytes after WalRecord"));
        }
        Ok(WalRecord { lsn, op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Update {
                key: Key(1),
                version: VersionNo(2),
                op: UpdateOp::Add(-7),
                txn: TxnId::new(3, NodeId(1)),
            },
            WalOp::Restore {
                key: Key(2),
                version: VersionNo(1),
                prior: Some(Value::Counter(5)),
            },
            WalOp::Restore {
                key: Key(2),
                version: VersionNo(1),
                prior: None,
            },
            WalOp::IncRequest {
                version: VersionNo(1),
                to: NodeId(2),
            },
            WalOp::IncCompletion {
                version: VersionNo(1),
                from: NodeId(0),
            },
            WalOp::SetVu(VersionNo(2)),
            WalOp::SetVr(VersionNo(1)),
            WalOp::Gc {
                vr_new: VersionNo(1),
            },
            WalOp::Phase {
                version: VersionNo(2),
                phase: 3,
            },
            WalOp::LockAcquire {
                key: Key(4),
                txn: TxnId::new(9, NodeId(0)),
                mode: LockMode::Exclusive,
            },
            WalOp::LockRelease {
                txn: TxnId::new(9, NodeId(0)),
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for (i, op) in sample_ops().into_iter().enumerate() {
            let rec = WalRecord {
                lsn: i as u64 + 1,
                op,
            };
            let decoded = WalRecord::decode(&rec.encode()).unwrap();
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let rec = WalRecord {
            lsn: 1,
            op: WalOp::SetVu(VersionNo(2)),
        };
        let mut bytes = rec.encode();
        bytes.push(0);
        assert!(WalRecord::decode(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let rec = WalRecord {
            lsn: 1,
            op: WalOp::Update {
                key: Key(1),
                version: VersionNo(1),
                op: UpdateOp::Add(1),
                txn: TxnId::new(1, NodeId(0)),
            },
        };
        let bytes = rec.encode();
        for cut in 0..bytes.len() {
            assert!(WalRecord::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
