//! Pluggable log storage.
//!
//! The engine talks to durability through [`LogBackend`]: append encoded
//! WAL records, install a snapshot (which truncates the log), and read
//! both back at recovery. Two implementations:
//!
//! * [`MemBackend`] — plain vectors. Used under the discrete-event
//!   simulator, where determinism forbids real I/O but crash injection
//!   still needs a "disk" that survives the actor's volatile state being
//!   dropped.
//! * [`FileBackend`] — `std::fs` files in a per-node directory. The log is
//!   length- and checksum-framed so a torn tail (process killed mid-write)
//!   is detected and discarded; the checkpoint is written to a temp file
//!   and renamed, so a crash mid-checkpoint leaves the previous one
//!   intact.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::wire::checksum;

/// Storage for one node's WAL and checkpoint.
///
/// Object-safe: the engine holds a `Box<dyn LogBackend + Send>` so the
/// same node code runs over memory in the simulator and over files under
/// the threaded runtime.
pub trait LogBackend: Send {
    /// Append one encoded record to the log.
    fn append(&mut self, record: &[u8]);

    /// All log records appended since the last snapshot, in order.
    /// Implementations must re-read the durable medium, not a cache —
    /// recovery uses this to see exactly what survived a crash.
    fn log_records(&self) -> Vec<Vec<u8>>;

    /// Install a snapshot and truncate the log.
    fn install_snapshot(&mut self, snapshot: &[u8]);

    /// The current snapshot, if one was installed.
    fn snapshot(&self) -> Option<Vec<u8>>;

    /// Number of log records since the last snapshot.
    fn log_len(&self) -> usize;

    /// Flush buffered writes to the durable medium (no-op in memory).
    fn sync(&mut self) {}
}

/// In-memory backend for deterministic simulation.
#[derive(Default, Debug, Clone)]
pub struct MemBackend {
    snapshot: Option<Vec<u8>>,
    log: Vec<Vec<u8>>,
}

impl MemBackend {
    /// New empty backend.
    pub fn new() -> Self {
        MemBackend::default()
    }
}

impl LogBackend for MemBackend {
    fn append(&mut self, record: &[u8]) {
        self.log.push(record.to_vec());
    }

    fn log_records(&self) -> Vec<Vec<u8>> {
        self.log.clone()
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) {
        self.snapshot = Some(snapshot.to_vec());
        self.log.clear();
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        self.snapshot.clone()
    }

    fn log_len(&self) -> usize {
        self.log.len()
    }
}

/// File-backed log in a per-node directory: `wal.log` + `checkpoint.bin`.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    wal: File,
    log_len: usize,
}

impl FileBackend {
    /// Open (or create) the backend rooted at `dir`. Existing log and
    /// checkpoint files are kept — opening after a crash is exactly how
    /// recovery finds them.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("wal.log"))?;
        let log_len = parse_frames(&fs::read(dir.join("wal.log"))?).len();
        Ok(FileBackend { dir, wal, log_len })
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("checkpoint.bin")
    }
}

/// Little-endian `u32` at `pos`, if the bytes are there.
fn read_u32(bytes: &[u8], pos: usize) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(pos..pos + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Split a raw log file into frames, dropping a torn or corrupt tail.
fn parse_frames(bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let (Some(len), Some(sum)) = (read_u32(bytes, pos), read_u32(bytes, pos + 4)) else {
            break; // unreachable given the length guard; break beats panic
        };
        let len = len as usize;
        let start = pos + 8;
        if bytes.len() - start < len {
            break; // torn tail: the frame body never hit the disk
        }
        let body = &bytes[start..start + len];
        if checksum(body) != sum {
            break; // corrupt frame: everything after it is suspect
        }
        records.push(body.to_vec());
        pos = start + len;
    }
    records
}

impl LogBackend for FileBackend {
    fn append(&mut self, record: &[u8]) {
        // lint-allow(panic-hygiene): a record the frame format cannot hold
        // must not be silently dropped from the log — fail-stop.
        let len = u32::try_from(record.len()).expect("record too large");
        let mut frame = Vec::with_capacity(8 + record.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&checksum(record).to_le_bytes());
        frame.extend_from_slice(record);
        // lint-allow(panic-hygiene): acknowledging work the WAL did not
        // capture would violate the recovery contract; when the disk fails
        // mid-append, halting is the only honest behaviour (fail-stop).
        self.wal.write_all(&frame).expect("WAL append failed");
        self.log_len += 1;
    }

    fn log_records(&self) -> Vec<Vec<u8>> {
        let bytes = fs::read(self.wal_path()).unwrap_or_default();
        parse_frames(&bytes)
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) {
        let tmp = self.dir.join("checkpoint.tmp");
        // lint-allow(panic-hygiene): checkpoint I/O failure is a disk
        // fault; continuing would truncate the WAL against a checkpoint
        // that never landed — fail-stop.
        let mut f = File::create(&tmp).expect("create checkpoint.tmp");
        f.write_all(snapshot).expect("write checkpoint");
        f.sync_data().expect("sync checkpoint");
        drop(f);
        // Atomic publish: a crash between these two steps leaves either the
        // old checkpoint + full log, or the new checkpoint + full log —
        // both recoverable (replay is idempotent past the snapshot LSN).
        // lint-allow(panic-hygiene): same disk-fault contract as the
        // writes above — a failed publish or truncate must halt the node.
        fs::rename(&tmp, self.checkpoint_path()).expect("publish checkpoint");
        // Truncate through a fresh handle; the append-mode writer keeps
        // appending at the (new) end.
        File::create(self.wal_path()).expect("truncate wal.log");
        self.log_len = 0;
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(self.checkpoint_path())
            .ok()?
            .read_to_end(&mut buf)
            .ok()?;
        Some(buf)
    }

    fn log_len(&self) -> usize {
        self.log_len
    }

    fn sync(&mut self) {
        let _ = self.wal.sync_data();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("threev-durability-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn exercise(backend: &mut dyn LogBackend) {
        assert_eq!(backend.log_len(), 0);
        assert!(backend.snapshot().is_none());
        backend.append(b"one");
        backend.append(b"two");
        assert_eq!(backend.log_len(), 2);
        assert_eq!(
            backend.log_records(),
            vec![b"one".to_vec(), b"two".to_vec()]
        );
        backend.install_snapshot(b"snap");
        assert_eq!(backend.log_len(), 0);
        assert!(backend.log_records().is_empty());
        assert_eq!(backend.snapshot(), Some(b"snap".to_vec()));
        backend.append(b"three");
        assert_eq!(backend.log_records(), vec![b"three".to_vec()]);
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&mut MemBackend::new());
    }

    #[test]
    fn file_backend_contract() {
        let dir = tmpdir("contract");
        exercise(&mut FileBackend::open(&dir).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let mut b = FileBackend::open(&dir).unwrap();
            b.append(b"alpha");
            b.install_snapshot(b"snap");
            b.append(b"beta");
            b.sync();
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.snapshot(), Some(b"snap".to_vec()));
        assert_eq!(b.log_records(), vec![b"beta".to_vec()]);
        assert_eq!(b.log_len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let dir = tmpdir("torn");
        {
            let mut b = FileBackend::open(&dir).unwrap();
            b.append(b"whole");
            b.sync();
        }
        // Simulate a crash mid-append: a frame header with no body.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&100u32.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"short").unwrap();
        drop(f);
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.log_records(), vec![b"whole".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_cuts_the_log() {
        let dir = tmpdir("corrupt");
        {
            let mut b = FileBackend::open(&dir).unwrap();
            b.append(b"good");
            b.append(b"flip");
            b.sync();
        }
        let mut bytes = fs::read(dir.join("wal.log")).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // corrupt the body of the second frame
        fs::write(dir.join("wal.log"), &bytes).unwrap();
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.log_records(), vec![b"good".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }
}
