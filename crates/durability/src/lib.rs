//! Per-node durability for the 3V protocol.
//!
//! The paper's termination-detection property P5 ("all v-updates have
//! terminated") is *stable*: once true it stays true — but only if the
//! `R(v)pq`/`C(v)pq` counters and the version variables survive node
//! failures. This crate makes them survive:
//!
//! * a [`wal`] — an append-only **write-ahead log** of logical redo
//!   records: store mutations, counter increments, version-variable
//!   changes, lock transitions, and advancement-phase markers. Every
//!   record carries an LSN, and replay skips records at or below the
//!   recovered position, so replaying any prefix twice (a crash *during*
//!   recovery) is indistinguishable from replaying it once;
//! * a [`snapshot`] — a **checkpoint** serialising the ≤3-version chains,
//!   the lock table, the R/C counter tables, and `(vr, vu)`; installing
//!   it truncates the log;
//! * a [`backend`] — the [`backend::LogBackend`] trait with an in-memory
//!   implementation for deterministic simulation and a `std::fs` one for
//!   the real-thread runtime (length- and checksum-framed records,
//!   torn-tail tolerant, atomic checkpoint rename);
//! * [`recover`] — `recover(checkpoint, log)` reconstruction of the whole
//!   node-local state, plus the [`recover::Durability`] handle the engine
//!   drives at run time.
//!
//! All serialisation is hand-rolled little-endian framing ([`wire`]); the
//! formats are versioned with a single format byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod recover;
pub mod snapshot;
pub mod wal;
// The wire codec lives in `threev-storage` (the bottom of the dependency
// stack) so the paged storage backend shares the same framing; re-exported
// here to keep `threev_durability::wire::…` paths working.
pub use threev_storage::wire;

pub use backend::{FileBackend, LogBackend, MemBackend};
pub use recover::{Durability, DurabilityStats, RecoveredState};
pub use snapshot::Snapshot;
pub use wal::{WalOp, WalRecord};
