//! Run-time durability handle and crash recovery.
//!
//! The engine owns one [`Durability`] per node. On every state transition
//! it calls [`Durability::log`] *before* applying the transition
//! (log-before-apply); every `checkpoint_every` records it serialises a
//! [`Snapshot`] and truncates the log. After a crash,
//! [`Durability::recover`] rebuilds the full node-local state: decode the
//! checkpoint, then replay every log record with an LSN above the
//! checkpoint's. Replay is idempotent — records at or below the position
//! already folded in are skipped — so a crash *during* recovery (replaying
//! a prefix twice) lands in the same state as a single clean replay.

use threev_model::VersionNo;
use threev_storage::{LockDecision, LockTable, StorageBackend, Store};

use crate::backend::LogBackend;
use crate::snapshot::{CounterRow, Snapshot};
use crate::wal::{WalOp, WalRecord};

/// Counters describing durability activity on one node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended.
    pub records_logged: u64,
    /// Checkpoints installed.
    pub checkpoints: u64,
    /// Recoveries performed.
    pub recoveries: u64,
    /// Log records replayed during recovery.
    pub records_replayed: u64,
    /// Log records skipped during recovery (LSN already applied).
    pub records_skipped: u64,
}

/// Node-local state reconstructed by [`Durability::recover`].
#[derive(Debug)]
pub struct RecoveredState {
    /// The rebuilt versioned store.
    pub store: Store,
    /// The rebuilt lock table.
    pub locks: LockTable,
    /// The rebuilt R/C counter rows (sorted by version).
    pub counters: Vec<CounterRow>,
    /// Recovered update version variable.
    pub vu: VersionNo,
    /// Recovered read version variable.
    pub vr: VersionNo,
    /// Highest LSN folded into this state; [`RecoveredState::apply`]
    /// skips records at or below it.
    pub applied_lsn: u64,
    /// Records actually replayed into this state.
    pub replayed: u64,
}

impl RecoveredState {
    /// Start from a decoded checkpoint, before any log replay.
    pub fn from_snapshot(snap: Snapshot) -> Self {
        let node = snap.node;
        RecoveredState {
            store: Store::from_parts(node, snap.store),
            locks: LockTable::from_parts(snap.locks),
            counters: snap.counters,
            vu: snap.vu,
            vr: snap.vr,
            applied_lsn: snap.lsn,
            replayed: 0,
        }
    }

    /// Apply one log record. Returns `false` (no state change) when the
    /// record's LSN is at or below [`RecoveredState::applied_lsn`] — this
    /// is the idempotence guard that makes double replay safe.
    pub fn apply(&mut self, rec: &WalRecord) -> bool {
        if rec.lsn <= self.applied_lsn {
            return false;
        }
        Self::apply_store_op(&mut self.store, &rec.op);
        self.apply_control_op(&rec.op);
        self.applied_lsn = rec.lsn;
        self.replayed += 1;
        true
    }

    /// The store-directed half of one record: the chain mutations. Static
    /// and generic over the backend so [`Durability::recover_paged`] can
    /// replay against a reopened paged store, which carries its own durable
    /// LSN and therefore its own idempotence guard.
    pub fn apply_store_op<B: StorageBackend>(store: &mut Store<B>, op: &WalOp) {
        match op {
            WalOp::Update {
                key,
                version,
                op,
                txn,
            } => {
                // Redo against the same starting layout reproduces the
                // same copy-on-update / all-≥v effect as the live run.
                let _ = store.update(*key, *version, *op, *txn, None);
            }
            WalOp::Restore {
                key,
                version,
                prior,
            } => {
                store.restore_version(*key, *version, prior.clone());
            }
            WalOp::Gc { vr_new } => store.gc(*vr_new),
            _ => {}
        }
    }

    /// The control half of one record: counters, version variables, and
    /// the lock table — everything that always recovers from the
    /// checkpoint + log regardless of backend.
    pub fn apply_control_op(&mut self, op: &WalOp) {
        match op {
            WalOp::Update { .. } | WalOp::Restore { .. } => {}
            WalOp::IncRequest { version, to } => {
                bump(&mut self.counters, *version, *to, true);
            }
            WalOp::IncCompletion { version, from } => {
                bump(&mut self.counters, *version, *from, false);
            }
            WalOp::SetVu(v) => self.vu = *v,
            WalOp::SetVr(v) => self.vr = *v,
            WalOp::Gc { vr_new } => {
                self.counters.retain(|(v, ..)| *v >= *vr_new);
            }
            WalOp::Phase { .. } => {} // informational marker
            WalOp::LockAcquire { key, txn, mode } => {
                // Every grant is logged — direct grants and promotions out
                // of a release alike (waiter-queue entries are volatile and
                // never reach the log or a checkpoint). The replayed table
                // therefore holds no waiters, and re-acquiring in log order
                // against the same holders must grant.
                let d = self.locks.acquire(*key, *mode, *txn);
                debug_assert_eq!(d, LockDecision::Granted, "replayed acquire must grant");
            }
            WalOp::LockRelease { txn } => {
                // No waiters in the replayed table: this only drops the
                // releasing holder; the promotions it caused live follow as
                // their own LockAcquire records.
                let _ = self.locks.release_all(*txn);
            }
        }
    }
}

/// Increment one R/C counter cell in the sorted row representation.
fn bump(rows: &mut Vec<CounterRow>, version: VersionNo, node: threev_model::NodeId, request: bool) {
    let row = match rows.binary_search_by_key(&version, |(v, ..)| *v) {
        Ok(i) => &mut rows[i],
        Err(i) => {
            rows.insert(i, (version, Vec::new(), Vec::new()));
            &mut rows[i]
        }
    };
    let cells = if request { &mut row.1 } else { &mut row.2 };
    match cells.binary_search_by_key(&node, |(n, _)| *n) {
        Ok(i) => cells[i].1 += 1,
        Err(i) => cells.insert(i, (node, 1)),
    }
}

/// The run-time durability handle: owns the backend, assigns LSNs, and
/// decides when to checkpoint.
pub struct Durability {
    backend: Box<dyn LogBackend>,
    lsn: u64,
    checkpoint_every: usize,
    stats: DurabilityStats,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("lsn", &self.lsn)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("log_len", &self.backend.log_len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Durability {
    /// Wrap a backend. The next LSN continues from whatever the medium
    /// already holds (checkpoint and log survive restarts), so LSNs stay
    /// monotone across crashes. `checkpoint_every` of 0 disables automatic
    /// checkpointing.
    pub fn new(backend: Box<dyn LogBackend>, checkpoint_every: usize) -> Self {
        let mut lsn = 0;
        if let Some(bytes) = backend.snapshot() {
            if let Ok(snap) = Snapshot::decode(&bytes) {
                lsn = snap.lsn;
            }
        }
        for raw in backend.log_records() {
            if let Ok(rec) = WalRecord::decode(&raw) {
                lsn = lsn.max(rec.lsn);
            }
        }
        Durability {
            backend,
            lsn,
            checkpoint_every,
            stats: DurabilityStats::default(),
        }
    }

    /// Append one transition to the log, returning its LSN. Call before
    /// applying the transition to volatile state.
    pub fn log(&mut self, op: WalOp) -> u64 {
        self.lsn += 1;
        let rec = WalRecord { lsn: self.lsn, op };
        self.backend.append(&rec.encode());
        self.stats.records_logged += 1;
        self.lsn
    }

    /// Has the log grown past the checkpoint cadence?
    pub fn should_checkpoint(&self) -> bool {
        self.checkpoint_every > 0 && self.backend.log_len() >= self.checkpoint_every
    }

    /// Install a checkpoint. The snapshot is stamped with the current LSN
    /// (it must describe the state *after* every logged transition so
    /// far); installing truncates the log. Returns the encoded snapshot
    /// size in bytes (the cost of the install, reported by the
    /// checkpoint-bytes experiment counters).
    pub fn checkpoint(&mut self, mut snap: Snapshot) -> usize {
        snap.lsn = self.lsn;
        let bytes = snap.encode();
        self.backend.install_snapshot(&bytes);
        self.stats.checkpoints += 1;
        bytes.len()
    }

    /// Rebuild node state from checkpoint + log. Returns `None` when no
    /// checkpoint was ever installed (a node that never checkpointed has
    /// nothing durable to recover from). Corrupt or torn log tails simply
    /// end replay early — everything before them is recovered.
    pub fn recover(&mut self) -> Option<RecoveredState> {
        let snap = Snapshot::decode(&self.backend.snapshot()?).ok()?;
        let mut state = RecoveredState::from_snapshot(snap);
        let mut skipped = 0u64;
        for raw in self.backend.log_records() {
            let Ok(rec) = WalRecord::decode(&raw) else {
                break;
            };
            if !state.apply(&rec) {
                skipped += 1;
            }
        }
        self.lsn = self.lsn.max(state.applied_lsn);
        self.stats.recoveries += 1;
        self.stats.records_replayed += state.replayed;
        self.stats.records_skipped += skipped;
        Some(state)
    }

    /// Recovery against a storage backend that persists its own chains
    /// (`external_store` checkpoints): the chains are already in `store`,
    /// durable up to `store_lsn`; the checkpoint carries only the control
    /// state. Store-directed records replay when their LSN is above
    /// `store_lsn`; control records when above the snapshot's LSN. The two
    /// guards are independent because the backend flush and the checkpoint
    /// install are *separate* atomic steps — a crash between them leaves
    /// `store_lsn` ahead of the snapshot, and a naive single guard would
    /// double-apply the store half of that window.
    pub fn recover_paged<B: StorageBackend>(
        &mut self,
        store: &mut Store<B>,
        store_lsn: u64,
    ) -> Option<RecoveredState> {
        let snap = Snapshot::decode(&self.backend.snapshot()?).ok()?;
        let mut state = RecoveredState::from_snapshot(snap);
        let mut skipped = 0u64;
        for raw in self.backend.log_records() {
            let Ok(rec) = WalRecord::decode(&raw) else {
                break;
            };
            let store_new = rec.lsn > store_lsn;
            let control_new = rec.lsn > state.applied_lsn;
            if store_new {
                RecoveredState::apply_store_op(store, &rec.op);
            }
            if control_new {
                state.apply_control_op(&rec.op);
                state.applied_lsn = rec.lsn;
            }
            if store_new || control_new {
                state.replayed += 1;
            } else {
                skipped += 1;
            }
        }
        self.lsn = self.lsn.max(state.applied_lsn).max(store_lsn);
        self.stats.recoveries += 1;
        self.stats.records_replayed += state.replayed;
        self.stats.records_skipped += skipped;
        Some(state)
    }

    /// Is there a checkpoint to recover from?
    pub fn has_snapshot(&self) -> bool {
        self.backend.snapshot().is_some()
    }

    /// Records currently in the log (since the last checkpoint).
    pub fn log_len(&self) -> usize {
        self.backend.log_len()
    }

    /// Current (last assigned) LSN.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Flush the backend.
    pub fn sync(&mut self) {
        self.backend.sync();
    }

    /// Durability activity so far.
    pub fn stats(&self) -> &DurabilityStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use threev_model::{Key, NodeId, TxnId, UpdateOp, Value};

    fn t(seq: u64) -> TxnId {
        TxnId::new(seq, NodeId(0))
    }
    fn v(n: u32) -> VersionNo {
        VersionNo(n)
    }

    fn base_snapshot() -> Snapshot {
        Snapshot {
            node: NodeId(0),
            lsn: 0,
            vu: v(1),
            vr: v(0),
            external_store: false,
            store: vec![
                (Key(1), vec![(v(0), Value::Counter(100))]),
                (Key(2), vec![(v(0), Value::Journal(vec![]))]),
            ],
            counters: vec![],
            locks: vec![],
        }
    }

    #[test]
    fn checkpoint_then_log_then_recover() {
        let mut dur = Durability::new(Box::new(MemBackend::new()), 0);
        dur.checkpoint(base_snapshot());
        dur.log(WalOp::Update {
            key: Key(1),
            version: v(1),
            op: UpdateOp::Add(10),
            txn: t(1),
        });
        dur.log(WalOp::IncRequest {
            version: v(1),
            to: NodeId(1),
        });
        dur.log(WalOp::IncCompletion {
            version: v(1),
            from: NodeId(1),
        });
        dur.log(WalOp::SetVu(v(2)));

        let state = dur.recover().unwrap();
        assert_eq!(state.replayed, 4);
        assert_eq!(state.vu, v(2));
        assert_eq!(state.vr, v(0));
        assert_eq!(
            state.store.layout(Key(1)).unwrap(),
            vec![(v(0), Value::Counter(100)), (v(1), Value::Counter(110))]
        );
        assert_eq!(
            state.counters,
            vec![(v(1), vec![(NodeId(1), 1)], vec![(NodeId(1), 1)])]
        );
    }

    #[test]
    fn no_checkpoint_means_no_recovery() {
        let mut dur = Durability::new(Box::new(MemBackend::new()), 0);
        dur.log(WalOp::SetVu(v(2)));
        assert!(!dur.has_snapshot());
        assert!(dur.recover().is_none());
    }

    #[test]
    fn replay_skips_records_already_in_checkpoint() {
        let mut dur = Durability::new(Box::new(MemBackend::new()), 0);
        dur.checkpoint(base_snapshot());
        dur.log(WalOp::Update {
            key: Key(1),
            version: v(1),
            op: UpdateOp::Add(5),
            txn: t(1),
        });
        // Fold the logged update into a fresh checkpoint, then log more.
        let folded = Snapshot {
            store: vec![
                (
                    Key(1),
                    vec![(v(0), Value::Counter(100)), (v(1), Value::Counter(105))],
                ),
                (Key(2), vec![(v(0), Value::Journal(vec![]))]),
            ],
            ..base_snapshot()
        };
        dur.checkpoint(folded);
        dur.log(WalOp::Update {
            key: Key(1),
            version: v(1),
            op: UpdateOp::Add(5),
            txn: t(2),
        });
        let state = dur.recover().unwrap();
        assert_eq!(state.replayed, 1, "pre-checkpoint record not re-applied");
        assert_eq!(
            state.store.layout(Key(1)).unwrap(),
            vec![(v(0), Value::Counter(100)), (v(1), Value::Counter(110))]
        );
    }

    #[test]
    fn double_apply_is_idempotent() {
        let mut dur = Durability::new(Box::new(MemBackend::new()), 0);
        dur.checkpoint(base_snapshot());
        dur.log(WalOp::Update {
            key: Key(1),
            version: v(1),
            op: UpdateOp::Add(10),
            txn: t(1),
        });
        dur.log(WalOp::SetVr(v(1)));

        let once = dur.recover().unwrap();
        // Crash during recovery: replay the same log again on top.
        let mut twice = dur.recover().unwrap();
        for raw in [
            WalRecord {
                lsn: 1,
                op: WalOp::Update {
                    key: Key(1),
                    version: v(1),
                    op: UpdateOp::Add(10),
                    txn: t(1),
                },
            },
            WalRecord {
                lsn: 2,
                op: WalOp::SetVr(v(1)),
            },
        ] {
            assert!(!twice.apply(&raw), "second pass must be skipped");
        }
        assert_eq!(twice.store.export_parts(), once.store.export_parts());
        assert_eq!(twice.counters, once.counters);
        assert_eq!((twice.vu, twice.vr), (once.vu, once.vr));
    }

    #[test]
    fn gc_replay_prunes_store_and_counters() {
        let mut dur = Durability::new(Box::new(MemBackend::new()), 0);
        dur.checkpoint(Snapshot {
            counters: vec![
                (v(1), vec![(NodeId(1), 2)], vec![]),
                (v(2), vec![(NodeId(1), 1)], vec![]),
            ],
            ..base_snapshot()
        });
        dur.log(WalOp::Update {
            key: Key(1),
            version: v(1),
            op: UpdateOp::Add(1),
            txn: t(1),
        });
        dur.log(WalOp::Gc { vr_new: v(2) });
        let state = dur.recover().unwrap();
        assert_eq!(state.store.layout(Key(1)).unwrap().len(), 1);
        assert_eq!(state.counters.len(), 1);
        assert_eq!(state.counters[0].0, v(2));
    }

    #[test]
    fn lock_replay_rebuilds_table() {
        use threev_storage::LockMode;
        let mut dur = Durability::new(Box::new(MemBackend::new()), 0);
        dur.checkpoint(base_snapshot());
        dur.log(WalOp::LockAcquire {
            key: Key(1),
            txn: t(1),
            mode: LockMode::Exclusive,
        });
        dur.log(WalOp::LockAcquire {
            key: Key(2),
            txn: t(2),
            mode: LockMode::Commute,
        });
        dur.log(WalOp::LockRelease { txn: t(1) });
        let state = dur.recover().unwrap();
        assert!(!state.locks.holds(t(1), Key(1)));
        assert!(state.locks.holds(t(2), Key(2)));
    }

    #[test]
    fn lsn_continues_across_reopen() {
        let mut dur = Durability::new(Box::new(MemBackend::new()), 0);
        dur.checkpoint(base_snapshot());
        dur.log(WalOp::SetVu(v(2)));
        dur.log(WalOp::SetVu(v(3)));
        assert_eq!(dur.lsn(), 2);
        // Simulate reopening the same medium (MemBackend: clone the state).
        let state = dur.recover().unwrap();
        assert_eq!(state.applied_lsn, 2);
    }

    #[test]
    fn checkpoint_cadence() {
        let mut dur = Durability::new(Box::new(MemBackend::new()), 2);
        assert!(!dur.should_checkpoint());
        dur.log(WalOp::SetVu(v(2)));
        assert!(!dur.should_checkpoint());
        dur.log(WalOp::SetVu(v(3)));
        assert!(dur.should_checkpoint());
        dur.checkpoint(base_snapshot());
        assert!(!dur.should_checkpoint());
        assert_eq!(dur.stats().checkpoints, 1);
        assert_eq!(dur.stats().records_logged, 2);
    }
}
