//! Hot-path engine bench: where does a saturated 8-node cluster spend its
//! cycles, and what do the framed codec and intra-node striping buy?
//!
//! Two products, both written to `BENCH_hotpath.json` at the repo root:
//!
//! 1. **Config grid** — committed transactions and events/s for the four
//!    combinations of {cloned, framed} delivery × {1, 8} stripes, all on
//!    the same saturated hospital workload the batching bench uses.
//!    `before` is the seed configuration (cloned messages, unsharded
//!    store); `after` is framed + striped.
//! 2. **Stage breakdown** — separate profiled runs (`ProfileMode::On`
//!    with the harness's monotonic clock) for the before and after
//!    configurations, aggregated over all 8 nodes: validate / lock /
//!    store / counter / wal shares of the dispatch envelope. Profiling
//!    adds clock reads, so throughput numbers always come from the
//!    *unprofiled* grid runs; the profiled runs only shape the
//!    breakdown.
//!
//! Single-core honesty: stripes are per-node data layout, not threads —
//! on a 1-CPU box any win comes from smaller per-stripe trees and
//! cheaper codec work per hop, and the breakdown is the evidence for
//! which stage caps throughput either way.

use std::time::Duration;

use threev_bench::prof::{breakdown_json, mono_ns};
use threev_bench::report::{write_bench_report, JsonObject, JsonValue};
use threev_core::cluster::{build_actors, ClusterActor, ClusterConfig};
use threev_core::node::{ProfileMode, StageBreakdown};
use threev_runtime::ThreadedRun;
use threev_sim::SimDuration;
use threev_workload::HospitalWorkload;

const N_NODES: u16 = 8;
const STRIPES_AFTER: u16 = 8;
/// Interleaved rounds per config; peak-folded like the batching bench
/// (background load on a shared box is one-sided noise).
const ROUNDS: usize = 5;
const WINDOW_MS: u64 = 2_000;

fn hospital(seed: u64) -> HospitalWorkload {
    HospitalWorkload {
        departments: N_NODES,
        patients: 200,
        rate_tps: 200_000.0, // far past saturation: the runs measure drain rate
        read_pct: 20,
        max_fanout: 3,
        duration: SimDuration::from_millis(WINDOW_MS),
        zipf_s: 0.8,
        seed,
    }
}

#[derive(Clone, Copy, Debug)]
struct Config {
    name: &'static str,
    framed: bool,
    stripes: u16,
}

const GRID: [Config; 4] = [
    Config {
        name: "before_cloned_1stripe",
        framed: false,
        stripes: 1,
    },
    Config {
        name: "framed_1stripe",
        framed: true,
        stripes: 1,
    },
    Config {
        name: "cloned_8stripe",
        framed: false,
        stripes: STRIPES_AFTER,
    },
    Config {
        name: "after_framed_8stripe",
        framed: true,
        stripes: STRIPES_AFTER,
    },
];

struct Probe {
    committed: u64,
    committed_per_sec: f64,
    events_per_sec: f64,
    codec_errors: u64,
}

fn engine_probe(cfg: Config, profile: ProfileMode) -> (Probe, Option<StageBreakdown>) {
    let w = hospital(0xE17);
    let cluster_cfg = ClusterConfig::new(N_NODES)
        .stripes(cfg.stripes)
        .profile(profile);
    let actors = build_actors(&w.schema(), &cluster_cfg, w.arrivals());
    let sim = cluster_cfg.sim.clone();
    let duration = Duration::from_millis(WINDOW_MS);
    let drain = Duration::from_millis(100);
    let (actors, report) = if cfg.framed {
        ThreadedRun::run_framed(actors, sim, duration, drain)
    } else {
        ThreadedRun::run(actors, sim, duration, drain)
    };
    let mut committed = 0u64;
    let mut breakdown = StageBreakdown::default();
    let mut profiled = false;
    for a in &actors {
        match a {
            ClusterActor::Client(c) => {
                committed += c
                    .records()
                    .iter()
                    .filter(|r| r.status == threev_analysis::TxnStatus::Committed)
                    .count() as u64;
            }
            ClusterActor::Node(n) => {
                if let Some(b) = n.stage_breakdown() {
                    breakdown.merge(b);
                    profiled = true;
                }
            }
            _ => {}
        }
    }
    let events: u64 = report.messages_per_actor.iter().sum();
    let secs = report.elapsed.as_secs_f64();
    (
        Probe {
            committed,
            committed_per_sec: committed as f64 / secs,
            events_per_sec: events as f64 / secs,
            codec_errors: report.codec_errors_per_actor.iter().sum(),
        },
        profiled.then_some(breakdown),
    )
}

fn peak(xs: impl Iterator<Item = f64>) -> f64 {
    xs.fold(f64::MIN, f64::max)
}

/// DES host cost: wall-clock time for the *single-threaded* simulator to
/// chew through a fixed workload. On an oversubscribed box this is the
/// clean per-event CPU signal — no thread scheduling in the measurement —
/// so it isolates what striping does to per-event cost. (The framed codec
/// cannot appear here: the DES kernel passes structured values.)
fn des_host_probe(stripes: u16) -> f64 {
    use threev_core::cluster::ThreeVCluster;
    use threev_sim::SimTime;
    let w = HospitalWorkload {
        duration: SimDuration::from_millis(100),
        rate_tps: 6_000.0,
        ..hospital(0xBA7)
    };
    let schema = w.schema();
    let arrivals = w.arrivals();
    let mut best = f64::MIN;
    for _ in 0..ROUNDS {
        let cfg = ClusterConfig::new(N_NODES).stripes(stripes);
        let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals.clone());
        let t0 = std::time::Instant::now();
        cluster.run(SimTime(2_000_000));
        let events = cluster.sim_stats().events;
        best = best.max(events as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    // Interleave the whole grid ROUNDS times so background noise hits
    // every config evenly, then peak-fold per config.
    let mut runs: Vec<Vec<Probe>> = GRID.iter().map(|_| Vec::new()).collect();
    for round in 0..ROUNDS {
        for (i, cfg) in GRID.iter().enumerate() {
            let (probe, _) = engine_probe(*cfg, ProfileMode::Off);
            println!(
                "round {round} {}: committed {} ({:.0}/s), events {:.0}/s",
                cfg.name, probe.committed, probe.committed_per_sec, probe.events_per_sec
            );
            assert_eq!(
                probe.codec_errors, 0,
                "{}: well-formed frames must not miscount",
                cfg.name
            );
            runs[i].push(probe);
        }
    }

    let mut grid_json = JsonObject::new();
    let mut best = vec![0.0f64; GRID.len()];
    for (i, cfg) in GRID.iter().enumerate() {
        let committed_per_sec = peak(runs[i].iter().map(|p| p.committed_per_sec));
        let events_per_sec = peak(runs[i].iter().map(|p| p.events_per_sec));
        let committed = runs[i].iter().map(|p| p.committed).max().unwrap_or(0);
        best[i] = committed_per_sec;
        grid_json = grid_json.field(
            cfg.name,
            JsonObject::new()
                .field("stripes", cfg.stripes)
                .field("framed", u64::from(cfg.framed))
                .field("committed", committed)
                .field("committed_per_sec", JsonValue::Float(committed_per_sec, 0))
                .field("events_per_sec", JsonValue::Float(events_per_sec, 0)),
        );
    }
    let speedup = best[GRID.len() - 1] / best[0];
    println!(
        "hotpath: before {:.0}/s, after {:.0}/s ({speedup:.2}x committed)",
        best[0],
        best[GRID.len() - 1]
    );

    // Single-threaded DES host cost for stripes 1 vs 8: the clean
    // per-event CPU comparison, immune to thread scheduling noise.
    let des_1 = des_host_probe(1);
    let des_8 = des_host_probe(STRIPES_AFTER);
    println!(
        "des host cost: 1 stripe {des_1:.0} events/s, {STRIPES_AFTER} stripes {des_8:.0} events/s ({:.2}x)",
        des_8 / des_1
    );

    // Profiled passes for the stage shares — one run each; the absolute
    // numbers don't feed the grid.
    let (_, before_b) = engine_probe(GRID[0], ProfileMode::On(mono_ns));
    let (_, after_b) = engine_probe(GRID[GRID.len() - 1], ProfileMode::On(mono_ns));
    let before_b = before_b.expect("profiled run yields a breakdown");
    let after_b = after_b.expect("profiled run yields a breakdown");

    let report = JsonObject::new()
        .field("bench", "hotpath")
        .field("n_nodes", N_NODES)
        .field("rounds_per_config", ROUNDS)
        .field("window_ms", WINDOW_MS)
        .field("configs", grid_json)
        .field("speedup_committed", JsonValue::Float(speedup, 3))
        .field(
            "des_host_events_per_sec",
            JsonObject::new()
                .field("stripes_1", JsonValue::Float(des_1, 0))
                .field("stripes_8", JsonValue::Float(des_8, 0))
                .field("ratio", JsonValue::Float(des_8 / des_1, 3)),
        )
        .field(
            "stage_breakdown",
            JsonObject::new()
                .field("before_cloned_1stripe", breakdown_json(&before_b))
                .field("after_framed_8stripe", breakdown_json(&after_b)),
        )
        .field(
            "notes",
            "Stage spans are wall-clock and include preemption; on an \
             oversubscribed box the shares are meaningful, the absolute ns \
             are not. The breakdown caps the win: the five instrumented \
             stages total ~31% of the dispatch envelope (lock and wal are \
             legitimately 0 for a commuting, durability-off workload), so \
             no store/lock/codec change can exceed ~1.45x; the remaining \
             ~69% is routing, message construction, and channel delivery.",
        );
    write_bench_report("hotpath", &report);
}
