//! Micro-benchmarks of the protocol's hot data structures: the versioned
//! record (read-max-≤v, copy-on-update, update-all-≥v, GC), the
//! request/completion counter table, the lock table, and the supporting
//! histogram/zipf utilities.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use threev_analysis::Histogram;
use threev_core::counters::{CounterMatrix, CounterTable};
use threev_model::{Key, NodeId, TxnId, UpdateOp, Value, VersionNo};
use threev_storage::{LockMode, LockTable, VersionedRecord};
use threev_workload::ZipfSampler;

fn t(seq: u64) -> TxnId {
    TxnId::new(seq, NodeId(0))
}

fn bench_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("record");

    g.bench_function("read_visible/two_versions", |b| {
        let mut r = VersionedRecord::initial(Value::Counter(0));
        r.update(Key(1), VersionNo(1), UpdateOp::Add(1), t(1))
            .unwrap();
        b.iter(|| black_box(r.read_visible(black_box(VersionNo(1)))));
    });

    g.bench_function("update/in_place", |b| {
        let mut r = VersionedRecord::initial(Value::Counter(0));
        r.update(Key(1), VersionNo(1), UpdateOp::Add(1), t(1))
            .unwrap();
        b.iter(|| {
            r.update(Key(1), VersionNo(1), UpdateOp::Add(1), t(2))
                .unwrap()
        });
    });

    g.bench_function("update/copy_on_update_plus_gc", |b| {
        // The full advancement lifecycle of one record.
        let mut r = VersionedRecord::initial(Value::Counter(0));
        let mut v = 1u32;
        b.iter(|| {
            r.update(Key(1), VersionNo(v), UpdateOp::Add(1), t(1))
                .unwrap();
            r.update(Key(1), VersionNo(v + 1), UpdateOp::Add(1), t(2))
                .unwrap();
            r.gc(VersionNo(v));
            v += 1;
        });
    });

    g.bench_function("update/dual_write", |b| {
        let mut r = VersionedRecord::initial(Value::Counter(0));
        r.update(Key(1), VersionNo(1), UpdateOp::Add(1), t(1))
            .unwrap();
        r.update(Key(1), VersionNo(2), UpdateOp::Add(1), t(2))
            .unwrap();
        b.iter(|| {
            r.update(Key(1), VersionNo(1), UpdateOp::Add(1), t(3))
                .unwrap()
        });
    });
    g.finish();
}

fn bench_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("counters");

    g.bench_function("inc_request", |b| {
        let mut table = CounterTable::new();
        b.iter(|| table.inc_request(VersionNo(1), NodeId(3)));
    });

    for n_nodes in [4u16, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("snapshot_and_assemble", n_nodes),
            &n_nodes,
            |b, &n| {
                // n nodes, each with counters toward every other node.
                let tables: Vec<CounterTable> = (0..n)
                    .map(|_| {
                        let mut tb = CounterTable::new();
                        for q in 0..n {
                            tb.inc_request(VersionNo(1), NodeId(q));
                            tb.inc_completion(VersionNo(1), NodeId(q));
                        }
                        tb
                    })
                    .collect();
                b.iter(|| {
                    let snaps: Vec<_> = tables
                        .iter()
                        .enumerate()
                        .map(|(i, tb)| (NodeId(i as u16), tb.snapshot(VersionNo(1))))
                        .collect();
                    let m = CounterMatrix::assemble(&snaps);
                    black_box(m.balanced())
                });
            },
        );
    }
    g.finish();
}

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");

    g.bench_function("commute_acquire_release", |b| {
        let mut lt = LockTable::new();
        let mut seq = 0u64;
        b.iter(|| {
            let txn = t(seq);
            seq += 1;
            lt.acquire(Key(1), LockMode::Commute, txn);
            lt.release_all(txn);
        });
    });

    g.bench_function("contended_exclusive", |b| {
        let mut lt = LockTable::new();
        let mut seq = 0u64;
        b.iter(|| {
            // Old holder, younger victim dies, holder releases.
            let holder = t(seq);
            let victim = t(seq + 1);
            seq += 2;
            lt.acquire(Key(1), LockMode::Exclusive, holder);
            let _ = lt.acquire(Key(1), LockMode::Exclusive, victim);
            lt.release_all(holder);
        });
    });
    g.finish();
}

fn bench_util(c: &mut Criterion) {
    let mut g = c.benchmark_group("util");

    g.bench_function("histogram/record", |b| {
        let mut h = Histogram::new();
        let mut x = 1u64;
        b.iter(|| {
            h.record(x);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1) >> 32;
        });
    });

    g.bench_function("histogram/p99_of_100k", |b| {
        let mut h = Histogram::new();
        for v in 0..100_000u64 {
            h.record(v * 13 % 50_000);
        }
        b.iter(|| black_box(h.p99()));
    });

    g.bench_function("zipf/sample_10k_ranks", |b| {
        let z = ZipfSampler::new(10_000, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| black_box(z.sample(&mut rng)));
    });

    g.bench_function("journal/append_retract", |b| {
        let mut v = Value::Journal(Vec::with_capacity(64));
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let amount = rng.gen_range(1..100);
            UpdateOp::Append { amount, tag: 1 }
                .apply(&mut v, t(1))
                .unwrap();
            UpdateOp::Retract { amount, tag: 1 }
                .apply(&mut v, t(1))
                .unwrap();
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_record,
    bench_counters,
    bench_locks,
    bench_util
);
criterion_main!(benches);
