//! Batched vs per-message delivery, measured three ways:
//!
//! 1. **DES host cost** (criterion): wall-clock time to simulate the same
//!    8-node hospital window with `SimConfig::batch` off and on. Batching
//!    amortises heap pops and actor dispatch; observable behaviour is
//!    identical (see `tests/batch_equivalence.rs` at the workspace root).
//! 2. **Threaded flood** (probe): 8 actors on real threads circulating a
//!    fixed population of tokens as fast as the runtime can carry them —
//!    the delivery-overhead-dominated regime where
//!    [`DeliveryMode::Batched`]'s heap bypass shows up directly.
//! 3. **Threaded 8-node engine** (probe): the full 3V cluster under an
//!    offered load past saturation, comparing useful work done (events
//!    processed, transactions committed) in a fixed wall window.
//!
//! The probes write `BENCH_batching.json` at the repository root (via the
//! shared [`threev_bench::report`] writer) so the numbers land in version
//! control next to the code they measure.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use threev_bench::report::{write_bench_report, JsonObject, JsonValue};
use threev_core::cluster::{build_actors, ClusterActor, ClusterConfig, ThreeVCluster};
use threev_model::NodeId;
use threev_runtime::{DeliveryMode, ThreadedRun};
use threev_sim::{Actor, Ctx, SimConfig, SimDuration, SimTime};
use threev_workload::HospitalWorkload;

const N_NODES: u16 = 8;

fn hospital(rate_tps: f64, window: SimDuration, seed: u64) -> HospitalWorkload {
    HospitalWorkload {
        departments: N_NODES,
        patients: 200,
        rate_tps,
        read_pct: 20,
        max_fanout: 3,
        duration: window,
        zipf_s: 0.8,
        seed,
    }
}

// ---------------------------------------------------------------- DES cost

fn bench_des_modes(c: &mut Criterion) {
    let w = hospital(6_000.0, SimDuration::from_millis(100), 0xBA7);
    let schema = w.schema();
    let arrivals = w.arrivals();
    let mut g = c.benchmark_group("batching_sim_8node");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    for (name, batch) in [("per_message", false), ("batched", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = ClusterConfig::new(N_NODES);
                cfg.sim.batch = batch;
                let mut cluster = ThreeVCluster::new(&schema, cfg, arrivals.clone());
                cluster.run(SimTime(2_000_000));
                cluster.sim_stats().events
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_des_modes);

// ------------------------------------------------------------------ probes

/// Token-forwarding actor: keeps a fixed message population circulating a
/// ring of `n` actors for as long as the run lasts.
struct Flood {
    n: u16,
    tokens: u64,
    forwarded: u64,
}

impl Actor for Flood {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let next = NodeId((ctx.me().0 + 1) % self.n);
        for t in 0..self.tokens {
            ctx.send(next, t);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
        self.forwarded += 1;
        let next = NodeId((ctx.me().0 + 1) % self.n);
        ctx.send(next, msg);
    }
}

/// One probe measurement.
struct Probe {
    events_per_sec: f64,
    committed: u64,
    batches: u64,
}

fn flood_probe(mode: DeliveryMode) -> Probe {
    let actors: Vec<Flood> = (0..N_NODES)
        .map(|_| Flood {
            n: N_NODES,
            tokens: 16,
            forwarded: 0,
        })
        .collect();
    let (actors, report) = ThreadedRun::run_with(
        actors,
        SimConfig::seeded(11),
        mode,
        Duration::from_millis(400),
        Duration::ZERO,
    );
    let hops: u64 = actors.iter().map(|a| a.forwarded).sum();
    Probe {
        events_per_sec: hops as f64 / report.elapsed.as_secs_f64(),
        committed: 0,
        batches: report.batches_per_actor.iter().sum(),
    }
}

fn engine_probe(mode: DeliveryMode) -> Probe {
    // Offered load past what 8 nodes drain in the window: the runs stay
    // saturated, so work completed in the fixed window measures delivery
    // efficiency rather than workload size.
    // The window must be long enough that OS scheduling of 10 threads on a
    // small (possibly single-core) box averages out; short windows make the
    // ratio swing with whichever mode's threads got lucky timeslices.
    let w = hospital(200_000.0, SimDuration::from_millis(2_000), 0xE17);
    let cfg = ClusterConfig::new(N_NODES);
    let actors = build_actors(&w.schema(), &cfg, w.arrivals());
    let (actors, report) = ThreadedRun::run_with(
        actors,
        cfg.sim.clone(),
        mode,
        Duration::from_millis(2_000),
        Duration::from_millis(100),
    );
    let committed = actors
        .iter()
        .filter_map(|a| match a {
            ClusterActor::Client(c) => Some(
                c.records()
                    .iter()
                    .filter(|r| r.status == threev_analysis::TxnStatus::Committed)
                    .count() as u64,
            ),
            _ => None,
        })
        .sum();
    let events: u64 = report.messages_per_actor.iter().sum();
    Probe {
        events_per_sec: events as f64 / report.elapsed.as_secs_f64(),
        committed,
        batches: report.batches_per_actor.iter().sum(),
    }
}

const PAIRS: usize = 7;

fn peak(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::MIN, f64::max)
}

fn probe_scenario(name: &str, mut run: impl FnMut(DeliveryMode) -> Probe) -> JsonObject {
    // Run the two modes in adjacent interleaved pairs, then compare the
    // per-mode *peak* throughput over the pairs. On a shared (often
    // single-core) box, background load is one-sided noise — it can only
    // slow a run down, never speed it up — so the fastest of several
    // interleaved runs is the best estimate of each mode's uncontended
    // capability; medians still wobble when most slots are contended.
    let pairs: Vec<(Probe, Probe)> = (0..PAIRS)
        .map(|_| (run(DeliveryMode::PerMessage), run(DeliveryMode::Batched)))
        .collect();
    // Every reported field is the per-mode peak over the pairs.
    let best = |f: &dyn Fn(&(Probe, Probe)) -> f64| peak(pairs.iter().map(f).collect());
    let per_msg = Probe {
        events_per_sec: best(&|(p, _)| p.events_per_sec),
        committed: best(&|(p, _)| p.committed as f64) as u64,
        batches: 0,
    };
    let batched = Probe {
        events_per_sec: best(&|(_, b)| b.events_per_sec),
        committed: best(&|(_, b)| b.committed as f64) as u64,
        batches: best(&|(_, b)| b.batches as f64) as u64,
    };
    let speedup = batched.events_per_sec / per_msg.events_per_sec;
    println!(
        "{name}: per-message {:.0}/s, batched {:.0}/s ({:.2}x, {} batches)",
        per_msg.events_per_sec, batched.events_per_sec, speedup, batched.batches
    );
    JsonObject::new()
        .field(
            "per_message",
            JsonObject::new()
                .field(
                    "events_per_sec",
                    JsonValue::Float(per_msg.events_per_sec, 0),
                )
                .field("committed", per_msg.committed),
        )
        .field(
            "batched",
            JsonObject::new()
                .field(
                    "events_per_sec",
                    JsonValue::Float(batched.events_per_sec, 0),
                )
                .field("committed", batched.committed)
                .field("batches", batched.batches),
        )
        .field("speedup", JsonValue::Float(speedup, 3))
}

fn write_report() {
    let flood = probe_scenario("threaded_flood_8actor", flood_probe);
    let engine = probe_scenario("threaded_3v_8node_saturated", engine_probe);
    let report = JsonObject::new()
        .field("bench", "batching")
        .field("n_nodes", N_NODES)
        .field("runs_per_mode", PAIRS)
        .field("threaded_flood_8actor", flood)
        .field("threaded_3v_8node_saturated", engine);
    write_bench_report("batching", &report);
}

fn main() {
    benches();
    write_report();
}
