//! End-to-end engine benchmarks: wall-clock cost of simulating one second
//! of cluster time under each protocol (criterion), plus a real-thread 3V
//! throughput probe.
//!
//! These complement the `exp_*` binaries: the binaries report *virtual*
//! time metrics (what the protocol does); these report *host* time (what
//! the implementation costs).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use threev_bench::engines::{run_engine, Engine, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_sim::{SimDuration, SimTime};
use threev_workload::{HospitalWorkload, SyntheticParams, SyntheticWorkload};

fn bench_simulated_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engines");
    g.sample_size(10);
    for engine in Engine::ALL {
        g.bench_with_input(
            BenchmarkId::new("synthetic_200ms", engine.name()),
            &engine,
            |b, &engine| {
                let w = SyntheticWorkload::new(SyntheticParams {
                    n_nodes: 4,
                    rate_tps: 5_000.0,
                    duration: SimDuration::from_millis(200),
                    ..SyntheticParams::default()
                });
                let (schema, arrivals) = w.generate();
                let mut opts = RunOpts::new(4, SimTime(2_000_000));
                opts.advancement = AdvancementPolicy::Periodic {
                    first: SimDuration::from_millis(50),
                    period: SimDuration::from_millis(100),
                };
                b.iter(|| run_engine(engine, &schema, arrivals.clone(), &opts));
            },
        );
    }
    g.finish();
}

fn bench_advancement_cycle(c: &mut Criterion) {
    // Host cost of one full four-phase advancement over an idle cluster.
    let mut g = c.benchmark_group("advancement");
    g.sample_size(20);
    for n_nodes in [4u16, 16] {
        g.bench_with_input(
            BenchmarkId::new("idle_cycle", n_nodes),
            &n_nodes,
            |b, &n| {
                let w = SyntheticWorkload::new(SyntheticParams {
                    n_nodes: n,
                    rate_tps: 100.0,
                    duration: SimDuration::from_millis(10),
                    ..SyntheticParams::default()
                });
                let (schema, arrivals) = w.generate();
                b.iter(|| {
                    let mut cluster = threev_core::cluster::ThreeVCluster::new(
                        &schema,
                        threev_core::cluster::ClusterConfig::new(n),
                        arrivals.clone(),
                    );
                    cluster.run(SimTime(1_000_000));
                    cluster.trigger_advancement();
                    cluster.run(SimTime(10_000_000));
                    assert_eq!(cluster.advancements().len(), 1);
                });
            },
        );
    }
    g.finish();
}

fn bench_threaded(c: &mut Criterion) {
    // Wall-clock 3V on real threads (hospital workload, 3 departments).
    let mut g = c.benchmark_group("threaded");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.bench_function("hospital_3nodes_100ms", |b| {
        b.iter(|| {
            let workload = HospitalWorkload {
                departments: 3,
                patients: 50,
                rate_tps: 3_000.0,
                duration: SimDuration::from_millis(100),
                ..HospitalWorkload::default()
            };
            let schema = workload.schema();
            let arrivals = workload.arrivals();
            let cfg = threev_core::cluster::ClusterConfig::new(3);
            let actors = threev_core::cluster::build_actors(&schema, &cfg, arrivals);
            let (actors, _) = threev_runtime::ThreadedRun::run(
                actors,
                threev_sim::SimConfig::seeded(3),
                Duration::from_millis(110),
                Duration::from_millis(60),
            );
            actors
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_simulated_engines,
    bench_advancement_cycle,
    bench_threaded
);
criterion_main!(benches);
