//! Throughput and advancement latency under message loss: 3V's
//! fault-tolerant control plane vs the global-2PC baseline.
//!
//! The fault plane injects {0%, 5%, 20%} loss (plus 5% duplication when
//! lossy). The scoping matches what each protocol's *commit machinery*
//! is: for 3V, loss lands on the coordinator↔node control links — the
//! advancement protocol retransmits through it while user transactions
//! flow on the clean data plane, so committed throughput holds and only
//! advancement latency pays. For 2PC the commit protocol IS the data
//! plane (every prepare/decision travels node↔node), so the same loss
//! rate lands on all links — and with no retransmission layer, in-flight
//! transactions stall where a message died. Both planes assume reliable
//! subtransaction delivery otherwise, as the paper does (§6 leaves the
//! network layer out of scope).
//!
//! Writes `BENCH_faults.json` at the repository root (via the shared
//! [`threev_bench::report`] writer) so the numbers land in version
//! control next to the code they measure.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use threev_analysis::TxnStatus;
use threev_baselines::two_pc::{TwoPcCluster, TwoPcConfig};
use threev_bench::report::{write_bench_report, JsonObject, JsonValue};
use threev_core::advance::AdvancementPolicy;
use threev_core::cluster::{ClusterConfig, ThreeVCluster};
use threev_model::NodeId;
use threev_sim::{FaultPlane, FaultScope, SimDuration, SimTime};
use threev_workload::HospitalWorkload;

const N_NODES: u16 = 4;
const SEED: u64 = 0xFA17;
/// Loss rates under test, in parts per million.
const LOSS_PPM: [u32; 3] = [0, 50_000, 200_000];

fn hospital() -> HospitalWorkload {
    HospitalWorkload {
        departments: N_NODES,
        patients: 100,
        rate_tps: 2_000.0,
        read_pct: 20,
        max_fanout: 3,
        duration: SimDuration::from_millis(200),
        zipf_s: 0.8,
        seed: SEED,
    }
}

/// 3V control-plane fault scope: every coordinator↔node link, both ways.
fn control_plane(loss_ppm: u32) -> FaultPlane {
    let coord = NodeId(N_NODES);
    FaultPlane {
        drop_ppm: loss_ppm,
        dup_ppm: if loss_ppm > 0 { 50_000 } else { 0 },
        scope: FaultScope::Links(
            (0..N_NODES)
                .flat_map(|i| [(coord, NodeId(i)), (NodeId(i), coord)])
                .collect(),
        ),
        ..FaultPlane::default()
    }
}

/// 2PC fault scope: the commit protocol is the data plane, so loss lands
/// everywhere.
fn all_links(loss_ppm: u32) -> FaultPlane {
    FaultPlane {
        drop_ppm: loss_ppm,
        dup_ppm: if loss_ppm > 0 { 50_000 } else { 0 },
        ..FaultPlane::default()
    }
}

struct Measurement {
    committed: u64,
    stalled: u64,
    committed_per_vsec: f64,
    advancements: usize,
    mean_adv_latency_us: f64,
    dropped: u64,
    duplicated: u64,
}

fn run_threev(loss_ppm: u32) -> Measurement {
    let w = hospital();
    let mut cfg = ClusterConfig::new(N_NODES)
        .seed(SEED)
        .advancement(AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(20),
            period: SimDuration::from_millis(20),
        });
    cfg.sim.faults = control_plane(loss_ppm);
    cfg.protocol.coordinator.retransmit = Some(SimDuration::from_millis(2));
    let mut cluster = ThreeVCluster::new(&w.schema(), cfg, w.arrivals());
    // Periodic advancement re-arms forever: run to a horizon, not
    // quiescence. One virtual second covers the 200ms arrival window plus
    // a wide drain margin even at 20% control loss.
    cluster.run_until(SimTime(1_000_000));
    let committed = cluster
        .records()
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count() as u64;
    let total = cluster.records().len() as u64;
    let advs = cluster.advancements();
    let mean_adv = if advs.is_empty() {
        0.0
    } else {
        advs.iter()
            .map(|a| a.total().as_micros() as f64)
            .sum::<f64>()
            / advs.len() as f64
    };
    let stats = cluster.sim_stats();
    Measurement {
        committed,
        stalled: total - committed,
        committed_per_vsec: committed as f64 / (cluster.now().0 as f64 / 1e6),
        advancements: advs.len(),
        mean_adv_latency_us: mean_adv,
        dropped: stats.dropped,
        duplicated: stats.duplicated,
    }
}

fn run_two_pc(loss_ppm: u32) -> Measurement {
    let w = hospital();
    let mut sim = threev_sim::SimConfig::seeded(SEED);
    sim.faults = all_links(loss_ppm);
    let mut cluster = TwoPcCluster::new(
        &w.schema(),
        N_NODES,
        sim,
        TwoPcConfig::default(),
        w.arrivals(),
    );
    cluster.run(SimTime(1_000_000));
    let committed = cluster
        .records()
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count() as u64;
    let total = cluster.records().len() as u64;
    let stats = cluster.sim_stats();
    Measurement {
        committed,
        stalled: total - committed,
        committed_per_vsec: committed as f64 / (cluster.now().0 as f64 / 1e6),
        advancements: 0,
        mean_adv_latency_us: 0.0,
        dropped: stats.dropped,
        duplicated: stats.duplicated,
    }
}

// ---------------------------------------------------------------- DES cost

/// Host cost of the fault machinery itself: simulating the same window
/// with the plane off and at 20% control loss (retransmit traffic and
/// fault bookkeeping included).
fn bench_des_fault_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("faults_sim_4node");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for (name, loss) in [("no_faults", 0u32), ("loss_20pct", 200_000)] {
        g.bench_function(name, |b| {
            b.iter(|| run_threev(loss).committed);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_des_fault_cost);

// ------------------------------------------------------------------ report

fn row(m: &Measurement, with_adv: bool) -> JsonObject {
    let mut obj = JsonObject::new()
        .field("committed", m.committed)
        .field("stalled", m.stalled)
        .field(
            "committed_per_vsec",
            JsonValue::Float(m.committed_per_vsec, 0),
        )
        .field("dropped", m.dropped)
        .field("duplicated", m.duplicated);
    if with_adv {
        obj = obj.field("advancements", m.advancements).field(
            "mean_adv_latency_us",
            JsonValue::Float(m.mean_adv_latency_us, 0),
        );
    }
    obj
}

fn write_report() {
    let mut report = JsonObject::new()
        .field("bench", "faults")
        .field("n_nodes", N_NODES)
        .field("seed", SEED)
        .field(
            "loss_scope",
            JsonObject::new()
                .field("threev", "coordinator links (control plane)")
                .field("two_pc", "all links (commit protocol is the data plane)"),
        );
    for loss in LOSS_PPM {
        let tv = run_threev(loss);
        let tpc = run_two_pc(loss);
        println!(
            "loss {:>3}‰: 3V {:>4} committed ({} adv, mean {:.0}us) | 2PC {:>4} committed, {} stalled",
            loss / 1_000,
            tv.committed,
            tv.advancements,
            tv.mean_adv_latency_us,
            tpc.committed,
            tpc.stalled,
        );
        report = report.field(
            format!("{loss}ppm"),
            JsonObject::new()
                .field("threev", row(&tv, true))
                .field("two_pc", row(&tpc, false)),
        );
    }
    write_bench_report("faults", &report);
}

fn main() {
    benches();
    write_report();
}
