//! Storage-backend comparison: the in-memory chains vs the on-disk paged
//! chains, on the steady-state hospital workload at 1 and 8 partitions.
//!
//! Two claims under test (DESIGN.md "Storage backends"):
//!
//! * **Protocol cost is backend-independent**: committed/s (virtual time)
//!   is identical mem vs paged for the same seed — the backend is outside
//!   the protocol's message flow — so the JSON carries both as a
//!   self-check, and criterion tracks the *host* cost the page files add.
//! * **Incremental beats full**: a paged checkpoint rewrites only the
//!   records dirtied since the last flush (plus the meta frame), while a
//!   mem checkpoint serialises the entire store into the snapshot. On a
//!   steady-state run whose journals keep growing, the paged bytes must
//!   come in well under half the mem bytes — the
//!   `incremental_to_full_ratio` field, gated < 0.5 by the nightly job's
//!   consumers and eyeballed in EXPERIMENTS.md.
//!
//! Writes `BENCH_storage.json` at the repository root via the shared
//! [`threev_bench::report`] writer.

use std::path::PathBuf;
use std::time::Duration;

use criterion::{criterion_group, Criterion};
use threev_analysis::TxnStatus;
use threev_bench::report::{write_bench_report, JsonObject, JsonValue};
use threev_core::advance::AdvancementPolicy;
use threev_core::node::{BackendConfig, DurabilityMode};
use threev_shard::{ShardedCluster, ShardedConfig, ShardedHospital};
use threev_sim::{SimDuration, SimTime};
use threev_workload::HospitalWorkload;

const NODES_PER_PARTITION: u16 = 2;
const SEED: u64 = 0x57;
/// Per-partition offered load, held constant across cluster sizes.
const RATE_PER_PARTITION_TPS: f64 = 1_000.0;
/// Arrival window; the run horizon leaves a wide drain margin after it.
/// Long enough that the unavoidable first flush (schema population marks
/// every record dirty, so checkpoint #1 writes the whole store) is
/// amortised across many steady-state incremental checkpoints.
const WINDOW: SimDuration = SimDuration::from_millis(1_200);
const HORIZON: SimTime = SimTime(2_000_000);
/// WAL records between checkpoints. Small enough that several checkpoints
/// land inside the window (the incremental path gets exercised repeatedly),
/// large enough that a checkpoint covers a real batch of dirty records.
const CHECKPOINT_EVERY: usize = 64;

const PARTITIONS: [u16; 2] = [1, 8];

#[derive(Clone, Copy, PartialEq)]
enum Backend {
    Mem,
    Paged,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Mem => "mem",
            Backend::Paged => "paged",
        }
    }
}

fn hospital(partitions: u16) -> ShardedHospital {
    let base = HospitalWorkload {
        departments: partitions * NODES_PER_PARTITION,
        // Large patient roster relative to the arrival window: each
        // checkpoint interval dirties a bounded handful of (balance,
        // charges) pairs out of thousands of records per node, which is
        // the regime incremental checkpoints exist for. A mem checkpoint
        // still serialises the whole roster every time.
        patients: 1_000 * u64::from(partitions),
        rate_tps: RATE_PER_PARTITION_TPS * f64::from(partitions),
        read_pct: 10,
        max_fanout: 2,
        duration: WINDOW,
        zipf_s: 0.4,
        seed: SEED,
    };
    let topo = ShardedConfig::new(partitions, NODES_PER_PARTITION).topology;
    // Confined trees: the steady-state sharding sweet spot, so the bench
    // measures storage cost, not cross-partition coordination.
    ShardedHospital::new(base, topo).confined()
}

fn scratch(partitions: u16) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "threev-bench-storage-{partitions}p-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Measurement {
    partitions: u16,
    backend: Backend,
    committed: u64,
    committed_per_vsec: f64,
    checkpoints: u64,
    checkpoint_bytes: u64,
    wal_records: u64,
}

fn run(partitions: u16, backend: Backend) -> Measurement {
    let w = hospital(partitions);
    let dir = scratch(partitions);
    let backend_cfg = match backend {
        Backend::Mem => BackendConfig::Mem,
        Backend::Paged => BackendConfig::Paged { dir: dir.clone() },
    };
    let cfg = ShardedConfig::new(partitions, NODES_PER_PARTITION)
        .seed(SEED)
        .advancement(AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(20),
            period: SimDuration::from_millis(30),
        })
        .durability(DurabilityMode::Memory {
            checkpoint_every: CHECKPOINT_EVERY,
        })
        .backend(backend_cfg);
    let mut cluster = ShardedCluster::new(&w.schema(), cfg, w.arrivals());
    cluster.run_until(HORIZON);

    let committed = cluster
        .records()
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count() as u64;
    let mut checkpoints = 0u64;
    let mut checkpoint_bytes = 0u64;
    let mut wal_records = 0u64;
    for id in cluster.node_ids() {
        let stats = cluster.node(id).stats();
        checkpoints += stats.checkpoints;
        checkpoint_bytes += stats.checkpoint_bytes;
        wal_records += stats.wal_records;
    }
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    Measurement {
        partitions,
        backend,
        committed,
        committed_per_vsec: committed as f64 / (HORIZON.0 as f64 / 1e6),
        checkpoints,
        checkpoint_bytes,
        wal_records,
    }
}

// ---------------------------------------------------------------- host cost

/// Wall-clock cost of the same run over each backend: what the page-file
/// I/O actually costs the host, tracked in criterion history.
fn bench_backend_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage_backend");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for backend in [Backend::Mem, Backend::Paged] {
        g.bench_function(format!("hospital_1p_{}", backend.name()), |b| {
            b.iter(|| run(1, backend).committed);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_backend_cost);

// ------------------------------------------------------------------ report

fn row(m: &Measurement) -> JsonObject {
    JsonObject::new()
        .field("committed", m.committed)
        .field(
            "committed_per_vsec",
            JsonValue::Float(m.committed_per_vsec, 0),
        )
        .field("checkpoints", m.checkpoints)
        .field("checkpoint_bytes", m.checkpoint_bytes)
        .field("wal_records", m.wal_records)
}

fn write_report() {
    let mut report = JsonObject::new()
        .field("bench", "storage")
        .field("nodes_per_partition", NODES_PER_PARTITION)
        .field(
            "rate_per_partition_tps",
            JsonValue::Float(RATE_PER_PARTITION_TPS, 0),
        )
        .field("checkpoint_every", CHECKPOINT_EVERY)
        .field("seed", SEED);
    for p in PARTITIONS {
        let mem = run(p, Backend::Mem);
        let paged = run(p, Backend::Paged);
        assert_eq!(
            mem.committed, paged.committed,
            "backend must not change protocol outcomes"
        );
        let ratio = paged.checkpoint_bytes as f64 / mem.checkpoint_bytes as f64;
        for m in [&mem, &paged] {
            println!(
                "P={:>2} {:<5}: {:>6} committed ({:>8.0}/s) | {:>4} checkpoints, {:>10} checkpoint bytes",
                m.partitions,
                m.backend.name(),
                m.committed,
                m.committed_per_vsec,
                m.checkpoints,
                m.checkpoint_bytes,
            );
        }
        println!("P={p:>2} incremental/full checkpoint bytes: {ratio:.3}");
        assert!(
            ratio < 0.5,
            "incremental checkpoints must stay under half the full-store \
             bytes (got {ratio:.3} at {p} partitions)"
        );
        report = report.field(
            format!("{p}p"),
            JsonObject::new()
                .field("mem", row(&mem))
                .field("paged", row(&paged))
                .field("incremental_to_full_ratio", JsonValue::Float(ratio, 3)),
        );
    }
    write_bench_report("storage", &report);
}

fn main() {
    benches();
    write_report();
}
