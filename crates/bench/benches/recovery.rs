//! Durability costs: recovery latency vs. checkpoint interval, and raw
//! WAL replay throughput.
//!
//! The checkpoint interval is the knob trading *online* cost (serialising
//! the node image every N log records) against *restart* cost (the log
//! tail replayed after a crash). The probe drives a synthetic but
//! representative record stream — counter adds, journal appends, R/C
//! counter increments, commute-lock traffic — through a real
//! [`Durability`] handle at each interval, crashes it with the expected
//! half-interval tail outstanding, and times the recovery. A second probe
//! times recovery of the same stream through the `std::fs` backend, so
//! the file framing/checksum overhead is visible next to the in-memory
//! number.
//!
//! Writes `BENCH_recovery.json` at the repository root (via the shared
//! [`threev_bench::report`] writer) so the numbers land in version
//! control next to the code they measure.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use threev_bench::report::{write_bench_report, JsonObject, JsonValue};
use threev_durability::{
    Durability, FileBackend, MemBackend, RecoveredState, Snapshot, WalOp, WalRecord,
};
use threev_model::{Key, NodeId, TxnId, UpdateOp, Value, VersionNo};
use threev_storage::LockMode;

/// Records in the synthetic stream (plus half an interval of tail).
const STREAM_N: u64 = 100_000;
/// Checkpoint intervals under test.
const INTERVALS: [usize; 4] = [16, 64, 256, 1024];

fn k(i: u64) -> Key {
    Key(i)
}

fn t(i: u64) -> TxnId {
    TxnId::new(i, NodeId(0))
}

/// Base checkpoint: eight counters and two journals, all at version 1 —
/// the post-advancement steady state the stream mutates.
fn base_snapshot() -> Snapshot {
    let mut store: Vec<(Key, Vec<(VersionNo, Value)>)> = (1..=8)
        .map(|i| (k(i), vec![(VersionNo(1), Value::Counter(0))]))
        .collect();
    store.push((k(11), vec![(VersionNo(1), Value::Journal(Vec::new()))]));
    store.push((k(12), vec![(VersionNo(1), Value::Journal(Vec::new()))]));
    Snapshot {
        node: NodeId(0),
        lsn: 0,
        vu: VersionNo(2),
        vr: VersionNo(1),
        external_store: false,
        store,
        counters: Vec::new(),
        locks: Vec::new(),
    }
}

/// Deterministic representative mix (no RNG: the stream is part of the
/// benchmark definition). Roughly the live engine's ratio of store
/// mutations to counter increments to lock transitions.
fn stream_op(i: u64) -> WalOp {
    match i % 10 {
        0..=3 => WalOp::Update {
            key: k(1 + i % 8),
            version: VersionNo(1),
            op: UpdateOp::Add((i % 13) as i64 - 6),
            txn: t(i),
        },
        4 | 5 => WalOp::Update {
            key: k(11 + i % 2),
            version: VersionNo(1),
            op: UpdateOp::Append {
                amount: (i % 97) as i64,
                tag: (i % 7) as u32,
            },
            txn: t(i),
        },
        6 => WalOp::IncRequest {
            version: VersionNo(2),
            to: NodeId((i % 4) as u16),
        },
        7 => WalOp::IncCompletion {
            version: VersionNo(2),
            from: NodeId((i % 4) as u16),
        },
        // Commute locks never conflict, so the acquire/release pairs
        // replay to grants regardless of interleaving — same invariant
        // the engine maintains (it only logs grants).
        8 => WalOp::LockAcquire {
            key: k(1 + i % 8),
            txn: t(i % 4),
            mode: LockMode::Commute,
        },
        _ => WalOp::LockRelease { txn: t(i % 4) },
    }
}

/// Checkpoint image of the shadow state the probe maintains alongside the
/// log (the engine builds the same thing from its live store).
fn snapshot_of(state: &RecoveredState) -> Snapshot {
    Snapshot {
        node: NodeId(0),
        lsn: 0, // stamped by Durability::checkpoint
        vu: state.vu,
        vr: state.vr,
        external_store: false,
        store: state.store.export_parts(),
        counters: state.counters.clone(),
        locks: state.locks.export_parts(),
    }
}

struct IntervalProbe {
    checkpoints: u64,
    total_checkpoint_us: f64,
    recovery_us: f64,
    records_replayed: u64,
}

/// Drive the stream through `Durability` at one checkpoint interval, then
/// crash with the *expected* tail (half an interval) outstanding and time
/// the restart.
fn probe_interval(
    backend: Box<dyn threev_durability::LogBackend>,
    interval: usize,
) -> IntervalProbe {
    let mut dur = Durability::new(backend, interval);
    let mut shadow = RecoveredState::from_snapshot(base_snapshot());
    dur.checkpoint(base_snapshot());

    let mut checkpoints = 0u64;
    let mut checkpoint_time = Duration::ZERO;
    for i in 0..STREAM_N {
        let op = stream_op(i);
        let lsn = dur.log(op.clone());
        shadow.apply(&WalRecord { lsn, op });
        if dur.should_checkpoint() {
            let t0 = Instant::now();
            dur.checkpoint(snapshot_of(&shadow));
            checkpoint_time += t0.elapsed();
            checkpoints += 1;
        }
    }
    // The crash lands uniformly inside an interval on average, so leave
    // exactly half an interval of un-checkpointed tail.
    for i in 0..(interval as u64 / 2) {
        dur.log(stream_op(STREAM_N + i));
    }

    let t0 = Instant::now();
    let rec = dur.recover().expect("snapshot exists");
    let recovery_us = t0.elapsed().as_secs_f64() * 1e6;
    IntervalProbe {
        checkpoints,
        total_checkpoint_us: checkpoint_time.as_secs_f64() * 1e6,
        recovery_us,
        records_replayed: rec.replayed,
    }
}

/// Raw replay throughput: the whole stream as one un-checkpointed tail.
fn probe_replay_throughput(backend: Box<dyn threev_durability::LogBackend>) -> (f64, u64) {
    let mut dur = Durability::new(backend, 0);
    dur.checkpoint(base_snapshot());
    for i in 0..STREAM_N {
        dur.log(stream_op(i));
    }
    let t0 = Instant::now();
    let rec = dur.recover().expect("snapshot exists");
    let secs = t0.elapsed().as_secs_f64();
    (rec.replayed as f64 / secs, rec.replayed)
}

// ---------------------------------------------------------------- criterion

/// Host cost of pure log replay (no backend I/O): records already in
/// memory, applied to a fresh state.
fn bench_replay(c: &mut Criterion) {
    let records: Vec<WalRecord> = (0..STREAM_N)
        .map(|i| WalRecord {
            lsn: i + 1,
            op: stream_op(i),
        })
        .collect();
    let mut g = c.benchmark_group("recovery_replay");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("replay_100k_records", |b| {
        b.iter(|| {
            let mut state = RecoveredState::from_snapshot(base_snapshot());
            for rec in &records {
                state.apply(rec);
            }
            state.replayed
        });
    });
    g.finish();
}

criterion_group!(benches, bench_replay);

// ------------------------------------------------------------------ report

fn write_report() {
    let mut intervals = JsonObject::new();
    for interval in INTERVALS {
        let p = probe_interval(Box::new(MemBackend::new()), interval);
        println!(
            "interval {interval:>5}: {} checkpoints ({:.0}us total), recovery {:.0}us replaying {} records",
            p.checkpoints, p.total_checkpoint_us, p.recovery_us, p.records_replayed
        );
        intervals = intervals.field(
            format!("{interval}"),
            JsonObject::new()
                .field("checkpoints", p.checkpoints)
                .field(
                    "total_checkpoint_us",
                    JsonValue::Float(p.total_checkpoint_us, 0),
                )
                .field(
                    "mean_checkpoint_us",
                    JsonValue::Float(p.total_checkpoint_us / p.checkpoints.max(1) as f64, 1),
                )
                .field("recovery_us", JsonValue::Float(p.recovery_us, 0))
                .field("records_replayed", p.records_replayed),
        );
    }

    let (mem_rps, mem_replayed) = probe_replay_throughput(Box::new(MemBackend::new()));
    let file_dir =
        std::env::temp_dir().join(format!("threev-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&file_dir);
    std::fs::create_dir_all(&file_dir).expect("create WAL dir");
    let (file_rps, _) = probe_replay_throughput(Box::new(
        FileBackend::open(&file_dir).expect("open file WAL"),
    ));
    let _ = std::fs::remove_dir_all(&file_dir);
    println!(
        "replay throughput: mem {:.0} records/s, file {:.0} records/s ({} records)",
        mem_rps, file_rps, mem_replayed
    );

    let report = JsonObject::new()
        .field("bench", "recovery")
        .field("stream_records", STREAM_N)
        .field(
            "tail_policy",
            "half a checkpoint interval (expected crash position)",
        )
        .field("recovery_vs_checkpoint_interval", intervals)
        .field(
            "replay_throughput",
            JsonObject::new()
                .field("records", mem_replayed)
                .field("mem_records_per_sec", JsonValue::Float(mem_rps, 0))
                .field("file_records_per_sec", JsonValue::Float(file_rps, 0)),
        );
    write_bench_report("recovery", &report);
}

fn main() {
    benches();
    write_report();
}
