//! Multi-partition scale-out: aggregate throughput and advancement cost
//! as the cluster grows from 1 to 256 partitions.
//!
//! Two workload shapes per cluster size, both holding the *per-partition*
//! offered load constant so linear scale-out shows up as linearly growing
//! committed work:
//!
//! * **disjoint** — every transaction tree stays inside its root
//!   partition (the paper's sharding sweet spot). The claim under test:
//!   aggregate committed/s grows with the partition count while each
//!   partition's advancement latency *and advancement message count* stay
//!   flat — advancement is partition-local, so coordination cost is
//!   independent of cluster size.
//! * **cross** — trees keep their foreign children, exercising the gauge
//!   counters and resolution pins on every inter-partition edge (swept at
//!   the smaller sizes; the shuttle cost dominates past that without
//!   saying anything new about the protocol).
//!
//! Writes `BENCH_sharding.json` at the repository root via the shared
//! [`threev_bench::report`] writer.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use threev_analysis::TxnStatus;
use threev_bench::report::{write_bench_report, JsonObject, JsonValue};
use threev_core::advance::AdvancementPolicy;
use threev_model::PartitionId;
use threev_shard::{ShardedCluster, ShardedConfig, ShardedHospital};
use threev_sim::{SimDuration, SimTime};
use threev_workload::HospitalWorkload;

const NODES_PER_PARTITION: u16 = 2;
const SEED: u64 = 0x5A;
/// Per-partition offered load, held constant across cluster sizes.
const RATE_PER_PARTITION_TPS: f64 = 250.0;
/// Arrival window; the run horizon leaves a wide drain margin after it.
const WINDOW: SimDuration = SimDuration::from_millis(50);
const HORIZON: SimTime = SimTime(250_000);

/// The disjoint-keys sweep (the acceptance gate: 1 -> 64 -> 256).
const DISJOINT_PARTITIONS: [u16; 5] = [1, 4, 16, 64, 256];
/// The cross-partition sweep.
const CROSS_PARTITIONS: [u16; 3] = [1, 4, 16];

fn hospital(partitions: u16, confined: bool) -> ShardedHospital {
    let base = HospitalWorkload {
        departments: partitions * NODES_PER_PARTITION,
        patients: 50 * u64::from(partitions),
        rate_tps: RATE_PER_PARTITION_TPS * f64::from(partitions),
        read_pct: 10,
        max_fanout: 2,
        duration: WINDOW,
        zipf_s: 0.9,
        seed: SEED,
    };
    let topo = ShardedConfig::new(partitions, NODES_PER_PARTITION).topology;
    let sharded = ShardedHospital::new(base, topo);
    if confined {
        sharded.confined()
    } else {
        sharded
    }
}

struct Measurement {
    partitions: u16,
    committed: u64,
    committed_per_vsec: f64,
    cross_messages: u64,
    /// Mean advancement latency across every partition's advancements.
    mean_adv_latency_us: f64,
    /// Mean per-partition count of advancement-tagged messages: the
    /// coordination cost one partition pays, which must not grow with the
    /// cluster.
    adv_msgs_per_partition: f64,
    advancements_per_partition: f64,
}

fn run(partitions: u16, confined: bool) -> Measurement {
    let w = hospital(partitions, confined);
    let cfg = ShardedConfig::new(partitions, NODES_PER_PARTITION)
        .seed(SEED)
        .advancement(AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(20),
            period: SimDuration::from_millis(30),
        });
    let mut cluster = ShardedCluster::new(&w.schema(), cfg, w.arrivals());
    // Periodic advancement re-arms forever: run to the horizon.
    cluster.run_until(HORIZON);

    let committed = cluster
        .records()
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count() as u64;
    let mut adv_total_us = 0.0;
    let mut adv_count = 0usize;
    let mut adv_msgs = 0u64;
    for p in 0..partitions {
        let pid = PartitionId(p);
        for a in cluster.advancements(pid) {
            adv_total_us += a.total().as_micros() as f64;
            adv_count += 1;
        }
        adv_msgs += cluster.sim_stats(pid).tagged("advance");
    }
    Measurement {
        partitions,
        committed,
        committed_per_vsec: committed as f64 / (HORIZON.0 as f64 / 1e6),
        cross_messages: cluster.cross_messages(),
        mean_adv_latency_us: if adv_count == 0 {
            0.0
        } else {
            adv_total_us / adv_count as f64
        },
        adv_msgs_per_partition: adv_msgs as f64 / f64::from(partitions),
        advancements_per_partition: adv_count as f64 / f64::from(partitions),
    }
}

// ---------------------------------------------------------------- DES cost

/// Host cost of the shuttle itself at a small size, so regressions in the
/// cross-partition routing path show up in criterion history.
fn bench_shuttle_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharding_sim");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for (name, confined) in [("disjoint_4p", true), ("cross_4p", false)] {
        g.bench_function(name, |b| {
            b.iter(|| run(4, confined).committed);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shuttle_cost);

// ------------------------------------------------------------------ report

fn row(m: &Measurement) -> JsonObject {
    JsonObject::new()
        .field("partitions", m.partitions)
        .field("committed", m.committed)
        .field(
            "committed_per_vsec",
            JsonValue::Float(m.committed_per_vsec, 0),
        )
        .field("cross_messages", m.cross_messages)
        .field(
            "mean_adv_latency_us",
            JsonValue::Float(m.mean_adv_latency_us, 1),
        )
        .field(
            "adv_msgs_per_partition",
            JsonValue::Float(m.adv_msgs_per_partition, 1),
        )
        .field(
            "advancements_per_partition",
            JsonValue::Float(m.advancements_per_partition, 1),
        )
}

fn write_report() {
    let mut report = JsonObject::new()
        .field("bench", "sharding")
        .field("nodes_per_partition", NODES_PER_PARTITION)
        .field(
            "rate_per_partition_tps",
            JsonValue::Float(RATE_PER_PARTITION_TPS, 0),
        )
        .field("seed", SEED);
    let mut disjoint = Vec::new();
    for p in DISJOINT_PARTITIONS {
        let m = run(p, true);
        println!(
            "disjoint P={:>3}: {:>6} committed ({:>8.0}/s) | adv latency {:>7.0}us, {:>5.1} adv msgs/partition, cross={}",
            p, m.committed, m.committed_per_vsec, m.mean_adv_latency_us, m.adv_msgs_per_partition, m.cross_messages,
        );
        disjoint.push(m);
    }
    let mut cross = Vec::new();
    for p in CROSS_PARTITIONS {
        let m = run(p, false);
        println!(
            "cross    P={:>3}: {:>6} committed ({:>8.0}/s) | adv latency {:>7.0}us, {:>5.1} adv msgs/partition, cross={}",
            p, m.committed, m.committed_per_vsec, m.mean_adv_latency_us, m.adv_msgs_per_partition, m.cross_messages,
        );
        cross.push(m);
    }
    let mut dj = JsonObject::new();
    for m in &disjoint {
        dj = dj.field(format!("{}p", m.partitions), row(m));
    }
    let mut cx = JsonObject::new();
    for m in &cross {
        cx = cx.field(format!("{}p", m.partitions), row(m));
    }
    report = report.field("disjoint", dj).field("cross", cx);
    write_bench_report("sharding", &report);
}

fn main() {
    benches();
    write_report();
}
