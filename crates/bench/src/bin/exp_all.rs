//! Run every experiment binary in sequence (the full evaluation).
//!
//! Equivalent to running each `exp_*` binary by hand; used to regenerate
//! `EXPERIMENTS.md` numbers in one go:
//!
//! ```text
//! cargo run --release -p threev-bench --bin exp_all
//! ```

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_table1",
    "exp_scaling",
    "exp_advancement_latency",
    "exp_staleness",
    "exp_versions",
    "exp_audit",
    "exp_noncommuting",
    "exp_dualwrite",
    "exp_advancement_duration",
    "exp_messages",
    "exp_compensation",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################\n");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("spawning {name}: {e}"));
        if !status.success() {
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
