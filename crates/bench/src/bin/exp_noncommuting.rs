//! X6: NC3V — graceful handling of non-commuting updates (paper §5).
//!
//! Claim under test: "in the absence of non-well-behaved transactions,
//! there is no wait to obtain a commute lock, and the performance of the
//! system does not suffer"; as the non-commuting fraction grows, they are
//! "serialized in the same way as traditional transactions".

use threev_analysis::report::{f1, us};
use threev_analysis::Table;
use threev_bench::engines::{run_three_v, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_sim::{SimDuration, SimTime};
use threev_workload::{SyntheticParams, SyntheticWorkload};

fn main() {
    println!("=== X6: throughput vs non-commuting fraction (3V + NC3V) ===\n");
    let mut t = Table::new([
        "nc %",
        "committed",
        "aborted",
        "tps",
        "upd p50",
        "upd p99",
        "nc p99",
    ]);
    for &nc_pct in &[0u8, 1, 2, 5, 10, 20] {
        let workload = SyntheticWorkload::new(SyntheticParams {
            n_nodes: 4,
            keys_per_node: 64,
            nc_pct,
            read_pct: 10,
            rate_tps: 4_000.0,
            duration: SimDuration::from_millis(500),
            ..SyntheticParams::default()
        });
        let (schema, arrivals) = workload.generate();
        let mut opts = RunOpts::new(4, SimTime(5_000_000));
        opts.locks = true; // NC3V mode even at 0% for a fair sweep
        opts.advancement = AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(60),
            period: SimDuration::from_millis(120),
        };
        let report = run_three_v(&schema, arrivals, &opts);
        // NC latency: records of non-commuting kind.
        let mut nc_lat = threev_analysis::Histogram::new();
        for r in &report.records {
            if r.kind == threev_model::TxnKind::NonCommuting {
                if let Some(l) = r.latency() {
                    nc_lat.record(l.as_micros());
                }
            }
        }
        t.row([
            format!("{nc_pct}%"),
            report.summary.total_committed().to_string(),
            report.summary.aborted.to_string(),
            f1(report.tps()),
            us(report.summary.update_latency.p50()),
            us(report.summary.update_latency.p99()),
            if nc_lat.count() > 0 {
                us(nc_lat.p99())
            } else {
                "-".to_string()
            },
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: commuting latency flat at 0% (commute locks never\n\
         conflict), degrading gently as exclusive lockers and 2PC rounds\n\
         are mixed in; NC transactions pay the gate + 2PC cost."
    );
}
