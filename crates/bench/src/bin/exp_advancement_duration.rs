//! X8: anatomy of one version advancement — how long each of the four
//! phases of §4.3 takes, under varying load and network latency.
//!
//! The *duration* of an advancement is pure background cost (Theorem 4.2
//! says nobody waits on it); what matters operationally is how soon reads
//! can switch (end of phase 3) and how many asynchronous counter-poll
//! rounds the two-round termination rule needs.

use threev_analysis::report::us;
use threev_analysis::Table;
use threev_bench::engines::{run_three_v, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_sim::{LatencyModel, SimConfig, SimDuration, SimTime};
use threev_workload::{SyntheticParams, SyntheticWorkload};

fn main() {
    println!("=== X8: advancement phase durations vs load and latency ===\n");
    let mut t = Table::new([
        "network",
        "load tps",
        "advs",
        "p1 (switch)",
        "p2 (drain)",
        "p3 (publish)",
        "p4 (gc)",
        "p2 rounds",
        "p4 rounds",
        "read-switch",
    ]);
    for (latency, label) in [(LatencyModel::lan(), "lan"), (LatencyModel::wan(), "wan")] {
        for &rate in &[1_000.0f64, 10_000.0, 40_000.0] {
            let workload = SyntheticWorkload::new(SyntheticParams {
                n_nodes: 8,
                keys_per_node: 128,
                rate_tps: rate,
                duration: SimDuration::from_millis(600),
                ..SyntheticParams::default()
            });
            let (schema, arrivals) = workload.generate();
            let mut opts = RunOpts::new(8, SimTime(5_000_000));
            opts.sim = SimConfig {
                latency,
                ..SimConfig::seeded(5)
            };
            opts.advancement = AdvancementPolicy::Periodic {
                first: SimDuration::from_millis(100),
                period: SimDuration::from_millis(150),
            };
            let report = run_three_v(&schema, arrivals, &opts);
            let n = report.advancements.len().max(1) as u64;
            let (mut p1, mut p2, mut p3, mut p4, mut r2, mut r4, mut rs) =
                (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
            for a in &report.advancements {
                p1 += a.p1_done.since(a.started).as_micros();
                p2 += a.p2_done.since(a.p1_done).as_micros();
                p3 += a.p3_done.since(a.p2_done).as_micros();
                p4 += a.p4_done.since(a.p3_done).as_micros();
                r2 += a.p2_rounds;
                r4 += a.p4_rounds;
                rs += a.to_read_switch().as_micros();
            }
            t.row([
                label.to_string(),
                format!("{rate:.0}"),
                report.advancements.len().to_string(),
                us(p1 / n),
                us(p2 / n),
                us(p3 / n),
                us(p4 / n),
                format!("{:.1}", r2 as f64 / n as f64),
                format!("{:.1}", r4 as f64 / n as f64),
                us(rs / n),
            ]);
        }
    }
    println!("{t}");
    println!(
        "expected shape: phase durations scale with round-trip latency, not\n\
         with load (counters quiesce as fast as in-flight trees drain);\n\
         poll rounds stay near the 2-round minimum of the termination rule."
    );
}
