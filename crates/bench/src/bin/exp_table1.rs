//! E-T1 / E-F2: replay the paper's Table 1 execution and Figure 2 version
//! layouts, machine-checking every reproduced property.

use threev_bench::table1;
use threev_model::NodeId;

fn main() {
    let replay = table1::run();

    println!("=== E-T1: Table 1 replay (sites p, q, s) ===\n");
    println!(
        "{}",
        replay.trace.render_columns(
            &[
                (NodeId(0), "SITE p"),
                (NodeId(1), "SITE q"),
                (NodeId(2), "SITE s")
            ],
            58,
        )
    );

    println!("=== E-F2: Figure 2 version layouts ===\n");
    for panel in &replay.panels {
        println!("{}:", panel.label);
        for (key, versions) in &panel.layouts {
            let name = match key.0 {
                100 => "A",
                101 => "B",
                102 => "D",
                103 => "E",
                104 => "F",
                _ => "?",
            };
            let vs: Vec<String> = versions.iter().map(|v| v.to_string()).collect();
            println!("  {name}: [{}]", vs.join(", "));
        }
        println!();
    }

    println!("=== Counter state before the coordinator's phase 2/4 ===\n");
    for (label, val) in &replay.counters {
        println!("  {label} = {val}");
    }
    println!();

    match replay.verify() {
        Ok(()) => println!("VERIFIED: all Table 1 / Figure 2 properties reproduced."),
        Err(e) => {
            eprintln!("FAILED: {e}");
            std::process::exit(1);
        }
    }
}
