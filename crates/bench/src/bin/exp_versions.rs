//! X4: the space bound — at most three versions of any item, ever
//! (paper §4.4 property 1/2a), and copy-on-update creates far fewer copies
//! than the version-per-update schemes of refs \[6,7,1,5\] (§7).

use threev_analysis::report::f2;
use threev_analysis::Table;
use threev_bench::engines::{run_three_v, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_sim::{SimDuration, SimTime};
use threev_workload::{SyntheticParams, SyntheticWorkload};

fn main() {
    println!("=== X4: version-count bound and copy-on-update economy ===\n");
    let mut t = Table::new([
        "adv period",
        "advancements",
        "updates",
        "max live versions",
        "copies created",
        "copies/update",
        "version-per-update copies",
    ]);
    for &period_ms in &[10u64, 25, 50, 100] {
        let workload = SyntheticWorkload::new(SyntheticParams {
            n_nodes: 4,
            keys_per_node: 32, // few keys -> heavy reuse, stressing the bound
            rate_tps: 10_000.0,
            duration: SimDuration::from_millis(500),
            ..SyntheticParams::default()
        });
        let (schema, arrivals) = workload.generate();
        let mut opts = RunOpts::new(4, SimTime(3_000_000));
        opts.advancement = AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(period_ms),
            period: SimDuration::from_millis(period_ms),
        };
        let report = run_three_v(&schema, arrivals, &opts);
        assert!(
            report.max_versions <= 3,
            "3V bound violated: {}",
            report.max_versions
        );
        t.row([
            format!("{period_ms}ms"),
            report.advancements.len().to_string(),
            report.store_updates.to_string(),
            report.max_versions.to_string(),
            report.copies_created.to_string(),
            f2(report.copies_created as f64 / report.store_updates.max(1) as f64),
            // Schemes that version every update ([6,7,1,5], §7) copy once
            // per update operation.
            report.store_updates.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: max live versions == 3 always (the paper's bound);\n\
         copies/update << 1 and proportional to advancement frequency —\n\
         \"data copying in our protocol occurs only once after version\n\
         advancement\" (§7) — vs exactly 1.00 for version-per-update schemes."
    );
}
