//! X10: aborts and compensation (paper §3.2).
//!
//! A fraction of update transactions fail at one of their nodes; the
//! failing subtransaction triggers tree-structured compensating
//! subtransactions. Claims under test:
//!
//! * compensated transactions leave no trace in any version a read can
//!   see (the auditor's dirty-read check);
//! * compensating subtransactions are counted by the same R/C counters, so
//!   version advancement still detects termination correctly and never
//!   publishes a version with compensation in flight.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use threev_analysis::{Auditor, Table, TxnStatus};
use threev_bench::engines::{run_three_v, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_model::NodeId;
use threev_sim::{SimDuration, SimTime};
use threev_workload::HospitalWorkload;

fn main() {
    println!("=== X10: compensation under fault injection ===\n");
    let mut t = Table::new([
        "fail %",
        "committed",
        "aborted",
        "compensations",
        "tombstones",
        "advancements",
        "dirty reads",
        "audit",
    ]);
    for &fail_pct in &[0u8, 1, 5, 10] {
        let workload = HospitalWorkload {
            departments: 4,
            patients: 50,
            rate_tps: 2_000.0,
            read_pct: 25,
            max_fanout: 3,
            duration: SimDuration::from_millis(500),
            zipf_s: 0.9,
            seed: 31,
        };
        let schema = workload.schema();
        let mut arrivals = workload.arrivals();
        // Inject failures: a random node of the plan aborts its leg.
        let mut rng = SmallRng::seed_from_u64(fail_pct as u64 + 1);
        for a in &mut arrivals {
            if a.plan.kind == threev_model::TxnKind::Commuting && rng.gen_range(0u8..100) < fail_pct
            {
                let nodes = a.plan.root.nodes();
                let pick = nodes[rng.gen_range(0..nodes.len())];
                a.fail_node = Some(NodeId(pick.0));
            }
        }

        let mut opts = RunOpts::new(4, SimTime(5_000_000));
        opts.advancement = AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(40),
            period: SimDuration::from_millis(80),
        };
        let report = run_three_v(&schema, arrivals, &opts);
        let audit = Auditor::new(&report.records).check();
        let aborted = report
            .records
            .iter()
            .filter(|r| r.status == TxnStatus::Aborted)
            .count();
        t.row([
            format!("{fail_pct}%"),
            report.summary.total_committed().to_string(),
            aborted.to_string(),
            report.compensations.to_string(),
            report.tombstones.to_string(),
            report.advancements.len().to_string(),
            audit.aborted_visible.to_string(),
            if audit.clean() { "CLEAN" } else { "VIOLATIONS" }.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: aborted counts track the fail rate; advancements keep\n\
         completing (counters stay balanced through compensation); audit CLEAN\n\
         with zero dirty reads at every fail rate."
    );
}
