//! X7: dual-write overhead — "the overhead of performing two updates
//! instead of one applies only when there is data contention that would,
//! in an ordinary system, have blocked the transaction from performing any
//! update at all" (paper §2.3).
//!
//! Dual writes happen only to items written both by a straggler old-version
//! subtransaction and (already) by the new version — their rate should be a
//! tiny fraction of updates, scaling with advancement frequency and
//! network-latency spread, and exactly zero without advancement.

use threev_analysis::report::f2;
use threev_analysis::Table;
use threev_bench::engines::{run_three_v, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_sim::{LatencyModel, SimConfig, SimDuration, SimTime};
use threev_workload::{SyntheticParams, SyntheticWorkload};

fn run_case(period_ms: Option<u64>, latency: LatencyModel, label: &str, t: &mut Table) {
    let workload = SyntheticWorkload::new(SyntheticParams {
        n_nodes: 4,
        keys_per_node: 16, // hot keys: stragglers and new-version writers collide
        rate_tps: 8_000.0,
        fanout_min: 2,
        fanout_max: 4,
        duration: SimDuration::from_millis(400),
        ..SyntheticParams::default()
    });
    let (schema, arrivals) = workload.generate();
    let mut opts = RunOpts::new(4, SimTime(3_000_000));
    opts.sim = SimConfig {
        latency,
        ..SimConfig::seeded(7)
    };
    opts.advancement = match period_ms {
        None => AdvancementPolicy::Manual,
        Some(ms) => AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(ms),
            period: SimDuration::from_millis(ms),
        },
    };
    let report = run_three_v(&schema, arrivals, &opts);
    t.row([
        label.to_string(),
        period_ms.map_or("never".into(), |ms| format!("{ms}ms")),
        report.advancements.len().to_string(),
        report.store_updates.to_string(),
        report.dual_writes.to_string(),
        format!(
            "{}%",
            f2(100.0 * report.dual_writes as f64 / report.store_updates.max(1) as f64)
        ),
    ]);
}

fn main() {
    println!("=== X7: dual-write frequency vs advancement rate and latency spread ===\n");
    let mut t = Table::new([
        "network",
        "adv period",
        "advancements",
        "updates",
        "dual writes",
        "dual %",
    ]);
    for (latency, label) in [(LatencyModel::lan(), "lan"), (LatencyModel::wan(), "wan")] {
        run_case(None, latency, label, &mut t);
        for &ms in &[100u64, 25, 10] {
            run_case(Some(ms), latency, label, &mut t);
        }
    }
    println!("{t}");
    println!(
        "expected shape: 0 dual writes without advancement; a fraction of a\n\
         percent otherwise, growing with advancement frequency and with the\n\
         latency spread (more stragglers in flight across a switchover)."
    );
}
