//! X9: protocol message overhead per committed transaction.
//!
//! Claim under test (§1): "messages exchanged in our algorithm are sent
//! asynchronously with respect to the execution of user transactions, and
//! introduce no waiting" — and there should simply be *few* of them: no
//! per-transaction commit round, only subtransaction shipment, completion
//! notices, and an amortised advancement cost. Global 2PC pays
//! prepare/vote/decision per transaction on top.

use threev_analysis::report::f2;
use threev_analysis::Table;
use threev_bench::engines::{run_engine, Engine, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_sim::{SimDuration, SimTime};
use threev_workload::{SyntheticParams, SyntheticWorkload};

fn main() {
    println!("=== X9: messages per committed transaction, by class ===\n");
    let workload = SyntheticWorkload::new(SyntheticParams {
        n_nodes: 6,
        keys_per_node: 64,
        rate_tps: 6_000.0,
        fanout_min: 2,
        fanout_max: 3,
        duration: SimDuration::from_millis(500),
        ..SyntheticParams::default()
    });
    let (schema, arrivals) = workload.generate();

    let mut t = Table::new([
        "engine",
        "committed",
        "total msgs",
        "msgs/txn",
        "subtxn",
        "notice",
        "2pc",
        "advance",
        "client",
    ]);
    for engine in Engine::ALL {
        let mut opts = RunOpts::new(6, SimTime(4_000_000));
        opts.advancement = AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(50),
            period: SimDuration::from_millis(100),
        };
        let report = run_engine(engine, &schema, arrivals.clone(), &opts);
        let committed = report.summary.total_committed().max(1);
        let tag = |name: &str| -> u64 {
            report
                .messages_by_tag
                .iter()
                .find(|(t, _)| t == name)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        t.row([
            report.engine.name().to_string(),
            committed.to_string(),
            report.messages.to_string(),
            f2(report.messages as f64 / committed as f64),
            tag("subtxn").to_string(),
            tag("notice").to_string(),
            tag("2pc").to_string(),
            tag("advance").to_string(),
            tag("client").to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: 3v ~= no-coord + a small advancement-polling budget;\n\
         global-2pc adds a 2pc column roughly 3x its participant count per txn."
    );
}
