//! X2: user-transaction latency is unaffected by version advancement
//! (Theorem 4.2: "no subtransaction ever waits … for any activity related
//! to version advancement").
//!
//! Two probes:
//!  1. bucket committed-transaction latencies by whether the transaction
//!     was submitted *during* an advancement — the distributions must
//!     coincide;
//!  2. sweep the advancement period from "never" down to 10 ms — throughput
//!     and latency must stay flat while advancement count grows.

use threev_analysis::report::{f1, us};
use threev_analysis::{Histogram, Table};
use threev_bench::engines::{run_three_v, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_sim::{SimDuration, SimTime};
use threev_workload::{SyntheticParams, SyntheticWorkload};

fn main() {
    let workload = || {
        SyntheticWorkload::new(SyntheticParams {
            n_nodes: 8,
            keys_per_node: 128,
            rate_tps: 20_000.0,
            duration: SimDuration::from_millis(500),
            ..SyntheticParams::default()
        })
    };

    // ---- Probe 1: inside vs outside advancement windows ----------------
    let (schema, arrivals) = workload().generate();
    let mut opts = RunOpts::new(8, SimTime(3_000_000));
    opts.advancement = AdvancementPolicy::Periodic {
        first: SimDuration::from_millis(40),
        period: SimDuration::from_millis(80),
    };
    let report = run_three_v(&schema, arrivals, &opts);
    let windows: Vec<(SimTime, SimTime)> = report
        .advancements
        .iter()
        .map(|a| (a.started, a.p4_done))
        .collect();
    let mut inside = Histogram::new();
    let mut outside = Histogram::new();
    for r in &report.records {
        let Some(lat) = r.latency() else { continue };
        let submitted = r.submitted;
        if windows
            .iter()
            .any(|(a, b)| submitted >= *a && submitted <= *b)
        {
            inside.record(lat.as_micros());
        } else {
            outside.record(lat.as_micros());
        }
    }
    println!("=== X2a: latency of txns submitted during vs outside advancement ===\n");
    let mut t = Table::new(["bucket", "count", "p50", "p99", "mean"]);
    t.row([
        "during advancement".into(),
        inside.count().to_string(),
        us(inside.p50()),
        us(inside.p99()),
        us(inside.mean() as u64),
    ]);
    t.row([
        "outside advancement".into(),
        outside.count().to_string(),
        us(outside.p50()),
        us(outside.p99()),
        us(outside.mean() as u64),
    ]);
    println!("{t}");
    println!(
        "advancements completed during run: {}\n",
        report.advancements.len()
    );

    // ---- Probe 2: advancement-frequency sweep ---------------------------
    println!("=== X2b: throughput/latency vs advancement period ===\n");
    let mut t = Table::new(["adv period", "advancements", "committed", "tps", "upd p99"]);
    let periods: [Option<u64>; 5] = [None, Some(200), Some(50), Some(20), Some(10)];
    for period_ms in periods {
        let (schema, arrivals) = workload().generate();
        let mut opts = RunOpts::new(8, SimTime(3_000_000));
        opts.advancement = match period_ms {
            None => AdvancementPolicy::Manual,
            Some(ms) => AdvancementPolicy::Periodic {
                first: SimDuration::from_millis(ms),
                period: SimDuration::from_millis(ms),
            },
        };
        let report = run_three_v(&schema, arrivals, &opts);
        t.row([
            period_ms.map_or("never".to_string(), |ms| format!("{ms}ms")),
            report.advancements.len().to_string(),
            report.summary.total_committed().to_string(),
            f1(report.tps()),
            us(report.summary.update_latency.p99()),
        ]);
    }
    println!("{t}");
    println!("expected shape: all rows identical up to noise (Theorem 4.2).");
}
