//! X5: global serializability — the auditor versus all four engines.
//!
//! Claim under test (Theorem 4.1): every 3V schedule is equivalent to the
//! serial order "by version number, updates before reads within a version".
//! The auditor checks it exactly, via journal entries tagged with their
//! writing transaction. No-coordination must exhibit the paper's §1
//! partial-charges anomaly; manual versioning tears around switchovers;
//! 2PC and 3V must be spotless.

use threev_analysis::{Auditor, Table};
use threev_baselines::ManualConfig;
use threev_bench::engines::{run_engine, Engine, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_sim::{LatencyModel, SimConfig, SimDuration, SimTime};
use threev_workload::HospitalWorkload;

fn main() {
    println!("=== X5: serializability audit, hospital workload ===\n");
    let workload = HospitalWorkload {
        departments: 4,
        patients: 60,
        rate_tps: 4_000.0,
        read_pct: 30,
        max_fanout: 3,
        duration: SimDuration::from_millis(600),
        zipf_s: 1.1, // hot patients -> racing visits and inquiries
        seed: 424242,
    };
    let schema = workload.schema();
    let arrivals = workload.arrivals();

    let mut t = Table::new([
        "engine",
        "reads audited",
        "pairs",
        "atomicity viol.",
        "version viol.",
        "dirty reads",
        "verdict",
    ]);
    for engine in Engine::ALL {
        let mut opts = RunOpts::new(4, SimTime(5_000_000));
        // Jittery latency: stragglers are what break the weak schemes.
        opts.sim = SimConfig {
            latency: LatencyModel::Spiky {
                base: SimDuration::from_micros(500),
                spike_ppm: 100_000,
                spike_factor: 30,
            },
            ..SimConfig::seeded(99)
        };
        opts.advancement = AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(25),
            period: SimDuration::from_millis(50),
        };
        // Manual versioning with a *tight* delay — the configuration the
        // paper warns about.
        opts.manual = ManualConfig {
            period: SimDuration::from_millis(50),
            read_delay: SimDuration::from_millis(1),
            jitter: SimDuration::from_millis(3),
        };
        let report = run_engine(engine, &schema, arrivals.clone(), &opts);
        let audit = Auditor::new(&report.records).check();
        t.row([
            engine.name().to_string(),
            audit.reads_checked.to_string(),
            audit.pairs_checked.to_string(),
            audit.atomicity_violations.to_string(),
            audit.version_violations.to_string(),
            audit.aborted_visible.to_string(),
            if audit.clean() { "CLEAN" } else { "VIOLATIONS" }.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: 3v and global-2pc CLEAN; no-coord shows atomicity\n\
         violations (the §1 partial-charges anomaly); manual (tight delay)\n\
         shows version violations around uncoordinated switchovers."
    );
}
