//! X1: throughput and latency vs cluster size, all four engines.
//!
//! Claim under test (§1/§8): exploiting commutativity lets the system
//! "scale to very high transaction rates" — 3V should track the
//! no-coordination upper bound while global 2PC falls behind as nodes and
//! cross-node transactions multiply.

use threev_analysis::report::{f1, us};
use threev_analysis::Table;
use threev_bench::engines::{run_engine, Engine, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_sim::{SimDuration, SimTime};
use threev_workload::{SyntheticParams, SyntheticWorkload};

fn main() {
    println!("=== X1: throughput vs cluster size (offered load: 2500 tps/node) ===\n");
    let mut table = Table::new([
        "nodes",
        "engine",
        "committed",
        "tps",
        "read p50",
        "read p99",
        "upd p50",
        "upd p99",
    ]);
    for &n_nodes in &[2u16, 4, 8, 16, 32] {
        let w = SyntheticWorkload::new(SyntheticParams {
            n_nodes,
            keys_per_node: 128,
            rate_tps: 2_500.0 * n_nodes as f64,
            duration: SimDuration::from_millis(400),
            fanout_min: 1,
            fanout_max: 3,
            read_pct: 20,
            ..SyntheticParams::default()
        });
        let (schema, arrivals) = w.generate();
        for engine in Engine::ALL {
            let mut opts = RunOpts::new(n_nodes, SimTime(3_000_000));
            opts.advancement = AdvancementPolicy::Periodic {
                first: SimDuration::from_millis(50),
                period: SimDuration::from_millis(100),
            };
            let report = run_engine(engine, &schema, arrivals.clone(), &opts);
            let s = &report.summary;
            table.row([
                n_nodes.to_string(),
                engine.name().to_string(),
                s.total_committed().to_string(),
                f1(report.tps()),
                us(s.read_latency.p50()),
                us(s.read_latency.p99()),
                us(s.update_latency.p50()),
                us(s.update_latency.p99()),
            ]);
        }
    }
    println!("{table}");
    println!("expected shape: 3v ~= no-coord >> global-2pc; manual between.");
}
