//! CI perf regression gate for the hot path.
//!
//! A quick saturated mini-bench of the shipping configuration (framed
//! delivery, 8 stripes): 8 nodes, the hospital workload pushed far past
//! saturation, a short window, peak-folded over a few rounds. Exits
//! non-zero if peak committed/s drops more than 10% below the checked-in
//! floor.
//!
//! The floor is deliberately conservative: CI boxes are shared and
//! oversubscribed (the full bench observes within-config swings of
//! 20k–60k committed/s on a loaded 1-core host), so the gate is tuned to
//! catch order-of-magnitude regressions — an accidental O(n²) in the
//! store, a lock held across a batch, a codec round-trip per hop — not
//! single-digit drift. Trend tracking lives in the nightly
//! `BENCH_hotpath.json` artifact, not here.

use std::time::Duration;

use threev_core::cluster::{build_actors, ClusterActor, ClusterConfig};
use threev_runtime::ThreadedRun;
use threev_sim::SimDuration;
use threev_workload::HospitalWorkload;

/// Checked-in floor, committed transactions per second. The gate fails
/// below `FLOOR * 0.9`. Observed peaks on the reference box: 36k–61k/s.
const FLOOR_COMMITTED_PER_SEC: f64 = 12_000.0;
const N_NODES: u16 = 8;
const STRIPES: u16 = 8;
const ROUNDS: usize = 3;
const WINDOW_MS: u64 = 800;

fn probe() -> (f64, u64) {
    let w = HospitalWorkload {
        departments: N_NODES,
        patients: 200,
        rate_tps: 200_000.0,
        read_pct: 20,
        max_fanout: 3,
        duration: SimDuration::from_millis(WINDOW_MS),
        zipf_s: 0.8,
        seed: 0x6A7E,
    };
    let cfg = ClusterConfig::new(N_NODES).stripes(STRIPES);
    let actors = build_actors(&w.schema(), &cfg, w.arrivals());
    let (actors, report) = ThreadedRun::run_framed(
        actors,
        cfg.sim.clone(),
        Duration::from_millis(WINDOW_MS),
        Duration::from_millis(100),
    );
    let committed: u64 = actors
        .iter()
        .filter_map(|a| match a {
            ClusterActor::Client(c) => Some(
                c.records()
                    .iter()
                    .filter(|r| r.status == threev_analysis::TxnStatus::Committed)
                    .count() as u64,
            ),
            _ => None,
        })
        .sum();
    let codec_errors: u64 = report.codec_errors_per_actor.iter().sum();
    (
        committed as f64 / report.elapsed.as_secs_f64(),
        codec_errors,
    )
}

fn main() {
    let mut best = f64::MIN;
    for round in 0..ROUNDS {
        let (per_sec, codec_errors) = probe();
        println!("hotpath-gate round {round}: {per_sec:.0} committed/s");
        if codec_errors != 0 {
            eprintln!("hotpath-gate: FAIL — {codec_errors} codec errors on a clean wire");
            std::process::exit(1);
        }
        best = best.max(per_sec);
    }
    let cutoff = FLOOR_COMMITTED_PER_SEC * 0.9;
    println!(
        "hotpath-gate: peak {best:.0} committed/s (floor {FLOOR_COMMITTED_PER_SEC:.0}, cutoff {cutoff:.0})"
    );
    if best < cutoff {
        eprintln!(
            "hotpath-gate: FAIL — peak committed/s {best:.0} is more than 10% below the floor {FLOOR_COMMITTED_PER_SEC:.0}"
        );
        std::process::exit(1);
    }
    println!("hotpath-gate: OK");
}
