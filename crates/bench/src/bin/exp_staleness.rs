//! X3: read staleness vs advancement period — 3V against manual
//! versioning.
//!
//! Claim under test (§1/§7): 3V lets the operator "advance versions as soon
//! as deemed necessary so that read operations can access more current
//! data", while manual versioning must add a conservative delay on top of
//! its period. Staleness of a read = time since its version stopped
//! accumulating updates.

use threev_analysis::report::us;
use threev_analysis::Table;
use threev_baselines::ManualConfig;
use threev_bench::engines::{run_manual, run_three_v, RunOpts};
use threev_core::advance::AdvancementPolicy;
use threev_sim::{SimDuration, SimTime};
use threev_workload::{SyntheticParams, SyntheticWorkload};

fn main() {
    println!("=== X3: read staleness vs versioning period ===\n");
    let mut t = Table::new([
        "period",
        "engine",
        "reads",
        "stale p50",
        "stale p99",
        "stale max",
    ]);
    for &period_ms in &[20u64, 50, 100, 200] {
        let workload = SyntheticWorkload::new(SyntheticParams {
            n_nodes: 4,
            keys_per_node: 64,
            read_pct: 40,
            rate_tps: 5_000.0,
            duration: SimDuration::from_millis(800),
            ..SyntheticParams::default()
        });
        let (schema, arrivals) = workload.generate();

        // 3V with the period as its advancement cadence.
        let mut opts = RunOpts::new(4, SimTime(4_000_000));
        opts.advancement = AdvancementPolicy::Periodic {
            first: SimDuration::from_millis(period_ms),
            period: SimDuration::from_millis(period_ms),
        };
        let r3v = run_three_v(&schema, arrivals.clone(), &opts);
        let h = r3v
            .timeline
            .as_ref()
            .expect("3v has a timeline")
            .staleness_histogram(&r3v.records);
        t.row([
            format!("{period_ms}ms"),
            "3v".into(),
            h.count().to_string(),
            us(h.p50()),
            us(h.p99()),
            us(h.max()),
        ]);

        // Manual versioning with the same period plus the conservative
        // delay it needs for (approximate) safety.
        let mut opts = RunOpts::new(4, SimTime(4_000_000));
        opts.manual = ManualConfig {
            period: SimDuration::from_millis(period_ms),
            read_delay: SimDuration::from_millis(period_ms / 2),
            jitter: SimDuration::from_millis(2),
        };
        let rman = run_manual(&schema, arrivals, &opts);
        let h = rman
            .timeline
            .as_ref()
            .expect("manual has a nominal timeline")
            .staleness_histogram(&rman.records);
        t.row([
            format!("{period_ms}ms"),
            "manual".into(),
            h.count().to_string(),
            us(h.p50()),
            us(h.p99()),
            us(h.max()),
        ]);
    }
    println!("{t}");
    println!(
        "expected shape: 3v staleness ~ period (advancement publishes as soon as\n\
         the old version drains); manual staleness ~ period + delay, and its\n\
         reads lag a full accumulation period behind."
    );
}
