//! Uniform engine runners.
//!
//! Every experiment compares engines over the *same* schema and arrival
//! stream; this module runs one engine and distils the run into an
//! [`EngineReport`] with the fields every `exp_*` binary needs.

use threev_analysis::{RunSummary, TxnRecord, VersionTimeline};
use threev_baselines::{ManualCluster, ManualConfig, NoCoordCluster, TwoPcCluster, TwoPcConfig};
use threev_core::advance::{AdvancementPolicy, AdvancementRecord};
use threev_core::client::Arrival;
use threev_core::cluster::{ClusterConfig, ThreeVCluster};
use threev_model::Schema;
use threev_sim::{SimConfig, SimTime};

/// Which protocol to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The paper's 3V algorithm.
    ThreeV,
    /// Global strict-2PL + two-phase commit (paper §1 option 1).
    TwoPc,
    /// No coordination (paper §1 option 2).
    NoCoord,
    /// Manual epoch versioning (paper §1 option 3).
    Manual,
}

impl Engine {
    /// All four engines, 3V first.
    pub const ALL: [Engine; 4] = [
        Engine::ThreeV,
        Engine::TwoPc,
        Engine::NoCoord,
        Engine::Manual,
    ];

    /// Short display name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Engine::ThreeV => "3v",
            Engine::TwoPc => "global-2pc",
            Engine::NoCoord => "no-coord",
            Engine::Manual => "manual",
        }
    }
}

/// Options shared by the runners.
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Number of database nodes.
    pub n_nodes: u16,
    /// Simulation kernel config.
    pub sim: SimConfig,
    /// Virtual-time horizon (runs that cannot quiesce stop here).
    pub horizon: SimTime,
    /// 3V advancement policy.
    pub advancement: AdvancementPolicy,
    /// Enable NC3V locks (required iff the workload has NC transactions).
    pub locks: bool,
    /// Manual-versioning epochs.
    pub manual: ManualConfig,
    /// 2PC retry policy.
    pub two_pc: TwoPcConfig,
}

impl RunOpts {
    /// Defaults over `n_nodes` nodes with the given horizon.
    pub fn new(n_nodes: u16, horizon: SimTime) -> Self {
        RunOpts {
            n_nodes,
            sim: SimConfig::default(),
            horizon,
            advancement: AdvancementPolicy::Manual,
            locks: false,
            manual: ManualConfig::default(),
            two_pc: TwoPcConfig::default(),
        }
    }
}

/// Distilled result of one engine run.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// The engine that ran.
    pub engine: Engine,
    /// All transaction records.
    pub records: Vec<TxnRecord>,
    /// Summary over the full horizon.
    pub summary: RunSummary,
    /// Total protocol messages.
    pub messages: u64,
    /// Messages by tag (`subtxn`, `2pc`, `advance`, `notice`, `client`, …).
    pub messages_by_tag: Vec<(String, u64)>,
    /// Version timeline (3V: measured; Manual: nominal; others: none).
    pub timeline: Option<VersionTimeline>,
    /// Advancement records (3V only).
    pub advancements: Vec<AdvancementRecord>,
    /// Aggregate dual writes across nodes (3V straggler overhead, X7).
    pub dual_writes: u64,
    /// Aggregate copy-on-update copies across nodes.
    pub copies_created: u64,
    /// Aggregate update operations applied at stores.
    pub store_updates: u64,
    /// High-water mark of live versions of any item (X4).
    pub max_versions: u32,
    /// Manual versioning: updates lost to closed versions.
    pub lost_updates: u64,
    /// 3V: compensating subtransactions applied across nodes (X10).
    pub compensations: u64,
    /// 3V: tombstones created (compensation overtook the original; X10).
    pub tombstones: u64,
    /// Virtual time when the run ended.
    pub ended_at: SimTime,
}

impl EngineReport {
    /// Committed transactions per second of virtual time.
    pub fn tps(&self) -> f64 {
        self.summary.throughput_tps
    }
}

fn summarize(records: &[TxnRecord], end: SimTime) -> RunSummary {
    // Throughput over the span to the last commit: engines that quiesce
    // early are not rewarded, saturated engines are not excused.
    let last_commit = records
        .iter()
        .filter_map(|r| r.completed)
        .max()
        .unwrap_or(end);
    RunSummary::from_records(records, SimTime::ZERO, last_commit)
}

fn tag_counts(stats: &threev_sim::SimStats) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = stats
        .messages_by_tag
        .iter()
        .map(|(k, c)| (k.to_string(), *c))
        .collect();
    v.sort();
    v
}

/// Run the 3V engine.
pub fn run_three_v(schema: &Schema, arrivals: Vec<Arrival>, opts: &RunOpts) -> EngineReport {
    let mut cfg = ClusterConfig::new(opts.n_nodes).advancement(opts.advancement);
    cfg.sim = opts.sim.clone();
    if opts.locks {
        cfg = cfg.with_locks();
    }
    let mut cluster = ThreeVCluster::new(schema, cfg, arrivals);
    // Periodic policies re-arm forever; a horizon bounds both cases.
    cluster.run_until(opts.horizon);
    let ended_at = cluster.now();
    let records = cluster.records().to_vec();
    let (mut dual, mut copies, mut updates, mut maxv) = (0, 0, 0, 0);
    for s in cluster.store_stats() {
        dual += s.dual_writes;
        copies += s.copies_created;
        updates += s.updates;
        maxv = maxv.max(s.max_versions_of_any_item);
    }
    let (mut compensations, mut tombstones) = (0, 0);
    for s in cluster.node_stats() {
        compensations += s.compensations_applied;
        tombstones += s.tombstones;
    }
    EngineReport {
        engine: Engine::ThreeV,
        summary: summarize(&records, ended_at),
        messages: cluster.sim_stats().messages,
        messages_by_tag: tag_counts(cluster.sim_stats()),
        timeline: Some(cluster.timeline().clone()),
        advancements: cluster.advancements().to_vec(),
        dual_writes: dual,
        copies_created: copies,
        store_updates: updates,
        max_versions: maxv,
        lost_updates: 0,
        compensations,
        tombstones,
        records,
        ended_at,
    }
}

/// Run the global-2PC engine.
pub fn run_two_pc(schema: &Schema, arrivals: Vec<Arrival>, opts: &RunOpts) -> EngineReport {
    let mut cluster = TwoPcCluster::new(
        schema,
        opts.n_nodes,
        opts.sim.clone(),
        opts.two_pc.clone(),
        arrivals,
    );
    cluster.run(opts.horizon);
    let ended_at = cluster.now();
    let records = cluster.records().to_vec();
    let (mut copies, mut updates) = (0, 0);
    for i in 0..opts.n_nodes {
        copies += cluster.store_stats(i).copies_created;
        updates += cluster.store_stats(i).updates;
    }
    EngineReport {
        engine: Engine::TwoPc,
        summary: summarize(&records, ended_at),
        messages: cluster.sim_stats().messages,
        messages_by_tag: tag_counts(cluster.sim_stats()),
        timeline: None,
        advancements: Vec::new(),
        dual_writes: 0,
        copies_created: copies,
        store_updates: updates,
        max_versions: 1,
        lost_updates: 0,
        compensations: 0,
        tombstones: 0,
        records,
        ended_at,
    }
}

/// Run the no-coordination engine.
pub fn run_no_coord(schema: &Schema, arrivals: Vec<Arrival>, opts: &RunOpts) -> EngineReport {
    let mut cluster = NoCoordCluster::new(schema, opts.n_nodes, opts.sim.clone(), arrivals);
    cluster.run(opts.horizon);
    let ended_at = cluster.now();
    let records = cluster.records().to_vec();
    let (mut copies, mut updates) = (0, 0);
    for i in 0..opts.n_nodes {
        copies += cluster.store_stats(i).copies_created;
        updates += cluster.store_stats(i).updates;
    }
    EngineReport {
        engine: Engine::NoCoord,
        summary: summarize(&records, ended_at),
        messages: cluster.sim_stats().messages,
        messages_by_tag: tag_counts(cluster.sim_stats()),
        timeline: None,
        advancements: Vec::new(),
        dual_writes: 0,
        copies_created: copies,
        store_updates: updates,
        max_versions: 1,
        lost_updates: 0,
        compensations: 0,
        tombstones: 0,
        records,
        ended_at,
    }
}

/// Run the manual-versioning engine.
pub fn run_manual(schema: &Schema, arrivals: Vec<Arrival>, opts: &RunOpts) -> EngineReport {
    let mut cluster = ManualCluster::new(
        schema,
        opts.n_nodes,
        opts.sim.clone(),
        opts.manual.clone(),
        arrivals,
    );
    cluster.run_until(opts.horizon);
    let ended_at = cluster.now();
    let records = cluster.records().to_vec();
    let (mut copies, mut updates, mut maxv) = (0, 0, 0);
    for i in 0..opts.n_nodes {
        let s = cluster.store_stats(i);
        copies += s.copies_created;
        updates += s.updates;
        maxv = maxv.max(s.max_versions_of_any_item);
    }
    EngineReport {
        engine: Engine::Manual,
        summary: summarize(&records, ended_at),
        messages: cluster.sim_stats().messages,
        messages_by_tag: tag_counts(cluster.sim_stats()),
        timeline: Some(cluster.nominal_timeline()),
        advancements: Vec::new(),
        dual_writes: 0,
        copies_created: copies,
        store_updates: updates,
        max_versions: maxv,
        lost_updates: cluster.lost_updates(),
        compensations: 0,
        tombstones: 0,
        records,
        ended_at,
    }
}

/// Run `engine` over `(schema, arrivals)` with `opts`.
pub fn run_engine(
    engine: Engine,
    schema: &Schema,
    arrivals: Vec<Arrival>,
    opts: &RunOpts,
) -> EngineReport {
    match engine {
        Engine::ThreeV => run_three_v(schema, arrivals, opts),
        Engine::TwoPc => run_two_pc(schema, arrivals, opts),
        Engine::NoCoord => run_no_coord(schema, arrivals, opts),
        Engine::Manual => run_manual(schema, arrivals, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_analysis::TxnStatus;
    use threev_sim::SimDuration;
    use threev_workload::{SyntheticParams, SyntheticWorkload};

    #[test]
    fn all_engines_run_the_same_workload() {
        let w = SyntheticWorkload::new(SyntheticParams {
            n_nodes: 3,
            rate_tps: 800.0,
            duration: SimDuration::from_millis(300),
            ..SyntheticParams::default()
        });
        let (schema, arrivals) = w.generate();
        let opts = RunOpts::new(3, SimTime(5_000_000));
        for engine in Engine::ALL {
            let report = run_engine(engine, &schema, arrivals.clone(), &opts);
            assert_eq!(report.engine, engine);
            assert_eq!(report.records.len(), arrivals.len(), "{engine:?}");
            let committed = report
                .records
                .iter()
                .filter(|r| r.status == TxnStatus::Committed)
                .count();
            assert!(
                committed as f64 / arrivals.len() as f64 > 0.9,
                "{engine:?}: {committed}/{}",
                arrivals.len()
            );
            assert!(report.messages > 0);
            assert!(report.tps() > 0.0);
        }
    }
}
