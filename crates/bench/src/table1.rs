//! Scripted replay of the paper's example execution (Table 1, Figure 2).
//!
//! The scenario: three sites *p*, *q*, *s*; items `A`, `B` at `p`, `D`, `E`
//! at `q`, `F` at `s`. An update transaction `i` (root at `p`, version 1)
//! spawns `iq` to `q` (which spawns `iqp` back to `p`) and `is` to `s`,
//! racing a version advancement and a second update `j` (root at `q`,
//! version 2) that spawns `jp` to `p`. Reads `x` (at `p`) and `y` (at `q`)
//! run throughout at version 0.
//!
//! The replay choreographs the same *races* the paper highlights:
//!
//! * `j`'s descendant `jp` reaches `p` before `p`'s advancement notice —
//!   the arrival itself acts as the notification (§2.3, paper time 17);
//! * `i`'s descendant `iq` reaches `q` after `q` already advanced — it
//!   must dual-update `D` in versions 1 *and* 2, while `E` (no version-2
//!   copy) takes a single write (§2.3, paper times 13–15);
//! * `iqp` updates `B` in version 1 only, because `B` has no version-2
//!   copy — "the overhead of performing two updates … applies only when
//!   there is data contention" (§2.3, paper time 21).
//!
//! Event-by-event timings differ from the paper's illustrative clock (we
//! run on a microsecond virtual clock; the paper uses abstract ticks), but
//! the *orderings*, the counter values, and the version layouts of
//! Figure 2's four panels are reproduced and machine-checked.

use threev_core::cluster::{ClusterConfig, ThreeVCluster};
use threev_core::msg::Msg;
use threev_model::{Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnId, TxnKind, UpdateOp, VersionNo};
use threev_sim::{LatencyModel, SimConfig, SimDuration, SimTime, Trace};

/// Item `A` at site `p`.
pub const A: Key = Key(100);
/// Item `B` at site `p`.
pub const B: Key = Key(101);
/// Item `D` at site `q`.
pub const D: Key = Key(102);
/// Item `E` at site `q`.
pub const E: Key = Key(103);
/// Item `F` at site `s`.
pub const F: Key = Key(104);

const P: NodeId = NodeId(0);
const Q: NodeId = NodeId(1);
const S: NodeId = NodeId(2);

/// One Figure 2 panel: the version layout of every item at one instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Panel {
    /// Panel label (`start`, `after j`, `after stragglers`, `eventually`).
    pub label: &'static str,
    /// `(item, live versions)` for A, B, D, E, F in order.
    pub layouts: Vec<(Key, Vec<VersionNo>)>,
}

/// Everything the replay produces.
pub struct Table1Replay {
    /// The recorded execution trace (Table 1 analogue).
    pub trace: Trace,
    /// The four Figure 2 panels.
    pub panels: Vec<Panel>,
    /// Interesting counter values observed after all user transactions
    /// finished, before the advancement protocol ran: `(label, value)`.
    pub counters: Vec<(String, u64)>,
    /// Every node fully drained at the end of the run.
    pub quiescent: bool,
}

fn v(n: u32) -> VersionNo {
    VersionNo(n)
}

fn schema() -> Schema {
    Schema::new(vec![
        KeyDecl::counter(A, P, 0),
        KeyDecl::counter(B, P, 0),
        KeyDecl::counter(D, Q, 0),
        KeyDecl::counter(E, Q, 0),
        KeyDecl::counter(F, S, 0),
    ])
}

fn panel(cluster: &ThreeVCluster, label: &'static str) -> Panel {
    let items = [(A, P), (B, P), (D, Q), (E, Q), (F, S)];
    Panel {
        label,
        layouts: items
            .iter()
            .map(|(k, node)| {
                let layout = cluster
                    .node(node.0)
                    .store()
                    .layout(*k)
                    .expect("item exists");
                (*k, layout.into_iter().map(|(w, _)| w).collect())
            })
            .collect(),
    }
}

/// Run the scripted scenario.
pub fn run() -> Table1Replay {
    let cfg = ClusterConfig {
        n_nodes: 3,
        sim: SimConfig {
            latency: LatencyModel::Fixed(SimDuration::from_micros(2_000)),
            local_latency: SimDuration::from_micros(1),
            fifo: true,
            seed: 1,
            ..SimConfig::default()
        },
        protocol: Default::default(),
    };
    let mut cluster = ThreeVCluster::new(&schema(), cfg, Vec::new());
    cluster.enable_trace();
    let coord = cluster.coordinator_id();
    let client = cluster.client_id();

    // Transaction i: root at p updates A; children iq (D, E; spawns iqp
    // updating B back at p) and is (F).
    let i_plan = SubtxnPlan::new(P)
        .update(A, UpdateOp::Add(10))
        .child(
            SubtxnPlan::new(Q)
                .update(D, UpdateOp::Add(20))
                .update(E, UpdateOp::Add(30))
                .child(SubtxnPlan::new(P).update(B, UpdateOp::Add(40))),
        )
        .child(SubtxnPlan::new(S).update(F, UpdateOp::Add(50)));
    // Transaction j: root at q updates D; child jp updates A at p.
    let j_plan = SubtxnPlan::new(Q)
        .update(D, UpdateOp::Add(700))
        .child(SubtxnPlan::new(P).update(A, UpdateOp::Add(800)));

    let t = |us: u64| SimTime(us);
    let i_id = TxnId::new(1, P);
    let x_id = TxnId::new(2, P);
    let j_id = TxnId::new(3, Q);
    let y_id = TxnId::new(4, Q);
    let submit = |txn, kind, plan: &SubtxnPlan| Msg::Submit {
        txn,
        kind,
        plan: plan.clone(),
        client,
        fail_node: None,
    };

    let mut panels = Vec::new();
    panels.push(panel(&cluster, "start"));

    // t=200: i arrives at p; its children reach q and s at t=2200.
    cluster.inject_at(t(200), client, P, submit(i_id, TxnKind::Commuting, &i_plan));
    // t=400: read x at p (version 0).
    cluster.inject_at(
        t(400),
        client,
        P,
        submit(x_id, TxnKind::ReadOnly, &SubtxnPlan::new(P).read(A)),
    );
    // t=2000: q is notified of the advancement first.
    cluster.inject_at(t(2000), coord, Q, Msg::StartAdvancement { vu_new: v(2) });
    // t=2050: j arrives at freshly-advanced q -> version 2; jp reaches p at
    // t≈4050, before p's notice (t=4500).
    cluster.inject_at(
        t(2050),
        client,
        Q,
        submit(j_id, TxnKind::Commuting, &j_plan),
    );
    // t=2300: read y at q (still version 0).
    cluster.inject_at(
        t(2300),
        client,
        Q,
        submit(y_id, TxnKind::ReadOnly, &SubtxnPlan::new(Q).read(D)),
    );
    // t=3200: s is notified (after `is` executed at t=2200).
    cluster.inject_at(t(3200), coord, S, Msg::StartAdvancement { vu_new: v(2) });
    // t=4500: p's notice arrives — but jp (t≈4050) already advanced p.
    cluster.inject_at(t(4500), coord, P, Msg::StartAdvancement { vu_new: v(2) });

    // Panel 2: just after j executed at q (before the stragglers land).
    cluster.run_until(t(2100));
    panels.push(panel(&cluster, "after j (paper: after time 12)"));

    // Panel 3: after iq, is, jp, iqp all executed.
    cluster.run_until(t(4600));
    panels.push(panel(&cluster, "after stragglers (paper: after time 20)"));

    // Let completion notices drain; capture the counter state the
    // coordinator's phase 2/4 will verify.
    cluster.run_until(t(5_900));
    let mut counters = Vec::new();
    {
        let p = cluster.node(0);
        let q = cluster.node(1);
        let s = cluster.node(2);
        let mut push = |label: &str, val: u64| counters.push((label.to_string(), val));
        push("R1pp", p.counters().request(v(1), P));
        push("C1pp", p.counters().completion(v(1), P));
        push("R1pq", p.counters().request(v(1), Q));
        push("C1pq", q.counters().completion(v(1), P));
        push("R1ps", p.counters().request(v(1), S));
        push("C1ps", s.counters().completion(v(1), P));
        push("R1qp", q.counters().request(v(1), P));
        push("C1qp", p.counters().completion(v(1), Q));
        push("R2qq", q.counters().request(v(2), Q));
        push("C2qq", q.counters().completion(v(2), Q));
        push("R2qp", q.counters().request(v(2), P));
        push("C2qp", p.counters().completion(v(2), Q));
        push("R0pp", p.counters().request(v(0), P));
        push("C0pp", p.counters().completion(v(0), P));
        push("R0qq", q.counters().request(v(0), Q));
        push("C0qq", q.counters().completion(v(0), Q));
    }

    // "A coordinator can determine this by means of an asynchronous read of
    // the counters, and then inform each site" — run the real protocol.
    cluster.inject_at(t(6_000), client, coord, Msg::TriggerAdvancement);
    cluster.run(SimTime(60_000_000));
    panels.push(panel(&cluster, "eventually (paper: after time 28)"));

    let quiescent = cluster.all_quiescent();
    let trace = cluster.take_trace().expect("trace enabled");
    Table1Replay {
        trace,
        panels,
        counters,
        quiescent,
    }
}

impl Table1Replay {
    /// Machine-check every reproduced property; returns the first
    /// discrepancy as an error string.
    pub fn verify(&self) -> Result<(), String> {
        // --- Figure 2 panels -------------------------------------------
        let expect = [
            (
                "start",
                vec![
                    (A, vec![0]),
                    (B, vec![0]),
                    (D, vec![0]),
                    (E, vec![0]),
                    (F, vec![0]),
                ],
            ),
            (
                "after j",
                vec![
                    (A, vec![0, 1]),
                    (B, vec![0]),
                    (D, vec![0, 2]),
                    (E, vec![0]),
                    (F, vec![0]),
                ],
            ),
            (
                "after stragglers",
                vec![
                    (A, vec![0, 1, 2]),
                    (B, vec![0, 1]),
                    (D, vec![0, 1, 2]),
                    (E, vec![0, 1]),
                    (F, vec![0, 1]),
                ],
            ),
            (
                "eventually",
                vec![
                    (A, vec![1, 2]),
                    (B, vec![1]),
                    (D, vec![1, 2]),
                    (E, vec![1]),
                    (F, vec![1]),
                ],
            ),
        ];
        for (panel, (label, want)) in self.panels.iter().zip(expect.iter()) {
            for ((key, got), (wkey, wver)) in panel.layouts.iter().zip(want.iter()) {
                if key != wkey {
                    return Err(format!("panel {label}: key order mismatch"));
                }
                let want_v: Vec<VersionNo> = wver.iter().map(|&n| v(n)).collect();
                if got != &want_v {
                    return Err(format!(
                        "panel '{}' item {key}: got {got:?}, want {want_v:?}",
                        panel.label
                    ));
                }
            }
        }

        // --- Table 1 counter values ------------------------------------
        for (label, val) in &self.counters {
            if *val != 1 {
                return Err(format!("counter {label} = {val}, want 1"));
            }
        }
        // Pairs must balance (phase 2/4 preconditions).
        for pair in [
            ("R1pp", "C1pp"),
            ("R1pq", "C1pq"),
            ("R1ps", "C1ps"),
            ("R1qp", "C1qp"),
            ("R2qq", "C2qq"),
            ("R2qp", "C2qp"),
            ("R0pp", "C0pp"),
            ("R0qq", "C0qq"),
        ] {
            let get = |name: &str| {
                self.counters
                    .iter()
                    .find(|(l, _)| l == name)
                    .map(|(_, v)| *v)
            };
            if get(pair.0) != get(pair.1) {
                return Err(format!("counter pair {pair:?} unbalanced"));
            }
        }

        // --- Key trace lines (Table 1 events) --------------------------
        let must_contain = [
            "update tx t1@n0 arrives (version v1)",           // time 1
            "read tx t2@n0 arrives (version v0)",             // time 8
            "update tx t3@n1 arrives (version v2)",           // time 11 (j)
            "advances update version to v2 (notice arrives)", // q, time 9
            "advances update version to v2 (inferred from arriving subtx)", // p, time 17
            "update version already advanced to v2",          // p, time 19-20
            "read tx t4@n1 arrives (version v0)",             // y, time 16
            "t1@n0 is complete",                              // time 25
            "t3@n1 is complete",                              // time 26ish
            "advancement complete: vr=v1 vu=v2",
        ];
        for needle in must_contain {
            if !self.trace.contains(needle) {
                return Err(format!("trace missing: {needle}"));
            }
        }
        // Ordering: q's j (version 2) executes before iq's straggler
        // arrival, and jp's inferred advancement precedes p's notice.
        let pos = |needle: &str| {
            self.trace
                .position(needle)
                .ok_or_else(|| format!("trace missing: {needle}"))
        };
        if pos("update tx t3@n1 arrives")? > pos("subtx of t1@n0 arrives from n0 (version v1)")? {
            return Err("j should execute before the iq straggler arrives".into());
        }
        if pos("advances update version to v2 (inferred from arriving subtx)")?
            > pos("update version already advanced to v2")?
        {
            return Err("jp must advance p before the notice arrives".into());
        }

        // --- Cluster drained completely ----------------------------------
        if !self.quiescent {
            return Err("cluster did not drain".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_replay_verifies() {
        let replay = run();
        replay.verify().unwrap();
    }

    #[test]
    fn table1_final_values_reflect_both_transactions() {
        let replay = run();
        // The final panel's A(v2) must include i's and jp's adds; A(v1)
        // only i's. (Checked through the layout values in `run` itself via
        // verify; here we re-run and read the trace for dual writes.)
        assert!(replay
            .trace
            .contains("t1@n0 updates k102 version v1 (and newer copies)"));
    }
}
