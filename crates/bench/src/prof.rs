//! Harness-side profiling support: the injected wall clock and the
//! `BENCH_hotpath.json` rendering of a [`StageBreakdown`].
//!
//! The engine crate deliberately cannot name a clock
//! (`threev_core::node::ClockFn` is a plain `fn() -> u64` injected at
//! configuration time); this module supplies the monotonic nanosecond
//! clock the benches use, keeping every `Instant` outside the
//! deterministic core.

use std::sync::OnceLock;
use std::time::Instant;

use threev_core::node::{StageBreakdown, N_STAGES, STAGES};

use crate::report::{JsonObject, JsonValue};

/// Monotonic nanoseconds since the first call. A plain `fn` so it can be
/// passed as a `threev_core::node::ClockFn`.
pub fn mono_ns() -> u64 {
    static T0: OnceLock<Instant> = OnceLock::new();
    T0.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Render one aggregated breakdown: per-stage nanoseconds, call counts,
/// and share of the dispatch envelope, plus the unattributed remainder.
pub fn breakdown_json(b: &StageBreakdown) -> JsonObject {
    let total = b.total_ns().max(1);
    let mut obj = JsonObject::new();
    for s in STAGES.iter().take(N_STAGES - 1) {
        let ns = b.ns[*s as usize];
        obj = obj.field(
            s.name(),
            JsonObject::new()
                .field("ns", ns)
                .field("calls", b.calls[*s as usize])
                .field(
                    "share_pct",
                    JsonValue::Float(100.0 * ns as f64 / total as f64, 1),
                ),
        );
    }
    obj.field(
        "other",
        JsonObject::new().field("ns", b.other_ns()).field(
            "share_pct",
            JsonValue::Float(100.0 * b.other_ns() as f64 / total as f64, 1),
        ),
    )
    .field(
        "dispatch_total",
        JsonObject::new().field("ns", b.total_ns()).field(
            "calls",
            b.calls[threev_core::node::Stage::Dispatch as usize],
        ),
    )
}
