//! Experiment harness for the 3V reproduction.
//!
//! * [`engines`] — run any of the four engines (3V, Global-2PC,
//!   No-Coordination, Manual-Versioning) over a common workload and return
//!   a uniform [`engines::EngineReport`];
//! * [`table1`] — the scripted replay of the paper's Table 1 / Figure 2
//!   example execution at sites *p*, *q*, *s*;
//! * [`prof`] — the monotonic clock injected into the engine's stage
//!   profiler and the `BENCH_hotpath.json` breakdown rendering;
//! * [`report`] — the shared `BENCH_*.json` writer the probe benches use
//!   to leave their numbers at the repository root;
//! * the `exp_*` binaries in `src/bin/` regenerate every experiment row
//!   (see `EXPERIMENTS.md` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod engines;
pub mod prof;
pub mod report;
pub mod table1;
