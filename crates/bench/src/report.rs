//! Shared writer for the `BENCH_*.json` reports the probe benches leave
//! at the repository root.
//!
//! The workspace deliberately carries no serde; this module is the one
//! place the hand-rolled JSON formatting lives, so the probe benches
//! (`benches/batching.rs`, `benches/faults.rs`, `benches/recovery.rs`)
//! stay in lock-step on layout instead of each keeping its own copy of
//! the `format!` + `fs::write` boilerplate.

use std::fs;
use std::path::{Path, PathBuf};

/// A JSON value, restricted to what the bench reports need.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// Unsigned integer.
    UInt(u64),
    /// Float rendered with a fixed number of decimals.
    Float(f64, usize),
    /// Plain string (reports are ASCII; only `"` and `\` are escaped).
    Str(String),
    /// Nested object.
    Obj(JsonObject),
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v.into())
    }
}
impl From<u16> for JsonValue {
    fn from(v: u16) -> Self {
        JsonValue::UInt(v.into())
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<JsonObject> for JsonValue {
    fn from(v: JsonObject) -> Self {
        JsonValue::Obj(v)
    }
}

/// An insertion-ordered JSON object; keys render in the order
/// [`JsonObject::field`] added them.
#[derive(Clone, Debug, Default)]
pub struct JsonObject(Vec<(String, JsonValue)>);

impl JsonObject {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append `key: value` (builder style).
    pub fn field(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> Self {
        self.0.push((key.into(), value.into()));
        self
    }

    /// Render as pretty-printed JSON (two-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        if self.0.is_empty() {
            out.push_str("{}");
            return;
        }
        let pad = "  ".repeat(depth + 1);
        out.push_str("{\n");
        for (i, (key, value)) in self.0.iter().enumerate() {
            out.push_str(&pad);
            out.push('"');
            push_escaped(out, key);
            out.push_str("\": ");
            match value {
                JsonValue::UInt(v) => out.push_str(&v.to_string()),
                JsonValue::Float(v, decimals) => {
                    out.push_str(&format!("{v:.prec$}", prec = decimals))
                }
                JsonValue::Str(s) => {
                    out.push('"');
                    push_escaped(out, s);
                    out.push('"');
                }
                JsonValue::Obj(obj) => obj.render_into(out, depth + 1),
            }
            out.push_str(if i + 1 < self.0.len() { ",\n" } else { "\n" });
        }
        out.push_str(&"  ".repeat(depth));
        out.push('}');
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
}

/// Write `report` to `BENCH_<name>.json` at the repository root (resolved
/// relative to this crate, so it works from any working directory) and
/// return the path. Panics on I/O failure — a bench that cannot record
/// its numbers should fail loudly.
pub fn write_bench_report(name: &str, report: &JsonObject) -> PathBuf {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../BENCH_{name}.json"));
    fs::write(&path, report.render()).unwrap_or_else(|e| panic!("write BENCH_{name}.json: {e}"));
    println!("wrote {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_objects_with_stable_layout() {
        let obj = JsonObject::new()
            .field("bench", "demo")
            .field("n", 4u64)
            .field("rate", JsonValue::Float(1234.5678, 0))
            .field("speedup", JsonValue::Float(1.25, 3))
            .field(
                "inner",
                JsonObject::new()
                    .field("committed", 7u64)
                    .field("empty", JsonObject::new()),
            );
        let expected = "{\n  \"bench\": \"demo\",\n  \"n\": 4,\n  \"rate\": 1235,\n  \"speedup\": 1.250,\n  \"inner\": {\n    \"committed\": 7,\n    \"empty\": {}\n  }\n}\n";
        assert_eq!(obj.render(), expected);
    }

    #[test]
    fn escapes_quotes_and_backslashes() {
        let obj = JsonObject::new().field("k", "a \"b\" \\ c");
        assert!(obj.render().contains(r#""k": "a \"b\" \\ c""#));
    }
}
