//! A hand-rolled recursive-descent parser over the lexer's token stream,
//! just deep enough for flow-sensitive linting.
//!
//! It recovers the *shape* of every function body — blocks, `if`/`match`
//! arms, loops, and straight-line token runs — without building a full
//! expression AST. Rules then walk the shape with [`crate::flow`] and
//! pattern-match over the flat token runs exactly as the v1 rules did,
//! but per control-flow path instead of per 12-line window.
//!
//! Deliberate approximations (all conservative for the rules that consume
//! this tree):
//!
//! * Parenthesised and bracketed groups — argument lists, closures, array
//!   literals — are consumed flat into the enclosing [`Stmt::Leaf`]. Their
//!   tokens are still visited in source order; only branch structure
//!   *inside* them is lost.
//! * A `{` whose previous token is an identifier is taken as a struct
//!   literal / struct pattern and consumed flat (rustc bans ambiguous
//!   struct literals in `if`/`while`/`for`/`match` heads, which is what
//!   makes this heuristic sound where it matters).
//! * `let PAT = EXPR else { … };` is modelled as a one-armed, non-
//!   exhaustive [`Stmt::If`]: the divergent block is walked, and the
//!   binding-succeeded fallthrough path survives the merge.
//! * Parsing is total: any token stream — including fuzzer garbage —
//!   produces *some* tree, never a panic and never a hang (every loop
//!   advances the cursor; recursion is depth-capped and falls back to
//!   flat consumption).

use crate::lexer::{Lexed, Tok, TokKind};

/// Everything the parser recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item with a body, in source order (including fns nested
    /// inside other fns, `mod`s, and `impl`/`trait` blocks).
    pub fns: Vec<FnDef>,
}

/// One function definition.
#[derive(Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` self type this fn sits under, if any.
    pub self_ty: Option<String>,
    /// Line of the `fn` name token.
    pub line: u32,
    /// Line of the last token of the body (where fallthrough exits).
    pub end_line: u32,
    /// Defined inside `#[cfg(test)]` / `#[test]` code?
    pub in_test: bool,
    /// The body.
    pub body: Block,
}

/// A `{ … }` body: statements in source order.
#[derive(Debug, Default, Clone)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// One statement-level unit of a block.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// A straight-line token run (no branching at statement level).
    Leaf(Vec<Tok>),
    /// An `if`/`else if`/`else` chain. Each arm is `(head, body)`; heads
    /// are evaluated in order (so arm *n*'s body runs after heads
    /// `0..=n`). `has_else` distinguishes exhaustive chains from ones
    /// with a fallthrough path.
    If {
        arms: Vec<(Vec<Tok>, Block)>,
        has_else: bool,
    },
    /// A `match`: the scrutinee head plus one `(pattern, body)` per arm.
    /// Exhaustive by construction (rustc would reject it otherwise).
    Match {
        head: Vec<Tok>,
        arms: Vec<(Vec<Tok>, Block)>,
    },
    /// `loop`/`while`/`for`. `head` is empty exactly for bare `loop`
    /// (which never skips and exits only via `break`).
    Loop { head: Vec<Tok>, body: Block },
    /// A bare nested `{ … }` scope (always executes).
    Sub(Block),
}

/// Recursion cap: beyond this brace depth the parser consumes groups flat
/// instead of recursing, so pathological input cannot overflow the stack.
const MAX_DEPTH: usize = 64;

/// Head flavours, per the token that separates pattern from expression.
#[derive(Clone, Copy, PartialEq)]
enum Head {
    /// `if COND` / `while COND` / `match SCRUTINEE`: expression from the
    /// start, so the first depth-0 `{` is the body.
    Cond,
    /// `if let PAT = EXPR` / `while let …`: pattern until a depth-0 `=`.
    Let,
    /// `for PAT in EXPR`: pattern until a depth-0 `in`.
    For,
}

/// Parse a lexed file into function bodies.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let mut p = Parser {
        toks: &lexed.toks,
        i: 0,
    };
    let mut fns = Vec::new();
    p.items(None, &mut fns, 0);
    ParsedFile { fns }
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
}

impl Parser<'_> {
    fn cur(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn at(&self, s: &str) -> bool {
        self.cur().is_some_and(|t| t.text == s)
    }

    fn peek_is(&self, k: usize, s: &str) -> bool {
        self.toks.get(self.i + k).is_some_and(|t| t.text == s)
    }

    fn peek_ident(&self, k: usize) -> bool {
        self.toks
            .get(self.i + k)
            .is_some_and(|t| t.kind == TokKind::Ident)
    }

    /// Item scanner: collects `fn` bodies, tracking the `impl`/`trait`
    /// self type, until EOF or the `}` closing the current scope
    /// (consumed).
    fn items(&mut self, self_ty: Option<&str>, out: &mut Vec<FnDef>, depth: usize) {
        while let Some(t) = self.cur() {
            match t.text.as_str() {
                "}" => {
                    self.i += 1;
                    return;
                }
                "fn" if self.peek_ident(1) => self.fn_item(self_ty, out, depth),
                "impl" => {
                    let ty = self.impl_header();
                    if self.at("{") {
                        self.enter_items(ty.as_deref(), out, depth);
                    } else if self.at(";") {
                        self.i += 1;
                    }
                }
                "mod" if self.peek_ident(1) => {
                    self.i += 2;
                    self.skip_to_brace_or_semi();
                    if self.at("{") {
                        self.enter_items(None, out, depth);
                    } else if self.at(";") {
                        self.i += 1;
                    }
                }
                "trait" if self.peek_ident(1) => {
                    let name = self.toks[self.i + 1].text.clone();
                    self.i += 2;
                    self.skip_to_brace_or_semi();
                    if self.at("{") {
                        self.enter_items(Some(&name), out, depth);
                    } else if self.at(";") {
                        self.i += 1;
                    }
                }
                "{" => self.enter_items(self_ty, out, depth),
                _ => self.i += 1,
            }
        }
    }

    /// Recurse into a `{`-delimited item scope, flat-skipping past the
    /// recursion cap.
    fn enter_items(&mut self, self_ty: Option<&str>, out: &mut Vec<FnDef>, depth: usize) {
        if depth >= MAX_DEPTH {
            let mut sink = Vec::new();
            self.consume_group_into(&mut sink);
            return;
        }
        self.i += 1; // `{`
        self.items(self_ty, out, depth + 1);
    }

    /// After `mod name` / `trait name`: skip generics and bounds up to the
    /// body `{` or a terminating `;` (not consumed).
    fn skip_to_brace_or_semi(&mut self) {
        while let Some(t) = self.cur() {
            if t.text == "{" || t.text == ";" {
                return;
            }
            self.i += 1;
        }
    }

    /// `impl … {`: returns the self type — the last angle-depth-0 path
    /// ident before the body, with `for` restarting the search (so
    /// `impl Display for Finding` yields `Finding` and
    /// `impl Store<MemBackend>` yields `Store`).
    fn impl_header(&mut self) -> Option<String> {
        self.i += 1; // `impl`
        let mut ty: Option<String> = None;
        let mut angle: i32 = 0;
        let mut in_where = false;
        while let Some(t) = self.cur() {
            match t.text.as_str() {
                "{" | ";" if angle <= 0 => break,
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "for" if angle <= 0 => ty = None,
                "where" if angle <= 0 => in_where = true,
                "dyn" => {}
                _ if angle <= 0 && !in_where && t.kind == TokKind::Ident => {
                    ty = Some(t.text.clone());
                }
                _ => {}
            }
            self.i += 1;
        }
        ty
    }

    /// `fn name …`: skip the signature to the body `{` (or a bodiless
    /// `;`), then parse the body.
    fn fn_item(&mut self, self_ty: Option<&str>, out: &mut Vec<FnDef>, depth: usize) {
        let name_tok = self.toks[self.i + 1].clone();
        self.i += 2;
        let mut pd: i32 = 0;
        loop {
            let Some(t) = self.cur() else { return };
            match t.text.as_str() {
                "(" | "[" => pd += 1,
                ")" | "]" => pd -= 1,
                ";" if pd <= 0 => {
                    self.i += 1; // declaration without body (trait method)
                    return;
                }
                "{" if pd <= 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        let body = self.block(self_ty, out, depth + 1);
        let end_line = self
            .toks
            .get(self.i.saturating_sub(1))
            .map_or(name_tok.line, |t| t.line);
        out.push(FnDef {
            name: name_tok.text,
            self_ty: self_ty.map(str::to_string),
            line: name_tok.line,
            end_line,
            in_test: name_tok.in_test,
            body,
        });
    }

    /// Parse a `{ … }` body. Cursor must sit on the `{`; consumes through
    /// the matching `}`.
    fn block(&mut self, self_ty: Option<&str>, out: &mut Vec<FnDef>, depth: usize) -> Block {
        if depth >= MAX_DEPTH {
            let mut toks = Vec::new();
            self.consume_group_into(&mut toks);
            return Block {
                stmts: vec![Stmt::Leaf(toks)],
            };
        }
        self.i += 1; // `{`
        let mut stmts: Vec<Stmt> = Vec::new();
        let mut leaf: Vec<Tok> = Vec::new();
        while let Some(t) = self.cur().cloned() {
            match t.text.as_str() {
                "}" => {
                    self.i += 1;
                    break;
                }
                ";" => {
                    leaf.push(t);
                    self.i += 1;
                    flush(&mut leaf, &mut stmts);
                }
                "(" | "[" => self.consume_group_into(&mut leaf),
                "{" => {
                    if leaf.last().is_some_and(|p| p.kind == TokKind::Ident) {
                        // Struct literal (or `unsafe {` etc.): flat.
                        self.consume_group_into(&mut leaf);
                    } else {
                        flush(&mut leaf, &mut stmts);
                        stmts.push(Stmt::Sub(self.block(self_ty, out, depth + 1)));
                    }
                }
                "else" if self.peek_is(1, "{") => {
                    // `let PAT = EXPR else { … };` — one non-exhaustive arm
                    // so the binding-succeeded fallthrough survives.
                    flush(&mut leaf, &mut stmts);
                    self.i += 1;
                    let b = self.block(self_ty, out, depth + 1);
                    stmts.push(Stmt::If {
                        arms: vec![(Vec::new(), b)],
                        has_else: false,
                    });
                }
                "fn" if self.peek_ident(1) => {
                    // A nested fn is an item: its body belongs to the
                    // symbol table, not to this block's flow.
                    flush(&mut leaf, &mut stmts);
                    self.fn_item(self_ty, out, depth);
                }
                _ => {
                    if let Some(s) = self.control_stmt(self_ty, out, depth) {
                        flush(&mut leaf, &mut stmts);
                        stmts.push(s);
                    } else {
                        leaf.push(t);
                        self.i += 1;
                    }
                }
            }
        }
        flush(&mut leaf, &mut stmts);
        Block { stmts }
    }

    /// If the cursor sits on a control keyword, parse the whole construct
    /// and return it; otherwise `None` (cursor untouched).
    fn control_stmt(
        &mut self,
        self_ty: Option<&str>,
        out: &mut Vec<FnDef>,
        depth: usize,
    ) -> Option<Stmt> {
        match self.cur()?.text.as_str() {
            "if" => Some(self.if_stmt(self_ty, out, depth)),
            "match" => Some(self.match_stmt(self_ty, out, depth)),
            "while" | "for" => Some(self.loop_stmt(self_ty, out, depth)),
            "loop" if self.peek_is(1, "{") => {
                self.i += 1;
                Some(Stmt::Loop {
                    head: Vec::new(),
                    body: self.block(self_ty, out, depth + 1),
                })
            }
            _ => None,
        }
    }

    fn if_stmt(&mut self, self_ty: Option<&str>, out: &mut Vec<FnDef>, depth: usize) -> Stmt {
        let mut arms = Vec::new();
        let mut has_else = false;
        loop {
            self.i += 1; // `if`
            let mode = if self.at("let") {
                Head::Let
            } else {
                Head::Cond
            };
            let head = self.head(mode);
            if !self.at("{") {
                break; // malformed; salvage what we have
            }
            let body = self.block(self_ty, out, depth + 1);
            arms.push((head, body));
            if self.at("else") {
                self.i += 1;
                if self.at("if") {
                    continue;
                }
                if self.at("{") {
                    arms.push((Vec::new(), self.block(self_ty, out, depth + 1)));
                    has_else = true;
                }
            }
            break;
        }
        Stmt::If { arms, has_else }
    }

    fn loop_stmt(&mut self, self_ty: Option<&str>, out: &mut Vec<FnDef>, depth: usize) -> Stmt {
        let is_for = self.at("for");
        self.i += 1; // `while` / `for`
        let mode = if is_for {
            Head::For
        } else if self.at("let") {
            Head::Let
        } else {
            Head::Cond
        };
        let head = self.head(mode);
        if !self.at("{") {
            return Stmt::Leaf(head);
        }
        let body = self.block(self_ty, out, depth + 1);
        Stmt::Loop { head, body }
    }

    fn match_stmt(&mut self, self_ty: Option<&str>, out: &mut Vec<FnDef>, depth: usize) -> Stmt {
        self.i += 1; // `match`
        let head = self.head(Head::Cond);
        if !self.at("{") {
            return Stmt::Leaf(head);
        }
        self.i += 1; // `{`
        let mut arms = Vec::new();
        loop {
            match self.cur().map(|t| t.text.as_str()) {
                None => break,
                Some("}") => {
                    self.i += 1;
                    break;
                }
                _ => {}
            }
            // Pattern (incl. guards) up to the depth-0 `=>`.
            let mut pat = Vec::new();
            while let Some(t) = self.cur().cloned() {
                match t.text.as_str() {
                    "=>" | "}" => break,
                    "(" | "[" | "{" => self.consume_group_into(&mut pat),
                    _ => {
                        pat.push(t);
                        self.i += 1;
                    }
                }
            }
            if !self.at("=>") {
                continue; // hit `}` or EOF; outer loop terminates
            }
            self.i += 1; // `=>`
            let body = if self.at("{") {
                self.block(self_ty, out, depth + 1)
            } else if let Some(s) = self.control_stmt(self_ty, out, depth) {
                Block { stmts: vec![s] }
            } else {
                // Expression arm: flat until the depth-0 `,` or the
                // closing `}` of the match.
                let mut leaf = Vec::new();
                while let Some(t) = self.cur().cloned() {
                    match t.text.as_str() {
                        "," | "}" => break,
                        "(" | "[" | "{" => self.consume_group_into(&mut leaf),
                        _ => {
                            leaf.push(t);
                            self.i += 1;
                        }
                    }
                }
                Block {
                    stmts: vec![Stmt::Leaf(leaf)],
                }
            };
            if self.at(",") {
                self.i += 1;
            }
            arms.push((pat, body));
        }
        Stmt::Match { head, arms }
    }

    /// Collect a construct head up to (not including) its body `{`.
    ///
    /// rustc bans ambiguous struct literals in head expressions, so on the
    /// expression side the first depth-0 `{` *is* the body. On the pattern
    /// side (`let` before the `=`, `for` before the `in`) a depth-0 `{` is
    /// a struct pattern and is consumed flat.
    fn head(&mut self, mode: Head) -> Vec<Tok> {
        let mut head = Vec::new();
        let mut in_expr = mode == Head::Cond;
        while let Some(t) = self.cur().cloned() {
            match t.text.as_str() {
                "(" | "[" => {
                    self.consume_group_into(&mut head);
                    continue;
                }
                "=" if mode == Head::Let => in_expr = true,
                "in" if mode == Head::For => in_expr = true,
                "{" => {
                    if in_expr {
                        break; // body start
                    }
                    self.consume_group_into(&mut head); // struct pattern
                    continue;
                }
                ";" | "}" => break, // malformed guard
                _ => {}
            }
            head.push(t);
            self.i += 1;
        }
        head
    }

    /// Consume a balanced `(`/`[`/`{` group (single shared depth counter,
    /// so even mismatched garbage terminates) flat into `out`.
    fn consume_group_into(&mut self, out: &mut Vec<Tok>) {
        let mut depth: i32 = 0;
        while let Some(t) = self.cur().cloned() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            out.push(t);
            self.i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
}

fn flush(leaf: &mut Vec<Tok>, stmts: &mut Vec<Stmt>) {
    if !leaf.is_empty() {
        stmts.push(Stmt::Leaf(std::mem::take(leaf)));
    }
}

/// Visit every straight-line token run of a body — leaves, heads, and
/// match patterns — in source order. The workhorse for whole-body scans
/// (call extraction, panic-site harvesting) that don't need path
/// sensitivity.
pub fn for_each_token_run(block: &Block, f: &mut impl FnMut(&[Tok])) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Leaf(toks) => f(toks),
            Stmt::Sub(b) => for_each_token_run(b, f),
            Stmt::If { arms, .. } => {
                for (head, body) in arms {
                    f(head);
                    for_each_token_run(body, f);
                }
            }
            Stmt::Match { head, arms } => {
                f(head);
                for (pat, body) in arms {
                    f(pat);
                    for_each_token_run(body, f);
                }
            }
            Stmt::Loop { head, body } => {
                f(head);
                for_each_token_run(body, f);
            }
        }
    }
}
