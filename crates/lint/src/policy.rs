//! Per-crate policy table: which rule families apply to which crate.
//!
//! The split follows DESIGN.md: everything that executes inside the
//! deterministic simulation (and therefore inside replay) gets the full
//! rule set; the threaded runtime, benches, and the linter itself only
//! promise to stay `unsafe`-free.

/// Rule families enabled for one crate.
#[derive(Debug, Clone, Copy)]
pub struct CratePolicy {
    /// Crate directory name under `crates/`.
    pub name: &'static str,
    /// `determinism` + `counter-monotonicity` rules apply.
    pub deterministic: bool,
    /// `panic-hygiene` applies.
    pub panic_hygiene: bool,
    /// `wal-hook-coverage` applies (core node engine only).
    pub wal_hooks: bool,
    /// `unsafe-forbid` applies.
    pub forbid_unsafe: bool,
}

/// The policy table. A crate directory not listed here is linted with
/// [`DEFAULT_POLICY`] (unsafe-forbid only), so adding a crate to the
/// workspace fails safe rather than silently unlinted.
pub const POLICIES: &[CratePolicy] = &[
    CratePolicy {
        name: "model",
        deterministic: true,
        panic_hygiene: true,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    CratePolicy {
        name: "storage",
        deterministic: true,
        panic_hygiene: true,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    CratePolicy {
        name: "core",
        deterministic: true,
        panic_hygiene: true,
        wal_hooks: true,
        forbid_unsafe: true,
    },
    CratePolicy {
        name: "sim",
        deterministic: true,
        panic_hygiene: true,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    CratePolicy {
        name: "durability",
        deterministic: true,
        panic_hygiene: true,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    CratePolicy {
        name: "baselines",
        deterministic: true,
        panic_hygiene: true,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    // Workload generators feed the deterministic simulator: the same seed
    // must produce the same arrival stream on every run, so zipf/Poisson
    // sampling lives on seeded RNGs and ordered maps, and a generator
    // panic would kill a whole experiment sweep.
    CratePolicy {
        name: "workload",
        deterministic: true,
        panic_hygiene: true,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    // The model checker replays schedules, so its exploration must be as
    // deterministic as the kernel it drives; its library code also keeps
    // panic hygiene (the CLI front-end is allowed to bail on bad input via
    // explicit lint-allow escapes where needed).
    CratePolicy {
        name: "check",
        deterministic: true,
        panic_hygiene: true,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    // The sharded cluster's DES shuttle and router run inside replay
    // (cross-partition schedules are part of the determinism contract);
    // its threaded helper is thin enough to hold to the same bar.
    CratePolicy {
        name: "shard",
        deterministic: true,
        panic_hygiene: true,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    // The network front end hosts the deterministic engine but is itself
    // wall-clock territory (socket timeouts, thread scheduling, Instant
    // latency measurement), so the determinism rules do not apply. Panic
    // hygiene is still mandatory: a malformed frame or a queue race must
    // surface as a typed error on the wire, never unwind a worker thread.
    CratePolicy {
        name: "server",
        deterministic: false,
        panic_hygiene: true,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    // Non-deterministic tier: threaded runtime, bench tooling, and the
    // linter itself. Wall clocks, HashMaps, and unwraps are fine here.
    CratePolicy {
        name: "runtime",
        deterministic: false,
        panic_hygiene: false,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    // The auditor is an *oracle*: the serializability check (Thm 4.1) and
    // the staleness tracker run inside replay-sensitive test gates, so
    // their iteration order and failure mode are part of the determinism
    // contract — a HashMap in the auditor can reorder violation reports
    // across runs, and an unwrap converts "audit found a bug" into "the
    // audit crashed". Full deterministic tier since PR 9.
    CratePolicy {
        name: "analysis",
        deterministic: true,
        panic_hygiene: true,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    CratePolicy {
        name: "bench",
        deterministic: false,
        panic_hygiene: false,
        wal_hooks: false,
        forbid_unsafe: true,
    },
    CratePolicy {
        name: "lint",
        deterministic: false,
        panic_hygiene: false,
        wal_hooks: false,
        forbid_unsafe: true,
    },
];

/// Fallback for crates missing from [`POLICIES`].
pub const DEFAULT_POLICY: CratePolicy = CratePolicy {
    name: "<unlisted>",
    deterministic: false,
    panic_hygiene: false,
    wal_hooks: false,
    forbid_unsafe: true,
};

/// Look up the policy for a crate directory name.
pub fn policy_for(crate_name: &str) -> CratePolicy {
    POLICIES
        .iter()
        .copied()
        .find(|p| p.name == crate_name)
        .unwrap_or(DEFAULT_POLICY)
}
