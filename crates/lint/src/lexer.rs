//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! Regex-over-source is too fragile for this job: `HashMap` inside a doc
//! comment, a string literal, or a `#[cfg(test)]` module must not fire, and
//! `// lint-allow(rule): reason` escape hatches need structured parsing.
//! This lexer therefore understands:
//!
//! * line comments (harvesting `lint-allow` directives), nested block
//!   comments, and doc comments;
//! * string literals (plain, raw `r#"…"#`, byte, byte-raw) and char
//!   literals vs. lifetimes;
//! * identifiers, a small set of multi-char operators (`-=`, `::`, `==`,
//!   `=>`, `->`, `..`), and single-char punctuation;
//! * which tokens live inside test-only code: items annotated
//!   `#[cfg(test)]` / `#[test]` (any attribute whose token stream contains
//!   the identifier `test`), tracked through arbitrary nesting.
//!
//! It does **not** build an AST; rules pattern-match over the flat token
//! stream with line numbers, which is exactly the granularity a
//! `file:line` diagnostic needs.

use std::fmt;

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token text (for punctuation, the operator itself, e.g. `-=`).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Is this token inside test-only code (`#[cfg(test)]`/`#[test]` item)?
    pub in_test: bool,
    /// Token class.
    pub kind: TokKind,
}

/// Coarse token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Operator / punctuation.
    Punct,
    /// Numeric, string, char, or byte literal (text not preserved for
    /// strings — rules never match inside literals).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// A parsed `lint-allow` escape hatch.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule being suppressed (empty when malformed).
    pub rule: String,
    /// The line the comment starts on.
    pub line: u32,
    /// Last line of the contiguous line-comment run this allow belongs to
    /// (multi-line reasoned comments anchor the window at their end). A
    /// diagnostic on line `L` is covered when
    /// `line <= L <= anchor + ALLOW_WINDOW`.
    pub anchor: u32,
    /// Human reason after the colon. Required: a blanket suppression with
    /// no reason is itself a lint error.
    pub reason: String,
    /// Syntactically well-formed (`lint-allow(rule-id): reason`)?
    pub well_formed: bool,
}

/// How many lines below an allow-comment's last line it still covers. Five
/// lines absorbs a rustfmt-wrapped call chain or a tight mutation group
/// (crash erasure touches five fields) without letting one comment blanket
/// a whole function.
pub const ALLOW_WINDOW: u32 = 5;

/// Lexer output: the token stream plus every allow directive found.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// `lint-allow` directives in source order.
    pub allows: Vec<Allow>,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.text, self.line)
    }
}

/// Lex `src` into tokens and allow-directives.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        comment_lines: Vec::new(),
        out: Lexed::default(),
    };
    lx.run();
    mark_test_regions(&mut lx.out.toks);
    // Anchor each allow at the last line of its contiguous comment run, so
    // a multi-line reasoned comment doesn't eat its own coverage window.
    let comment_lines: std::collections::BTreeSet<u32> = lx.comment_lines.iter().copied().collect();
    for allow in &mut lx.out.allows {
        while comment_lines.contains(&(allow.anchor + 1)) {
            allow.anchor += 1;
        }
    }
    lx.out
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Lines holding `//` comments, for anchoring allow windows at the end
    /// of a multi-line reasoned comment.
    comment_lines: Vec<u32>,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, text: impl Into<String>, kind: TokKind, line: u32) {
        self.out.toks.push(Tok {
            text: text.into(),
            line,
            in_test: false,
            kind,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_lit(),
                'r' | 'b' if self.raw_or_byte_string() => {}
                '\'' => self.char_or_lifetime(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_whitespace() => {
                    self.bump();
                }
                _ => self.punct(),
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comment_lines.push(line);
        parse_allow(&text, line, &mut self.out.allows);
    }

    fn block_comment(&mut self) {
        // Nested per Rust rules.
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    fn string_lit(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push("\"…\"", TokKind::Literal, line);
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns `false`
    /// when the leading `r`/`b` is just an identifier start.
    fn raw_or_byte_string(&mut self) -> bool {
        let c0 = match self.peek(0) {
            Some(c) => c,
            None => return false,
        };
        // Figure out the candidate prefix.
        let (skip, next) = match (c0, self.peek(1)) {
            ('r', Some('"')) | ('r', Some('#')) => (1, self.peek(1)),
            ('b', Some('"')) | ('b', Some('\'')) => (1, self.peek(1)),
            ('b', Some('r')) if matches!(self.peek(2), Some('"') | Some('#')) => (2, self.peek(2)),
            _ => return false,
        };
        let line = self.line;
        match next {
            Some('\'') => {
                // byte char b'x'
                for _ in 0..skip {
                    self.bump();
                }
                self.bump(); // '
                if self.peek(0) == Some('\\') {
                    self.bump();
                }
                self.bump(); // the byte
                self.bump(); // closing '
                self.push("b'…'", TokKind::Literal, line);
                true
            }
            Some('"') if skip == 1 && c0 == 'b' => {
                self.bump();
                self.string_lit();
                true
            }
            Some('"') | Some('#') => {
                // raw string, count hashes
                for _ in 0..skip {
                    self.bump();
                }
                let mut hashes = 0usize;
                while self.peek(0) == Some('#') {
                    hashes += 1;
                    self.bump();
                }
                if self.peek(0) != Some('"') {
                    // `r#foo` raw identifier — emit ident without prefix.
                    self.ident();
                    return true;
                }
                self.bump(); // opening quote
                'outer: while let Some(c) = self.bump() {
                    if c == '"' {
                        let mut seen = 0usize;
                        while seen < hashes {
                            if self.peek(0) == Some('#') {
                                self.bump();
                                seen += 1;
                            } else {
                                continue 'outer;
                            }
                        }
                        break;
                    }
                }
                self.push("r\"…\"", TokKind::Literal, line);
                true
            }
            _ => false,
        }
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // 'a' / '\n' are char literals; 'a (no closing quote soon) is a
        // lifetime. Disambiguate: escape → char; else closing quote right
        // after one char → char; else lifetime.
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        if is_char {
            self.bump(); // '
            if self.peek(0) == Some('\\') {
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
            self.bump(); // closing '
            self.push("'…'", TokKind::Literal, line);
        } else {
            self.bump(); // '
            let mut name = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(name, TokKind::Lifetime, line);
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(text, TokKind::Ident, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Good enough for linting: swallow digits, underscores, hex
            // letters, the type suffix, and float dots/exponents.
            let float_dot = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if c.is_alphanumeric() || c == '_' || float_dot {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(text, TokKind::Literal, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let c = match self.bump() {
            Some(c) => c,
            None => return,
        };
        let two = |lx: &Lexer| lx.peek(0);
        let op: String = match (c, two(self)) {
            ('-', Some('='))
            | ('+', Some('='))
            | ('*', Some('='))
            | ('/', Some('='))
            | ('%', Some('='))
            | ('^', Some('='))
            | ('&', Some('='))
            | ('|', Some('='))
            | ('=', Some('='))
            | ('!', Some('='))
            | ('<', Some('='))
            | ('>', Some('=')) => {
                let n = self.bump().unwrap_or('=');
                format!("{c}{n}")
            }
            (':', Some(':')) | ('&', Some('&')) | ('|', Some('|')) | ('.', Some('.')) => {
                let n = self.bump().unwrap_or(c);
                format!("{c}{n}")
            }
            ('=', Some('>')) | ('-', Some('>')) => {
                let n = self.bump().unwrap_or('>');
                format!("{c}{n}")
            }
            ('<', Some('<')) | ('>', Some('>')) => {
                let n = self.bump().unwrap_or(c);
                // `<<=` / `>>=`
                if self.peek(0) == Some('=') {
                    let e = self.bump().unwrap_or('=');
                    format!("{c}{n}{e}")
                } else {
                    format!("{c}{n}")
                }
            }
            _ => c.to_string(),
        };
        self.push(op, TokKind::Punct, line);
    }
}

/// Parse a `lint-allow(rule): reason` directive out of one line comment.
fn parse_allow(comment: &str, line: u32, out: &mut Vec<Allow>) {
    let body = comment.trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix("lint-allow") else {
        return;
    };
    // Well-formed: `(rule-id): reason` with non-empty rule and reason.
    let mut rule = String::new();
    let mut reason = String::new();
    let mut well_formed = false;
    if let Some(after_paren) = rest.trim_start().strip_prefix('(') {
        if let Some(close) = after_paren.find(')') {
            rule = after_paren[..close].trim().to_string();
            let tail = after_paren[close + 1..].trim_start();
            if let Some(r) = tail.strip_prefix(':') {
                reason = r.trim().to_string();
                well_formed = !rule.is_empty() && !reason.is_empty();
            }
        }
    }
    out.push(Allow {
        rule,
        line,
        anchor: line,
        reason,
        well_formed,
    });
}

/// Second pass: flag every token that lives inside a test-only item. An
/// item is test-only when any attribute in front of it contains the
/// identifier `test` (`#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`).
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0usize;
    let mut brace_depth = 0i32;
    // Brace depths at which a test region opened; inside any → test code.
    let mut test_stack: Vec<i32> = Vec::new();
    // An attr with `test` was seen; waiting for the item's `{` or `;`.
    let mut pending_test = false;
    // Bracket/paren nesting since the pending attr (a `;` inside `[u8; 4]`
    // or `fn(a: T)` must not terminate the pending item).
    let mut pending_nest = 0i32;

    while i < toks.len() {
        let is_attr_start = toks[i].text == "#"
            && toks
                .get(i + 1)
                .is_some_and(|t| t.text == "[" || t.text == "!");
        if is_attr_start {
            // Consume `#` `[` … `]` (or `#![…]`), scanning for `test`.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.text == "!") {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.text == "[") {
                let mut depth = 0i32;
                let mut has_test = false;
                let start = j;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "test" if toks[j].kind == TokKind::Ident => has_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                // Attribute tokens inherit the current region's flag.
                let in_test = !test_stack.is_empty();
                let end = j.min(toks.len() - 1);
                for t in toks[i..=end].iter_mut() {
                    t.in_test = in_test;
                }
                if has_test {
                    pending_test = true;
                    pending_nest = 0;
                }
                let _ = start;
                i = j + 1;
                continue;
            }
        }

        let t = &mut toks[i];
        t.in_test = !test_stack.is_empty() || pending_test;
        match t.text.as_str() {
            "{" => {
                brace_depth += 1;
                if pending_test {
                    test_stack.push(brace_depth);
                    pending_test = false;
                }
            }
            "}" => {
                if test_stack.last() == Some(&brace_depth) {
                    test_stack.pop();
                }
                brace_depth -= 1;
            }
            "(" | "[" if pending_test => pending_nest += 1,
            ")" | "]" if pending_test => pending_nest -= 1,
            ";" if pending_test && pending_nest == 0 => {
                // Declaration-only item (e.g. `#[cfg(test)] mod tests;`):
                // the region is just this declaration.
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<(String, bool)> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text, t.in_test))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* nested */ block */
            let s = "HashMap";
            let r = r#"HashMap "quoted" inside"#;
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|(t, _)| t == "HashMap").count(),
            1,
            "only the real use survives: {ids:?}"
        );
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = r#"
            fn prod() { HashMap::new(); }
            #[cfg(test)]
            mod tests {
                fn t() { HashMap::new(); }
            }
            fn prod2() { HashMap::new(); }
        "#;
        let maps: Vec<bool> = lex(src)
            .toks
            .into_iter()
            .filter(|t| t.text == "HashMap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(maps, vec![false, true, false]);
    }

    #[test]
    fn test_attr_on_fn_is_marked() {
        let src = r#"
            #[test]
            fn unit() { foo.unwrap(); }
            fn prod(x: Option<u8>) { x.unwrap(); }
        "#;
        let unwraps: Vec<bool> = lex(src)
            .toks
            .into_iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }").toks;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "'…'"));
    }

    #[test]
    fn allow_directives_parse() {
        let src = "// lint-allow(determinism): stats map never iterated\nlet x = 1; // lint-allow: blanket\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert!(lexed.allows[0].well_formed);
        assert_eq!(lexed.allows[0].rule, "determinism");
        assert!(!lexed.allows[1].well_formed);
    }

    #[test]
    fn compound_assign_lexes_as_one_token() {
        let toks = lex("a -= 1; b == 2; c = 3;").toks;
        let ops: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ops.contains(&"-="));
        assert!(ops.contains(&"=="));
        assert!(ops.contains(&"="));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "line1\nline2 HashMap\n\nline4 unwrap";
        let toks = lex(src).toks;
        let hm = toks.iter().find(|t| t.text == "HashMap").map(|t| t.line);
        let uw = toks.iter().find(|t| t.text == "unwrap").map(|t| t.line);
        assert_eq!(hm, Some(2));
        assert_eq!(uw, Some(4));
    }
}
