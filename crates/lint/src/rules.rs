//! The rule families. Per-file rules pattern-match over the lexed token
//! stream; the protocol rules (`wal-hook-coverage`, `counter-balance`,
//! `lock-discipline`, transitive `panic-hygiene`) are path analyses over
//! the parsed bodies ([`crate::parser`]) driven by the branch-sensitive
//! walker ([`crate::flow`]) and the workspace call graph
//! ([`crate::callgraph`]). See DESIGN.md §7 for the rationale table
//! mapping each rule to the paper section whose proof it protects.

use std::collections::BTreeSet;

use crate::callgraph::{call_at, CallSite};
use crate::flow::Analysis;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::policy::CratePolicy;
use crate::Finding;

/// Context for linting one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, e.g. `crates/core/src/counters.rs`.
    pub rel_path: &'a str,
    /// The crate's policy row.
    pub policy: &'a CratePolicy,
    /// Lexed source.
    pub lexed: &'a Lexed,
}

impl FileCtx<'_> {
    fn is(&self, suffix: &str) -> bool {
        self.rel_path.ends_with(suffix)
    }

    fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }

    fn finding(&self, rule: &'static str, line: u32, msg: String) -> Finding {
        Finding {
            rule,
            file: self.rel_path.to_string(),
            line,
            msg,
        }
    }
}

/// Is this file inside the core node engine (the scope of the protocol
/// flow rules)?
pub fn node_engine_scope(policy: &CratePolicy, rel_path: &str) -> bool {
    policy.wal_hooks && rel_path.contains("/src/node/")
}

/// Identifiers whose presence in non-test deterministic code breaks
/// bit-identical replay. `HashMap`/`HashSet` randomize iteration order
/// across processes (std's SipHash keys are per-process), the clock types
/// leak wall time into virtual time, and `RandomState`/`DefaultHasher` are
/// the raw ingredients of both.
const NONDETERMINISTIC_IDENTS: &[(&str, &str)] = &[
    ("HashMap", "iteration order is process-random; use BTreeMap"),
    ("HashSet", "iteration order is process-random; use BTreeSet"),
    ("RandomState", "per-process random hasher state"),
    ("DefaultHasher", "per-process random hasher state"),
    (
        "Instant",
        "wall-clock time in deterministic code; use SimTime",
    ),
    (
        "SystemTime",
        "wall-clock time in deterministic code; use SimTime",
    ),
    ("thread_rng", "unseeded RNG; use SmallRng::seed_from_u64"),
    ("from_entropy", "unseeded RNG; use SmallRng::seed_from_u64"),
];

/// Rule `determinism`: no order-random collections, wall clocks, sleeps, or
/// unseeded RNGs in deterministic crates (paper §2.2/§4.3: the stable-
/// property argument and our replay tests need bit-identical schedules).
pub fn determinism(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.policy.deterministic {
        return;
    }
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if let Some((_, why)) = NONDETERMINISTIC_IDENTS.iter().find(|(id, _)| *id == t.text) {
            out.push(ctx.finding(
                "determinism",
                t.line,
                format!("`{}` in deterministic crate: {}", t.text, why),
            ));
        }
        // `thread::sleep` — flag `sleep` only as a path segment of `thread`
        // so a domain method named `sleep` elsewhere would not false-fire.
        if t.text == "sleep" && i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "thread" {
            out.push(
                ctx.finding(
                    "determinism",
                    t.line,
                    "`thread::sleep` in deterministic crate: wall-clock delays break replay; \
                 schedule virtual-time timers instead"
                        .to_string(),
                ),
            );
        }
    }
}

/// Call sites allowed to move the `R`/`C` counters. Everything else must go
/// through these files (which pair every increment with its WAL record).
const COUNTER_CALLSITE_ALLOWLIST: &[&str] = &[
    "crates/core/src/counters.rs",
    "crates/core/src/node/exec.rs",
    "crates/core/src/node/gc.rs",
];

/// Method-name prefixes that would make the counter API non-monotone.
const COUNTER_FORBIDDEN_FN_PREFIXES: &[&str] = &["dec", "reset", "sub"];
const COUNTER_FORBIDDEN_FNS: &[&str] = &["set_request", "set_completion", "clear", "remove"];
/// Fields of the counter structs that must stay private (field privacy is
/// what makes the call-site scan sound: no `pub` field, no back door).
const COUNTER_PRIVATE_FIELDS: &[&str] = &["versions", "requests_to", "completions_from"];

/// Rule `counter-monotonicity` (paper §2.2, §4.3): `R(v)pq`/`C(v)pq` are
/// increment-only and mutated only through `crates/core/src/counters.rs`.
/// The termination-detection proof (two identical balanced rounds) is a
/// stable-property argument and collapses if any site can decrement,
/// reset, or bypass the table.
pub fn counter_monotonicity(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.policy.deterministic {
        return; // counters only exist in protocol code
    }
    let toks = ctx.toks();
    let in_counters = ctx.is("crates/core/src/counters.rs");
    let allowed_callsite = COUNTER_CALLSITE_ALLOWLIST.iter().any(|f| ctx.is(f));

    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        // (a) increments only from sanctioned files.
        if !allowed_callsite
            && t.kind == TokKind::Ident
            && (t.text == "inc_request" || t.text == "inc_completion")
            && i >= 1
            && toks[i - 1].text == "."
        {
            out.push(ctx.finding(
                "counter-monotonicity",
                t.line,
                format!(
                    "`{}` called outside the sanctioned counter call sites \
                     (crates/core/src/node/{{exec,gc}}.rs); new mutation sites must pair \
                     the increment with its WAL record there",
                    t.text
                ),
            ));
        }
        // (b) no struct-literal construction of the table outside counters.rs
        // (a literal would bypass the increment-only API).
        if !in_counters
            && t.kind == TokKind::Ident
            && t.text == "CounterTable"
            && toks.get(i + 1).is_some_and(|n| n.text == "{")
            // Exclude type positions (`-> &CounterTable {`, `impl CounterTable {`):
            // only a value-position `CounterTable { … }` constructs the struct.
            && !(i >= 1
                && matches!(
                    toks[i - 1].text.as_str(),
                    "&" | "->" | ":" | "<" | "impl" | "dyn" | "for" | "as"
                ))
        {
            out.push(
                ctx.finding(
                    "counter-monotonicity",
                    t.line,
                    "`CounterTable { … }` struct literal outside counters.rs bypasses the \
                 increment-only API"
                        .to_string(),
                ),
            );
        }
        if in_counters {
            // (c) the implementation itself must stay increment-only.
            if t.text == "-=" {
                out.push(
                    ctx.finding(
                        "counter-monotonicity",
                        t.line,
                        "decrement inside counters.rs: R/C counters are increment-only \
                     (paper §2.2 stable-property argument)"
                            .to_string(),
                    ),
                );
            }
            if t.kind == TokKind::Ident && t.text == "fn" {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    let bad = COUNTER_FORBIDDEN_FNS.contains(&name.text.as_str())
                        || COUNTER_FORBIDDEN_FN_PREFIXES
                            .iter()
                            .any(|p| name.text.starts_with(p));
                    if bad {
                        out.push(ctx.finding(
                            "counter-monotonicity",
                            name.line,
                            format!(
                                "`fn {}` would give the counter API a non-monotone \
                                 operation; only increments, snapshots, and whole-version \
                                 GC are admissible",
                                name.text
                            ),
                        ));
                    }
                }
            }
            // (d) field privacy: a `pub` counter field reopens the back
            // door. Only map-typed fields are live state — the snapshot
            // structs expose the same names as immutable `Vec` copies.
            if t.kind == TokKind::Ident
                && t.text == "pub"
                && toks.get(i + 1).is_some_and(|n| {
                    COUNTER_PRIVATE_FIELDS.contains(&n.text.as_str())
                        && toks.get(i + 2).is_some_and(|c| c.text == ":")
                })
                && toks[i + 3..]
                    .iter()
                    .take_while(|ty| ty.text != ",")
                    .any(|ty| ty.text == "BTreeMap" || ty.text == "HashMap")
            {
                out.push(ctx.finding(
                    "counter-monotonicity",
                    t.line,
                    format!(
                        "counter field `{}` must stay private; the call-site scan is \
                         only sound with field privacy",
                        toks[i + 1].text
                    ),
                ));
            }
        }
    }
}

/// Durable-state mutations: `(receiver, method)` pairs that recovery
/// replay must see in the WAL, so a hook must *precede* them on every
/// control path ([`HookFlow`]).
const WAL_MUTATING_CALLS: &[(&str, &str)] = &[
    ("counters", "inc_request"),
    ("counters", "inc_completion"),
    ("counters", "gc"),
    ("store", "update"),
    ("store", "rollback"),
    ("store", "gc"),
    ("locks", "acquire"),
    ("locks", "release_all"),
];

/// Durable fields whose direct reassignment must likewise be logged.
const WAL_MUTATING_ASSIGNS: &[&str] = &["vu", "vr", "store", "counters", "locks"];

/// Recognize a durable-state mutation at `toks[i]`; returns `(line, what)`.
fn mutation_at(toks: &[Tok], i: usize) -> Option<(u32, String)> {
    let t = &toks[i];
    if t.in_test || t.kind != TokKind::Ident {
        return None;
    }
    // `<recv> . <method> (`
    if toks.get(i + 1).is_some_and(|d| d.text == ".")
        && toks.get(i + 3).is_some_and(|p| p.text == "(")
    {
        let m = toks.get(i + 2)?;
        if WAL_MUTATING_CALLS
            .iter()
            .any(|(r, f)| *r == t.text && *f == m.text)
        {
            return Some((m.line, format!("`{}.{}(…)`", t.text, m.text)));
        }
    }
    // `self . <field> =` (but not `==`: the lexer folds `==` into one token)
    if t.text == "self"
        && toks.get(i + 1).is_some_and(|d| d.text == ".")
        && toks.get(i + 2).is_some_and(|f| {
            f.kind == TokKind::Ident && WAL_MUTATING_ASSIGNS.contains(&f.text.as_str())
        })
        && toks.get(i + 3).is_some_and(|e| e.text == "=")
    {
        let f = &toks[i + 2];
        return Some((f.line, format!("`self.{} = …`", f.text)));
    }
    None
}

/// Flow analysis behind rule `wal-hook-coverage` v2.
///
/// State is one bool per path: "has a WAL hook (`wal(…)` call or
/// `wal_enabled()` gate) already executed?". The join is AND — a mutation
/// is only covered when *every* path reaching it saw a hook first, which
/// is the write-ahead ordering recovery replay depends on (a hook in a
/// sibling branch that never executes no longer counts, and distance in
/// lines no longer matters). `wal_enabled()` counts as a hook because a
/// `false` gate means durability is off and there is no log to replay —
/// the mutation is consciously unjournaled on that configuration.
///
/// Besides in-function coverage the analysis records every call site with
/// its at-site hook state; [`crate::lint_files`] uses those to credit
/// helpers that are only ever invoked from already-covered contexts
/// (coverage via *every* call-graph path).
pub struct HookFlow {
    /// Record mutations? (node-engine files only; call sites are recorded
    /// everywhere so cross-file coverage can be resolved.)
    active: bool,
    seen: BTreeSet<u32>,
    /// Uncovered mutations: `(line, description)`.
    pub uncovered: Vec<(u32, String)>,
    /// Every call site with its all-paths hook state.
    pub calls: Vec<(CallSite, bool)>,
}

impl HookFlow {
    pub fn new(active: bool) -> Self {
        HookFlow {
            active,
            seen: BTreeSet::new(),
            uncovered: Vec::new(),
            calls: Vec::new(),
        }
    }
}

impl Analysis for HookFlow {
    type State = bool;

    fn merge(&mut self, a: &mut bool, b: &bool) {
        *a = *a && *b;
    }

    fn token(&mut self, toks: &[Tok], i: usize, st: &mut bool) {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && (t.text == "wal" || t.text == "wal_enabled")
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            *st = true;
        }
        if let Some(site) = call_at(toks, i) {
            self.calls.push((site, *st));
        }
        if !self.active || *st {
            return;
        }
        if let Some((line, what)) = mutation_at(toks, i) {
            if self.seen.insert(line) {
                self.uncovered.push((
                    line,
                    format!(
                        "{what} mutates durable state with no WAL hook preceding it on \
                         every path; recovery replay would miss it"
                    ),
                ));
            }
        }
    }
}

/// Calls that discharge an open `inc_request` obligation: the request
/// either completes on the same path (`inc_completion` — e.g. immediate
/// rejection), is doomed/compensated, or is handed off into tracked
/// protocol state whose later message will complete it. `send_tagged` is
/// the canonical handoff — §4.1's discipline is "increment `R(v)pq`,
/// *then* send to `q`", and the matching `C` moves when `q`'s completion
/// message lands; an `inc_request` with no subsequent send on some path
/// is precisely the dropped-request bug this rule exists for.
const COUNTER_DISCHARGES: &[&str] = &[
    "inc_completion",
    "run_job",
    "execute_job",
    "doom_nc",
    "send_compensate",
    "process_grants",
    "send_tagged",
];

/// Receiver/method discharge forms: parking a counted job in tracked
/// queue state (the NC gate) also keeps the obligation alive.
const COUNTER_DISCHARGE_CALLS: &[(&str, &str)] = &[("nc_waiting", "push")];

/// Flow analysis behind rule `counter-balance` (paper P5: `C(v)pq ≤
/// R(v)pq`, and Thm 4.1 needs every counted request to eventually
/// complete). State is the set of `inc_request` lines still undischarged
/// on *some* path (union join); any line still open at a function exit is
/// a request that was counted and then dropped on the floor — version
/// termination detection (§4.3) would wait on it forever.
pub struct CounterFlow {
    /// `inc_request` lines open at some exit.
    pub unbalanced: BTreeSet<u32>,
}

impl CounterFlow {
    pub fn new() -> Self {
        CounterFlow {
            unbalanced: BTreeSet::new(),
        }
    }
}

impl Default for CounterFlow {
    fn default() -> Self {
        Self::new()
    }
}

impl Analysis for CounterFlow {
    type State = BTreeSet<u32>;

    fn merge(&mut self, a: &mut Self::State, b: &Self::State) {
        a.extend(b.iter().copied());
    }

    fn token(&mut self, toks: &[Tok], i: usize, st: &mut Self::State) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || toks.get(i + 1).is_none_or(|n| n.text != "(") {
            return;
        }
        if t.text == "inc_request" && i >= 1 && toks[i - 1].text == "." {
            st.insert(t.line);
        } else if COUNTER_DISCHARGES.contains(&t.text.as_str())
            || (i >= 2
                && toks[i - 1].text == "."
                && COUNTER_DISCHARGE_CALLS
                    .iter()
                    .any(|(r, m)| toks[i - 2].text == *r && t.text == *m))
        {
            st.clear();
        }
    }

    fn exit(&mut self, st: &Self::State, _line: u32) {
        self.unbalanced.extend(st.iter().copied());
    }
}

/// Flow analysis behind rule `lock-discipline` (paper §5, NC3V): a
/// `locks.release_all(…)` hands back a batch of newly-grantable waiters;
/// every path from it must reach `process_grants(…)` before the function
/// exits, or granted-but-unscheduled transactions starve. State is the
/// line of the pending release (None when processed); the join keeps any
/// pending release alive (a single unprocessed path is a bug).
pub struct LockFlow {
    /// `release_all` lines whose grants are unprocessed at some exit.
    pub unprocessed: BTreeSet<u32>,
}

impl LockFlow {
    pub fn new() -> Self {
        LockFlow {
            unprocessed: BTreeSet::new(),
        }
    }
}

impl Default for LockFlow {
    fn default() -> Self {
        Self::new()
    }
}

impl Analysis for LockFlow {
    type State = Option<u32>;

    fn merge(&mut self, a: &mut Self::State, b: &Self::State) {
        if a.is_none() {
            *a = *b;
        }
    }

    fn token(&mut self, toks: &[Tok], i: usize, st: &mut Self::State) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            return;
        }
        if t.text == "locks"
            && toks.get(i + 1).is_some_and(|d| d.text == ".")
            && toks.get(i + 2).is_some_and(|m| m.text == "release_all")
            && toks.get(i + 3).is_some_and(|p| p.text == "(")
        {
            *st = Some(toks[i + 2].line);
        } else if t.text == "process_grants" && toks.get(i + 1).is_some_and(|n| n.text == "(") {
            *st = None;
        }
    }

    fn exit(&mut self, st: &Self::State, _line: u32) {
        if let Some(line) = st {
            self.unprocessed.insert(*line);
        }
    }
}

/// The non-flow half of `lock-discipline`: grant/release journal pairing.
/// A function that calls `locks.acquire(…)` must mention `LockAcquire`
/// (the WAL op) somewhere in its body, and one that calls
/// `locks.release_all(…)` must mention `LockRelease` — otherwise recovery
/// rebuilds a lock table that disagrees with the one the crash saw.
pub fn lock_journal_pairing(body_runs: &[Vec<Tok>], out: &mut Vec<(u32, String)>) {
    let mut acquire_at: Option<u32> = None;
    let mut release_at: Option<u32> = None;
    let mut has_acquire_op = false;
    let mut has_release_op = false;
    for toks in body_runs {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "locks"
                    if toks.get(i + 1).is_some_and(|d| d.text == ".")
                        && toks.get(i + 3).is_some_and(|p| p.text == "(") =>
                {
                    match toks[i + 2].text.as_str() {
                        "acquire" if acquire_at.is_none() => acquire_at = Some(toks[i + 2].line),
                        "release_all" if release_at.is_none() => {
                            release_at = Some(toks[i + 2].line)
                        }
                        _ => {}
                    }
                }
                "LockAcquire" => has_acquire_op = true,
                "LockRelease" => has_release_op = true,
                _ => {}
            }
        }
    }
    if let Some(line) = acquire_at {
        if !has_acquire_op {
            out.push((
                line,
                "`locks.acquire(…)` without a `WalOp::LockAcquire` anywhere in this \
                 function; a granted lock the WAL never saw disappears on recovery"
                    .to_string(),
            ));
        }
    }
    if let Some(line) = release_at {
        if !has_release_op {
            out.push((
                line,
                "`locks.release_all(…)` without a `WalOp::LockRelease` anywhere in this \
                 function; recovery would resurrect released locks"
                    .to_string(),
            ));
        }
    }
}

/// Recognize a direct panic site at `toks[i]`: `(line, what)`.
/// `assert!`/`debug_assert!` are deliberately admitted: invariant checks
/// are the point of the exercise.
pub fn direct_panic_at(toks: &[Tok], i: usize) -> Option<(u32, &'static str)> {
    let t = &toks[i];
    if t.in_test || t.kind != TokKind::Ident {
        return None;
    }
    let next_is = |s: &str| toks.get(i + 1).is_some_and(|n| n.text == s);
    match t.text.as_str() {
        "unwrap" if i >= 1 && toks[i - 1].text == "." && next_is("(") => Some((t.line, "unwrap")),
        "expect" if i >= 1 && toks[i - 1].text == "." && next_is("(") => Some((t.line, "expect")),
        "panic" if next_is("!") => Some((t.line, "panic")),
        "unreachable" if next_is("!") => Some((t.line, "unreachable")),
        "todo" if next_is("!") => Some((t.line, "todo")),
        "unimplemented" if next_is("!") => Some((t.line, "unimplemented")),
        _ => None,
    }
}

/// Rule `panic-hygiene` (direct half): protocol code must not contain
/// reachable panics — a malformed message taking down a node converts a
/// logic bug into an availability incident, and the recovery tests then
/// exercise the wrong failure mode. The transitive half (a protocol
/// function calling a helper crate that can panic) lives in
/// [`crate::lint_files`], which has the call graph.
pub fn panic_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.policy.panic_hygiene {
        return;
    }
    let toks = ctx.toks();
    for i in 0..toks.len() {
        if let Some((line, what)) = direct_panic_at(toks, i) {
            let msg = match what {
                "unwrap" | "expect" => format!(
                    "`.{what}()` in protocol code; return a typed error \
                     (StoreError/ProtocolError) instead"
                ),
                _ => format!(
                    "`{what}!` in protocol code; a malformed message must not take the \
                     node down — return a typed error or degrade"
                ),
            };
            out.push(ctx.finding("panic-hygiene", line, msg));
        }
    }
}

/// Rule `unsafe-forbid`: protocol crates carry `#![forbid(unsafe_code)]`
/// in their crate root and no `unsafe` token anywhere (the attribute makes
/// rustc enforce it; the token scan catches the attribute being removed in
/// the same commit that introduces the unsafe block).
pub fn unsafe_forbid(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.policy.forbid_unsafe {
        return;
    }
    let toks = ctx.toks();
    for t in toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            out.push(ctx.finding(
                "unsafe-forbid",
                t.line,
                "`unsafe` in a forbid(unsafe_code) crate".to_string(),
            ));
        }
    }
    if ctx.is("src/lib.rs") && !has_forbid_unsafe_attr(toks) {
        out.push(ctx.finding(
            "unsafe-forbid",
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}

/// Parse inner attributes (`#![…]`) structurally: any whose token stream
/// mentions both `forbid` and `unsafe_code` counts, so formatting
/// variants, argument lists (`#![forbid(unsafe_code, …)]`), and
/// `cfg_attr` wrappers are all recognized.
fn has_forbid_unsafe_attr(toks: &[Tok]) -> bool {
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].text == "#" && toks[i + 1].text == "!" && toks[i + 2].text == "[" {
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut saw_forbid = false;
            let mut saw_unsafe_code = false;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "forbid" => saw_forbid = true,
                    "unsafe_code" => saw_unsafe_code = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_forbid && saw_unsafe_code {
                return true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    false
}

/// Run every per-file rule family over one lexed file. The protocol flow
/// rules run separately in [`crate::lint_files`], which owns the parsed
/// bodies and the call graph.
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    determinism(ctx, &mut out);
    counter_monotonicity(ctx, &mut out);
    panic_hygiene(ctx, &mut out);
    unsafe_forbid(ctx, &mut out);
    out
}
