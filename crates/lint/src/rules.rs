//! The five rule families, each pattern-matching over the lexed token
//! stream of one file. See DESIGN.md §7 for the rationale table mapping
//! each rule to the paper section whose proof it protects.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::policy::CratePolicy;
use crate::Finding;

/// Context for linting one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, e.g. `crates/core/src/counters.rs`.
    pub rel_path: &'a str,
    /// The crate's policy row.
    pub policy: &'a CratePolicy,
    /// Lexed source.
    pub lexed: &'a Lexed,
}

impl FileCtx<'_> {
    fn is(&self, suffix: &str) -> bool {
        self.rel_path.ends_with(suffix)
    }

    fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }

    fn finding(&self, rule: &'static str, line: u32, msg: String) -> Finding {
        Finding {
            rule,
            file: self.rel_path.to_string(),
            line,
            msg,
        }
    }
}

/// Identifiers whose presence in non-test deterministic code breaks
/// bit-identical replay. `HashMap`/`HashSet` randomize iteration order
/// across processes (std's SipHash keys are per-process), the clock types
/// leak wall time into virtual time, and `RandomState`/`DefaultHasher` are
/// the raw ingredients of both.
const NONDETERMINISTIC_IDENTS: &[(&str, &str)] = &[
    ("HashMap", "iteration order is process-random; use BTreeMap"),
    ("HashSet", "iteration order is process-random; use BTreeSet"),
    ("RandomState", "per-process random hasher state"),
    ("DefaultHasher", "per-process random hasher state"),
    (
        "Instant",
        "wall-clock time in deterministic code; use SimTime",
    ),
    (
        "SystemTime",
        "wall-clock time in deterministic code; use SimTime",
    ),
    ("thread_rng", "unseeded RNG; use SmallRng::seed_from_u64"),
    ("from_entropy", "unseeded RNG; use SmallRng::seed_from_u64"),
];

/// Rule `determinism`: no order-random collections, wall clocks, sleeps, or
/// unseeded RNGs in deterministic crates (paper §2.2/§4.3: the stable-
/// property argument and our replay tests need bit-identical schedules).
pub fn determinism(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.policy.deterministic {
        return;
    }
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if let Some((_, why)) = NONDETERMINISTIC_IDENTS.iter().find(|(id, _)| *id == t.text) {
            out.push(ctx.finding(
                "determinism",
                t.line,
                format!("`{}` in deterministic crate: {}", t.text, why),
            ));
        }
        // `thread::sleep` — flag `sleep` only as a path segment of `thread`
        // so a domain method named `sleep` elsewhere would not false-fire.
        if t.text == "sleep" && i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "thread" {
            out.push(
                ctx.finding(
                    "determinism",
                    t.line,
                    "`thread::sleep` in deterministic crate: wall-clock delays break replay; \
                 schedule virtual-time timers instead"
                        .to_string(),
                ),
            );
        }
    }
}

/// Call sites allowed to move the `R`/`C` counters. Everything else must go
/// through these files (which pair every increment with its WAL record).
const COUNTER_CALLSITE_ALLOWLIST: &[&str] = &[
    "crates/core/src/counters.rs",
    "crates/core/src/node/exec.rs",
    "crates/core/src/node/gc.rs",
];

/// Method-name prefixes that would make the counter API non-monotone.
const COUNTER_FORBIDDEN_FN_PREFIXES: &[&str] = &["dec", "reset", "sub"];
const COUNTER_FORBIDDEN_FNS: &[&str] = &["set_request", "set_completion", "clear", "remove"];
/// Fields of the counter structs that must stay private (field privacy is
/// what makes the call-site scan sound: no `pub` field, no back door).
const COUNTER_PRIVATE_FIELDS: &[&str] = &["versions", "requests_to", "completions_from"];

/// Rule `counter-monotonicity` (paper §2.2, §4.3): `R(v)pq`/`C(v)pq` are
/// increment-only and mutated only through `crates/core/src/counters.rs`.
/// The termination-detection proof (two identical balanced rounds) is a
/// stable-property argument and collapses if any site can decrement,
/// reset, or bypass the table.
pub fn counter_monotonicity(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.policy.deterministic {
        return; // counters only exist in protocol code
    }
    let toks = ctx.toks();
    let in_counters = ctx.is("crates/core/src/counters.rs");
    let allowed_callsite = COUNTER_CALLSITE_ALLOWLIST.iter().any(|f| ctx.is(f));

    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        // (a) increments only from sanctioned files.
        if !allowed_callsite
            && t.kind == TokKind::Ident
            && (t.text == "inc_request" || t.text == "inc_completion")
            && i >= 1
            && toks[i - 1].text == "."
        {
            out.push(ctx.finding(
                "counter-monotonicity",
                t.line,
                format!(
                    "`{}` called outside the sanctioned counter call sites \
                     (crates/core/src/node/{{exec,gc}}.rs); new mutation sites must pair \
                     the increment with its WAL record there",
                    t.text
                ),
            ));
        }
        // (b) no struct-literal construction of the table outside counters.rs
        // (a literal would bypass the increment-only API).
        if !in_counters
            && t.kind == TokKind::Ident
            && t.text == "CounterTable"
            && toks.get(i + 1).is_some_and(|n| n.text == "{")
            // Exclude type positions (`-> &CounterTable {`, `impl CounterTable {`):
            // only a value-position `CounterTable { … }` constructs the struct.
            && !(i >= 1
                && matches!(
                    toks[i - 1].text.as_str(),
                    "&" | "->" | ":" | "<" | "impl" | "dyn" | "for" | "as"
                ))
        {
            out.push(
                ctx.finding(
                    "counter-monotonicity",
                    t.line,
                    "`CounterTable { … }` struct literal outside counters.rs bypasses the \
                 increment-only API"
                        .to_string(),
                ),
            );
        }
        if in_counters {
            // (c) the implementation itself must stay increment-only.
            if t.text == "-=" {
                out.push(
                    ctx.finding(
                        "counter-monotonicity",
                        t.line,
                        "decrement inside counters.rs: R/C counters are increment-only \
                     (paper §2.2 stable-property argument)"
                            .to_string(),
                    ),
                );
            }
            if t.kind == TokKind::Ident && t.text == "fn" {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    let bad = COUNTER_FORBIDDEN_FNS.contains(&name.text.as_str())
                        || COUNTER_FORBIDDEN_FN_PREFIXES
                            .iter()
                            .any(|p| name.text.starts_with(p));
                    if bad {
                        out.push(ctx.finding(
                            "counter-monotonicity",
                            name.line,
                            format!(
                                "`fn {}` would give the counter API a non-monotone \
                                 operation; only increments, snapshots, and whole-version \
                                 GC are admissible",
                                name.text
                            ),
                        ));
                    }
                }
            }
            // (d) field privacy: a `pub` counter field reopens the back
            // door. Only map-typed fields are live state — the snapshot
            // structs expose the same names as immutable `Vec` copies.
            if t.kind == TokKind::Ident
                && t.text == "pub"
                && toks.get(i + 1).is_some_and(|n| {
                    COUNTER_PRIVATE_FIELDS.contains(&n.text.as_str())
                        && toks.get(i + 2).is_some_and(|c| c.text == ":")
                })
                && toks[i + 3..]
                    .iter()
                    .take_while(|ty| ty.text != ",")
                    .any(|ty| ty.text == "BTreeMap" || ty.text == "HashMap")
            {
                out.push(ctx.finding(
                    "counter-monotonicity",
                    t.line,
                    format!(
                        "counter field `{}` must stay private; the call-site scan is \
                         only sound with field privacy",
                        toks[i + 1].text
                    ),
                ));
            }
        }
    }
}

/// Durable-state mutations: `(receiver, method)` pairs whose call must sit
/// within [`WAL_WINDOW`] lines of a WAL hook (`wal(…)` / `wal_enabled()`),
/// so recovery replay sees every mutation (PR 3's recovery proof).
const WAL_MUTATING_CALLS: &[(&str, &str)] = &[
    ("counters", "inc_request"),
    ("counters", "inc_completion"),
    ("counters", "gc"),
    ("store", "update"),
    ("store", "rollback"),
    ("store", "gc"),
    ("locks", "acquire"),
    ("locks", "release_all"),
];

/// Durable fields whose direct reassignment must likewise be logged.
const WAL_MUTATING_ASSIGNS: &[&str] = &["vu", "vr", "store", "counters", "locks"];

/// How far (in lines, either direction) a WAL hook may sit from the
/// mutation it covers. Proximity, not ordering: the write-ahead *ordering*
/// is a code-review invariant; this rule catches the new mutation site
/// with **no** hook at all, which is the failure mode that silently breaks
/// recovery replay.
const WAL_WINDOW: u32 = 12;

/// Rule `wal-hook-coverage`: in the core node engine, every mutation of
/// store chains, counters, lock holders, or `(vr, vu)` must have a
/// durability hook in its immediate neighbourhood.
pub fn wal_hook_coverage(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.policy.wal_hooks || !ctx.rel_path.contains("/src/node/") {
        return;
    }
    let toks = ctx.toks();
    // Pre-collect the lines of every WAL hook mention in non-test code.
    let hook_lines: Vec<u32> = toks
        .iter()
        .filter(|t| {
            !t.in_test && t.kind == TokKind::Ident && (t.text == "wal" || t.text == "wal_enabled")
        })
        .map(|t| t.line)
        .collect();
    let covered = |line: u32| hook_lines.iter().any(|h| h.abs_diff(line) <= WAL_WINDOW);

    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        // `<recv> . <method> (`
        let is_call = toks.get(i + 1).is_some_and(|d| d.text == ".")
            && toks.get(i + 3).is_some_and(|p| p.text == "(");
        if is_call {
            if let Some(m) = toks.get(i + 2) {
                if WAL_MUTATING_CALLS
                    .iter()
                    .any(|(r, f)| *r == t.text && *f == m.text)
                    && !covered(m.line)
                {
                    out.push(ctx.finding(
                        "wal-hook-coverage",
                        m.line,
                        format!(
                            "`{}.{}(…)` mutates durable state with no WAL hook within \
                             {WAL_WINDOW} lines; recovery replay would miss it",
                            t.text, m.text
                        ),
                    ));
                }
            }
        }
        // `self . <field> =` (but not `==`)
        if t.text == "self"
            && toks.get(i + 1).is_some_and(|d| d.text == ".")
            && toks.get(i + 2).is_some_and(|f| {
                f.kind == TokKind::Ident && WAL_MUTATING_ASSIGNS.contains(&f.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|e| e.text == "=")
        {
            let f = &toks[i + 2];
            if !covered(f.line) {
                out.push(ctx.finding(
                    "wal-hook-coverage",
                    f.line,
                    format!(
                        "`self.{} = …` reassigns durable state with no WAL hook within \
                         {WAL_WINDOW} lines; recovery replay would miss it",
                        f.text
                    ),
                ));
            }
        }
    }
}

/// Rule `panic-hygiene`: protocol code must not contain reachable panics —
/// a malformed message taking down a node converts a logic bug into an
/// availability incident, and the recovery tests then exercise the wrong
/// failure mode. `assert!`/`debug_assert!` are deliberately admitted:
/// invariant checks are the point of the exercise.
pub fn panic_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.policy.panic_hygiene {
        return;
    }
    let toks = ctx.toks();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |s: &str| toks.get(i + 1).is_some_and(|n| n.text == s);
        match t.text.as_str() {
            "unwrap" | "expect" if i >= 1 && toks[i - 1].text == "." && next_is("(") => {
                out.push(ctx.finding(
                    "panic-hygiene",
                    t.line,
                    format!(
                        "`.{}()` in protocol code; return a typed error \
                         (StoreError/ProtocolError) instead",
                        t.text
                    ),
                ));
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next_is("!") => {
                out.push(ctx.finding(
                    "panic-hygiene",
                    t.line,
                    format!(
                        "`{}!` in protocol code; a malformed message must not take the \
                         node down — return a typed error or degrade",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// Rule `unsafe-forbid`: protocol crates carry `#![forbid(unsafe_code)]`
/// in their crate root and no `unsafe` token anywhere (the attribute makes
/// rustc enforce it; the token scan catches the attribute being removed in
/// the same commit that introduces the unsafe block).
pub fn unsafe_forbid(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.policy.forbid_unsafe {
        return;
    }
    let toks = ctx.toks();
    for t in toks {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            out.push(ctx.finding(
                "unsafe-forbid",
                t.line,
                "`unsafe` in a forbid(unsafe_code) crate".to_string(),
            ));
        }
    }
    if ctx.is("src/lib.rs") {
        let has_forbid = toks.windows(7).any(|w| {
            w[0].text == "#"
                && w[1].text == "!"
                && w[2].text == "["
                && w[3].text == "forbid"
                && w[4].text == "("
                && w[5].text == "unsafe_code"
                && w[6].text == ")"
        });
        if !has_forbid {
            out.push(ctx.finding(
                "unsafe-forbid",
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
    }
}

/// Run every rule family over one lexed file.
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    determinism(ctx, &mut out);
    counter_monotonicity(ctx, &mut out);
    wal_hook_coverage(ctx, &mut out);
    panic_hygiene(ctx, &mut out);
    unsafe_forbid(ctx, &mut out);
    out
}
