//! CLI entry point for `threev-lint`.
//!
//! Usage: `cargo run -p threev-lint -- [--deny] [--deep] [--list-rules]
//! [--root DIR] [--json FILE]`
//!
//! Exits 1 when any finding is emitted (with or without `--deny`; the flag
//! exists so CI invocations read as intent). `--root` overrides workspace
//! discovery for out-of-tree runs. `--deep` raises the transitive
//! panic-hygiene chain cap (the nightly `lint-deep` job). `--json FILE`
//! additionally writes the findings as a JSON array (always written, even
//! when clean, so CI can upload it as an artifact unconditionally).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use threev_lint::Options;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => {} // default behaviour; accepted for explicitness
            "--deep" => opts.deep = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("threev-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(file) => json = Some(PathBuf::from(file)),
                None => {
                    eprintln!("threev-lint: --json requires a file path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("threev-lint: unknown argument `{other}`");
                eprintln!(
                    "usage: threev-lint [--deny] [--deep] [--list-rules] [--root DIR] \
                     [--json FILE]"
                );
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in threev_lint::RULE_IDS {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match threev_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "threev-lint: no workspace root (Cargo.toml + crates/) found \
                         above {}; pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match threev_lint::lint_workspace_with(&root, &opts) {
        Ok(findings) => {
            if let Some(path) = json {
                let doc = threev_lint::findings_to_json(&findings);
                if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("threev-lint: writing {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if findings.is_empty() {
                println!("threev-lint: clean");
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("threev-lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("threev-lint: {e}");
            ExitCode::from(2)
        }
    }
}
