//! `threev-lint` — protocol-invariant static analyzer for the 3V
//! reproduction.
//!
//! The paper's termination detection is a stable-property argument (§2.2,
//! §4.3): it only holds if the `R`/`C` counters are increment-only and the
//! replay our fault tests depend on is bit-identical. Neither property is
//! something rustc checks, so this crate does — with zero dependencies:
//!
//! * a hand-rolled lexer ([`lexer`]: strings, nested comments,
//!   `#[cfg(test)]` regions, `// lint-allow(rule): reason` escape hatches);
//! * a recursive-descent parser over the token stream ([`parser`]:
//!   per-function bodies with `if`/`match`/loop structure and exits);
//! * a workspace symbol table and conservative call graph ([`callgraph`]);
//! * a branch-sensitive walker ([`flow`]) that runs the protocol rules as
//!   path analyses ([`rules`]): WAL write-ahead coverage, counter
//!   balancing, lock grant/release discipline, and transitive panic
//!   hygiene with call-chain diagnostics.
//!
//! Runs as a binary (`cargo run -p threev-lint -- --deny`) and as a `#[test]`
//! in this crate, so tier-1 `cargo test -q` enforces the invariants.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod policy;
pub mod rules;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use callgraph::{call_at, CallGraph, FnSym};
use lexer::{Allow, ALLOW_WINDOW};
use policy::CratePolicy;

/// Every rule id the engine can emit, for `--list-rules` and for validating
/// `lint-allow` annotations against typos.
pub const RULE_IDS: &[&str] = &[
    "determinism",
    "counter-monotonicity",
    "wal-hook-coverage",
    "counter-balance",
    "lock-discipline",
    "panic-hygiene",
    "unsafe-forbid",
    // Meta-rules about the escape hatch itself:
    "allow-syntax",
    "unused-allow",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Engine options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Raise the transitive panic-hygiene chain cap from 8 to 64 hops
    /// (the nightly `lint-deep` CI job; the short cap keeps the per-push
    /// gate fast and its diagnostics readable).
    pub deep: bool,
}

/// One input file for [`lint_files`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Crate directory name under `crates/` (policy key).
    pub crate_name: String,
    /// Workspace-relative path (virtual paths are fine in tests).
    pub rel_path: String,
    pub src: String,
}

/// Lint one source file in isolation (no cross-file call-graph credit:
/// a helper covered only via its callers still fires here, which is what
/// single-file fixture tests want).
pub fn lint_source(crate_name: &str, rel_path: &str, src: &str) -> Vec<Finding> {
    lint_files(
        &[SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            src: src.to_string(),
        }],
        None,
        &Options::default(),
    )
}

struct FileData {
    policy: CratePolicy,
    lexed: lexer::Lexed,
    parsed: parser::ParsedFile,
    /// Findings before allow-filtering.
    raw: Vec<Finding>,
}

/// The engine: lint a set of files together. Phase 1 runs the per-file
/// token rules; phase 2 builds the symbol table + call graph and runs the
/// flow/protocol rules across the whole set; then every finding is
/// filtered through its file's `lint-allow` annotations, and malformed or
/// unused allows are reported as findings in their own right (an allow
/// that suppresses nothing is stale documentation; one without a reason
/// is a blanket suppression).
///
/// `deps` maps crate dir -> in-workspace crate dirs it may call into
/// (from [`callgraph::workspace_deps`]); `None` makes every crate visible
/// to every other, which is what loose fixture sets want.
pub fn lint_files(
    files: &[SourceFile],
    deps: Option<BTreeMap<String, BTreeSet<String>>>,
    opts: &Options,
) -> Vec<Finding> {
    // ---- Phase 1: per-file lexing, parsing, token rules. ----
    let mut data: Vec<FileData> = files
        .iter()
        .map(|f| {
            let policy = policy::policy_for(&f.crate_name);
            let lexed = lexer::lex(&f.src);
            let parsed = parser::parse(&lexed);
            let ctx = rules::FileCtx {
                rel_path: &f.rel_path,
                policy: &policy,
                lexed: &lexed,
            };
            let raw = rules::run_all(&ctx);
            FileData {
                policy,
                lexed,
                parsed,
                raw,
            }
        })
        .collect();

    // ---- Phase 2: symbol table + call graph + flow rules. ----
    let mut graph = CallGraph::new(deps);
    let mut fn_file: Vec<(usize, usize)> = Vec::new(); // graph idx -> (file idx, fn idx)
    let mut hook_flows: Vec<rules::HookFlow> = Vec::new();

    for (fi, fd) in data.iter().enumerate() {
        let file = &files[fi];
        let node_scope = rules::node_engine_scope(&fd.policy, &file.rel_path);
        for (di, def) in fd.parsed.fns.iter().enumerate() {
            if def.in_test {
                continue;
            }
            // Whole-body scan: call sites and the first panic site (for
            // the transitive rule, an already-allowed panic is not a
            // panic — the suppression reason travels with the helper).
            let mut runs: Vec<Vec<lexer::Tok>> = Vec::new();
            parser::for_each_token_run(&def.body, &mut |toks| runs.push(toks.to_vec()));
            let mut calls = Vec::new();
            let mut panic: Option<(u32, String)> = None;
            for toks in &runs {
                for i in 0..toks.len() {
                    if let Some(site) = call_at(toks, i) {
                        calls.push(site);
                    }
                    if panic.is_none() {
                        if let Some((line, what)) = rules::direct_panic_at(toks, i) {
                            if matching_allow_for(&fd.lexed.allows, "panic-hygiene", line).is_none()
                            {
                                panic = Some((line, what.to_string()));
                            }
                        }
                    }
                }
            }
            graph.push(FnSym {
                crate_name: file.crate_name.clone(),
                file: file.rel_path.clone(),
                name: def.name.clone(),
                self_ty: def.self_ty.clone(),
                line: def.line,
                panic,
                calls,
            });
            fn_file.push((fi, di));

            // WAL hook flow runs on every fn (call-site hook states feed
            // cross-file coverage); mutations are recorded in node scope.
            let mut hf = rules::HookFlow::new(node_scope);
            flow::walk_fn(def, &mut hf, false);
            hook_flows.push(hf);
        }
    }

    // Deferred findings: (file idx, finding), merged into `raw` below.
    let mut extra: Vec<(usize, Finding)> = Vec::new();

    // counter-balance + lock-discipline: per-fn path analyses over the
    // node engine.
    for &(fi, di) in fn_file.iter() {
        let fd = &data[fi];
        let file = &files[fi];
        if !rules::node_engine_scope(&fd.policy, &file.rel_path) {
            continue;
        }
        let def = &fd.parsed.fns[di];

        let mut cf = rules::CounterFlow::new();
        flow::walk_fn(def, &mut cf, BTreeSet::new());
        for line in cf.unbalanced {
            extra.push((
                fi,
                Finding {
                    rule: "counter-balance",
                    file: file.rel_path.clone(),
                    line,
                    msg: format!(
                        "`inc_request` in `{}` reaches a function exit with no completion, \
                         doom, or handoff on some path; the counted request would never \
                         complete and §4.3 termination detection would wait on it forever",
                        def.name
                    ),
                },
            ));
        }

        let mut lf = rules::LockFlow::new();
        flow::walk_fn(def, &mut lf, None);
        for line in lf.unprocessed {
            extra.push((
                fi,
                Finding {
                    rule: "lock-discipline",
                    file: file.rel_path.clone(),
                    line,
                    msg: format!(
                        "grants from `locks.release_all(…)` in `{}` are not passed to \
                         `process_grants(…)` on every path; granted-but-unscheduled \
                         transactions would starve (NC3V §5)",
                        def.name
                    ),
                },
            ));
        }

        let mut runs: Vec<Vec<lexer::Tok>> = Vec::new();
        parser::for_each_token_run(&def.body, &mut |toks| runs.push(toks.to_vec()));
        let mut pairing = Vec::new();
        rules::lock_journal_pairing(&runs, &mut pairing);
        for (line, msg) in pairing {
            extra.push((
                fi,
                Finding {
                    rule: "lock-discipline",
                    file: file.rel_path.clone(),
                    line,
                    msg,
                },
            ));
        }
    }

    // wal-hook-coverage: in-function coverage, then credit helpers whose
    // *every* call-graph path is covered at the call site.
    let mut rev: BTreeMap<usize, Vec<(usize, bool)>> = BTreeMap::new();
    for (g, flow) in hook_flows.iter().enumerate() {
        for (site, covered) in &flow.calls {
            for tgt in graph.resolve(g, site, true) {
                if graph.fns[tgt].file.contains("/src/node/") {
                    rev.entry(tgt).or_default().push((g, *covered));
                }
            }
        }
    }
    for g in 0..graph.fns.len() {
        if hook_flows[g].uncovered.is_empty() {
            continue;
        }
        let mut visiting = BTreeSet::new();
        if covered_via_callers(g, &rev, &mut visiting) {
            continue;
        }
        let (fi, _) = fn_file[g];
        for (line, msg) in &hook_flows[g].uncovered {
            extra.push((
                fi,
                Finding {
                    rule: "wal-hook-coverage",
                    file: files[fi].rel_path.clone(),
                    line: *line,
                    msg: format!(
                        "{msg} (nor is every call-graph path into `{}` hook-covered)",
                        graph.fns[g].name
                    ),
                },
            ));
        }
    }

    // panic-hygiene, transitive half: a protocol-crate fn calling into a
    // non-hygiene crate whose callee can reach a panic.
    let chain_cap = if opts.deep { 64 } else { 8 };
    let mut dedup: BTreeSet<(usize, u32, usize)> = BTreeSet::new();
    for (g, caller) in graph.fns.iter().enumerate() {
        if !policy::policy_for(&caller.crate_name).panic_hygiene {
            continue;
        }
        for site in &caller.calls {
            for tgt in graph.resolve(g, site, false) {
                let callee = &graph.fns[tgt];
                if callee.crate_name == caller.crate_name
                    || policy::policy_for(&callee.crate_name).panic_hygiene
                {
                    continue; // hygiene crates are held to the direct rule
                }
                let Some(chain) = graph.panic_chain(tgt, chain_cap) else {
                    continue;
                };
                let (fi, _) = fn_file[g];
                if !dedup.insert((fi, site.line, tgt)) {
                    continue;
                }
                let last = *chain.last().unwrap_or(&tgt);
                let (pline, pwhat) = graph.fns[last]
                    .panic
                    .clone()
                    .unwrap_or((graph.fns[last].line, "panic".to_string()));
                let chain_text: Vec<String> =
                    std::iter::once(format!("{}::{}", caller.crate_name, caller.name))
                        .chain(chain.iter().map(|&c| {
                            format!("{}::{}", graph.fns[c].crate_name, graph.fns[c].name)
                        }))
                        .collect();
                extra.push((
                    fi,
                    Finding {
                        rule: "panic-hygiene",
                        file: files[fi].rel_path.clone(),
                        line: site.line,
                        msg: format!(
                            "call chain {} can panic (`{}` at {}:{}); a protocol path \
                             must not unwind through a helper crate — handle the error \
                             or lint-allow with a reason",
                            chain_text.join(" -> "),
                            pwhat,
                            graph.fns[last].file,
                            pline,
                        ),
                    },
                ));
            }
        }
    }

    for (fi, f) in extra {
        data[fi].raw.push(f);
    }

    // ---- Allow filtering + meta findings, per file, in input order. ----
    let mut out = Vec::new();
    for (fi, fd) in data.iter_mut().enumerate() {
        let rel_path = &files[fi].rel_path;
        let raw = std::mem::take(&mut fd.raw);
        let mut used = vec![false; fd.lexed.allows.len()];
        let mut kept: Vec<Finding> = raw
            .into_iter()
            .filter(|f| match matching_allow(&fd.lexed.allows, f) {
                Some(idx) => {
                    used[idx] = true;
                    false
                }
                None => true,
            })
            .collect();

        for (idx, allow) in fd.lexed.allows.iter().enumerate() {
            if !allow.well_formed {
                kept.push(Finding {
                    rule: "allow-syntax",
                    file: rel_path.clone(),
                    line: allow.line,
                    msg: "malformed lint-allow; the form is \
                          `// lint-allow(rule-id): reason` — blanket or reasonless \
                          suppressions are rejected"
                        .to_string(),
                });
                continue;
            }
            if !RULE_IDS.contains(&allow.rule.as_str()) {
                kept.push(Finding {
                    rule: "allow-syntax",
                    file: rel_path.clone(),
                    line: allow.line,
                    msg: format!(
                        "lint-allow names unknown rule `{}`; see --list-rules",
                        allow.rule
                    ),
                });
                continue;
            }
            if !used[idx] {
                kept.push(Finding {
                    rule: "unused-allow",
                    file: rel_path.clone(),
                    line: allow.line,
                    msg: format!(
                        "lint-allow({}) suppresses nothing within {ALLOW_WINDOW} \
                         lines; remove it",
                        allow.rule
                    ),
                });
            }
        }

        kept.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        out.extend(kept);
    }
    out
}

/// All-paths caller coverage: `f` is credited when it has at least one
/// caller and *every* call site into it is either hook-covered at-site or
/// belongs to a function that is itself covered via its callers. Cycles
/// count as uncovered (a recursive helper must carry its own hook).
fn covered_via_callers(
    f: usize,
    rev: &BTreeMap<usize, Vec<(usize, bool)>>,
    visiting: &mut BTreeSet<usize>,
) -> bool {
    let Some(callers) = rev.get(&f) else {
        return false;
    };
    if callers.is_empty() || !visiting.insert(f) {
        return false;
    }
    let ok = callers
        .iter()
        .all(|&(g, covered)| covered || covered_via_callers(g, rev, visiting));
    visiting.remove(&f);
    ok
}

/// An allow matches a finding when the rule id agrees and the finding sits
/// between the allow's first line and [`ALLOW_WINDOW`] lines below the end
/// of its comment run (annotations precede the code they excuse).
fn matching_allow(allows: &[Allow], f: &Finding) -> Option<usize> {
    matching_allow_for(allows, f.rule, f.line)
}

fn matching_allow_for(allows: &[Allow], rule: &str, line: u32) -> Option<usize> {
    allows.iter().position(|a| {
        a.well_formed && a.rule == rule && line >= a.line && line <= a.anchor + ALLOW_WINDOW
    })
}

/// Lint every `crates/*/src/**/*.rs` file under `root` with default
/// options. Files under `tests/`, `benches/`, `examples/`, and
/// `fixtures/` are out of scope (test-tier code), as is `shims/`
/// (vendored third-party API stubs).
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    lint_workspace_with(root, &Options::default())
}

/// [`lint_workspace`] with explicit [`Options`].
pub fn lint_workspace_with(root: &Path, opts: &Options) -> Result<Vec<Finding>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {}", crates_dir.display(), e))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rs(&src, &mut paths)?;
        paths.sort();
        for file in paths {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let text =
                std::fs::read_to_string(&file).map_err(|e| format!("{}: {}", file.display(), e))?;
            files.push(SourceFile {
                crate_name: crate_name.clone(),
                rel_path: rel,
                src: text,
            });
        }
    }
    let deps = callgraph::workspace_deps(root);
    Ok(lint_files(&files, Some(deps), opts))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in std::fs::read_dir(dir).map_err(|e| format!("{}: {}", dir.display(), e))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "tests" | "benches" | "examples" | "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// Render findings as a JSON array (hand-rolled: the linter is
/// zero-dependency by design). Stable field order, one object per line.
pub fn findings_to_json(findings: &[Finding]) -> String {
    fn esc(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("  {\"rule\":\"");
        esc(f.rule, &mut out);
        out.push_str("\",\"file\":\"");
        esc(&f.file, &mut out);
        out.push_str("\",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"msg\":\"");
        esc(&f.msg, &mut out);
        out.push_str("\"}");
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}
