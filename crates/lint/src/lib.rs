//! `threev-lint` — protocol-invariant static analyzer for the 3V
//! reproduction.
//!
//! The paper's termination detection is a stable-property argument (§2.2,
//! §4.3): it only holds if the `R`/`C` counters are increment-only and the
//! replay our fault tests depend on is bit-identical. Neither property is
//! something rustc checks, so this crate does: a hand-rolled lexer (strings,
//! nested comments, `#[cfg(test)]` regions, `// lint-allow(rule): reason`
//! escape hatches), a per-crate policy table, and five rule families
//! producing `file:line` diagnostics.
//!
//! Runs as a binary (`cargo run -p threev-lint -- --deny`) and as a `#[test]`
//! in this crate, so tier-1 `cargo test -q` enforces the invariants.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod policy;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{Allow, ALLOW_WINDOW};
use policy::CratePolicy;

/// Every rule id the engine can emit, for `--list-rules` and for validating
/// `lint-allow` annotations against typos.
pub const RULE_IDS: &[&str] = &[
    "determinism",
    "counter-monotonicity",
    "wal-hook-coverage",
    "panic-hygiene",
    "unsafe-forbid",
    // Meta-rules about the escape hatch itself:
    "allow-syntax",
    "unused-allow",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Lint one source file. Pure: paths are virtual, so fixture tests can pass
/// any `rel_path` they like. Applies rules, then filters findings through
/// the file's `lint-allow` annotations, then reports malformed and unused
/// allows as findings in their own right (an allow that suppresses nothing
/// is stale documentation; one without a reason is a blanket suppression).
pub fn lint_source(crate_name: &str, rel_path: &str, src: &str) -> Vec<Finding> {
    let policy = policy_with_name(crate_name);
    let lexed = lexer::lex(src);
    let ctx = rules::FileCtx {
        rel_path,
        policy: &policy,
        lexed: &lexed,
    };
    let raw = rules::run_all(&ctx);

    let mut used = vec![false; lexed.allows.len()];
    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| match matching_allow(&lexed.allows, f) {
            Some(idx) => {
                used[idx] = true;
                false
            }
            None => true,
        })
        .collect();

    for (idx, allow) in lexed.allows.iter().enumerate() {
        if !allow.well_formed {
            out.push(Finding {
                rule: "allow-syntax",
                file: rel_path.to_string(),
                line: allow.line,
                msg: "malformed lint-allow; the form is \
                      `// lint-allow(rule-id): reason` — blanket or reasonless \
                      suppressions are rejected"
                    .to_string(),
            });
            continue;
        }
        if !RULE_IDS.contains(&allow.rule.as_str()) {
            out.push(Finding {
                rule: "allow-syntax",
                file: rel_path.to_string(),
                line: allow.line,
                msg: format!(
                    "lint-allow names unknown rule `{}`; see --list-rules",
                    allow.rule
                ),
            });
            continue;
        }
        if !used[idx] {
            out.push(Finding {
                rule: "unused-allow",
                file: rel_path.to_string(),
                line: allow.line,
                msg: format!(
                    "lint-allow({}) suppresses nothing within {ALLOW_WINDOW} \
                     lines; remove it",
                    allow.rule
                ),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// An allow matches a finding when the rule id agrees and the finding sits
/// between the allow's first line and [`ALLOW_WINDOW`] lines below the end
/// of its comment run (annotations precede the code they excuse).
fn matching_allow(allows: &[Allow], f: &Finding) -> Option<usize> {
    allows.iter().position(|a| {
        a.well_formed && a.rule == f.rule && f.line >= a.line && f.line <= a.anchor + ALLOW_WINDOW
    })
}

fn policy_with_name(crate_name: &str) -> CratePolicy {
    policy::policy_for(crate_name)
}

/// Lint every `crates/*/src/**/*.rs` file under `root`. Files under
/// `tests/`, `benches/`, `examples/`, and `fixtures/` are out of scope
/// (test-tier code), as is `shims/` (vendored third-party API stubs).
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {}", crates_dir.display(), e))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let text =
                std::fs::read_to_string(&file).map_err(|e| format!("{}: {}", file.display(), e))?;
            findings.extend(lint_source(&crate_name, &rel, &text));
        }
    }
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in std::fs::read_dir(dir).map_err(|e| format!("{}: {}", dir.display(), e))? {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if matches!(name, "tests" | "benches" | "examples" | "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root: walk up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
