//! A small branch-sensitive walker over [`crate::parser`] bodies.
//!
//! An [`Analysis`] carries a cloneable per-path state through every
//! statement of a function. The walker:
//!
//! * runs straight-line token runs through [`Analysis::token`] in source
//!   order;
//! * forks the state at `if`/`match` arms and re-joins with
//!   [`Analysis::merge`] (each analysis picks its own join — AND for
//!   must-analyses like WAL coverage, union for may-analyses like open
//!   counter obligations);
//! * models loops as zero-or-one executions (the classic loop-free
//!   over-approximation: the skip path, the fallthrough path, and every
//!   `break` path are merged — for a bare `loop`, which cannot skip, only
//!   the `break` paths);
//! * reports every function exit — tail fallthrough, `return`, and each
//!   `?` — through [`Analysis::exit`], which is where obligation-style
//!   rules check their state.
//!
//! Dead paths are real: a `match` whose arms all `return` produces no
//! fallthrough state, so code after it is (correctly) not charged to any
//! path.

use crate::lexer::Tok;
use crate::parser::{Block, FnDef, Stmt};

/// One flow analysis: per-path state plus join/transfer/exit hooks.
pub trait Analysis {
    type State: Clone;

    /// Join a second predecessor `b` into `a`.
    fn merge(&mut self, a: &mut Self::State, b: &Self::State);

    /// Transfer one token. `toks[i]` is current; the whole run is given
    /// for lookaround (call shapes span several tokens).
    fn token(&mut self, toks: &[Tok], i: usize, st: &mut Self::State);

    /// A path leaves the function at `line` with state `st` (fallthrough,
    /// `return`, or `?`).
    fn exit(&mut self, _st: &Self::State, _line: u32) {}
}

/// Walk one function body under `analysis`, starting from `init`.
pub fn walk_fn<A: Analysis>(f: &FnDef, analysis: &mut A, init: A::State) {
    let mut w = Walker {
        a: analysis,
        loop_breaks: Vec::new(),
    };
    if let Some(st) = w.block(&f.body, init) {
        w.a.exit(&st, f.end_line);
    }
}

enum LeafExit {
    Return(u32),
    Break,
    Continue,
}

struct Walker<'a, A: Analysis> {
    a: &'a mut A,
    /// One accumulator per enclosing loop: the states carried out by each
    /// `break` inside it.
    loop_breaks: Vec<Vec<A::State>>,
}

impl<A: Analysis> Walker<'_, A> {
    /// `None` means every path through the block left the function (or
    /// the enclosing loop): there is no fallthrough state.
    fn block(&mut self, b: &Block, st: A::State) -> Option<A::State> {
        let mut cur = Some(st);
        for s in &b.stmts {
            let c = cur?;
            cur = self.stmt(s, c);
        }
        cur
    }

    fn merge_into(&mut self, acc: &mut Option<A::State>, other: Option<A::State>) {
        match (acc.as_mut(), other) {
            (_, None) => {}
            (None, Some(o)) => *acc = Some(o),
            (Some(a), Some(o)) => self.a.merge(a, &o),
        }
    }

    fn stmt(&mut self, s: &Stmt, st: A::State) -> Option<A::State> {
        match s {
            Stmt::Leaf(toks) => self.leaf(toks, st),
            Stmt::Sub(b) => self.block(b, st),
            Stmt::If { arms, has_else } => {
                let mut out: Option<A::State> = None;
                let mut cur = Some(st);
                for (head, body) in arms {
                    let Some(c) = cur.take() else { break };
                    // Heads run on every path that reaches this arm's test.
                    let Some(h) = self.leaf(head, c) else { break };
                    let arm_out = self.block(body, h.clone());
                    self.merge_into(&mut out, arm_out);
                    cur = Some(h); // the arm-not-taken path
                }
                if !*has_else {
                    let skip = cur.take();
                    self.merge_into(&mut out, skip);
                }
                out
            }
            Stmt::Match { head, arms } => {
                let h = self.leaf(head, st)?;
                if arms.is_empty() {
                    return Some(h);
                }
                let mut out: Option<A::State> = None;
                for (pat, body) in arms {
                    let Some(p) = self.leaf(pat, h.clone()) else {
                        continue;
                    };
                    let arm_out = self.block(body, p);
                    self.merge_into(&mut out, arm_out);
                }
                out
            }
            Stmt::Loop { head, body } => {
                let h = self.leaf(head, st)?;
                self.loop_breaks.push(Vec::new());
                let fallthrough = self.block(body, h.clone());
                let breaks = self.loop_breaks.pop().unwrap_or_default();
                // `while`/`for` can skip the body entirely; bare `loop`
                // (empty head) cannot, and its fallthrough re-enters the
                // loop rather than leaving it.
                let mut out = if head.is_empty() { None } else { Some(h) };
                if !head.is_empty() {
                    self.merge_into(&mut out, fallthrough);
                }
                for b in breaks {
                    self.merge_into(&mut out, Some(b));
                }
                out
            }
        }
    }

    fn leaf(&mut self, toks: &[Tok], mut st: A::State) -> Option<A::State> {
        let mut exit: Option<LeafExit> = None;
        for i in 0..toks.len() {
            self.a.token(toks, i, &mut st);
            match toks[i].text.as_str() {
                // `?` snapshots an early exit but the happy path continues.
                "?" => self.a.exit(&st, toks[i].line),
                "return" if exit.is_none() => exit = Some(LeafExit::Return(toks[i].line)),
                "break" if exit.is_none() => exit = Some(LeafExit::Break),
                "continue" if exit.is_none() => exit = Some(LeafExit::Continue),
                _ => {}
            }
        }
        match exit {
            None => Some(st),
            Some(LeafExit::Return(line)) => {
                // The returned expression's tokens have already run.
                self.a.exit(&st, line);
                None
            }
            Some(LeafExit::Break) => {
                if let Some(acc) = self.loop_breaks.last_mut() {
                    acc.push(st);
                }
                None
            }
            Some(LeafExit::Continue) => None,
        }
    }
}
