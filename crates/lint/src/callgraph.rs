//! Workspace symbol table and conservative call graph.
//!
//! Resolution is name-based (no type inference, by design — the linter is
//! zero-dependency and must stay fast), sharpened by three filters:
//!
//! * **Crate visibility**: an edge from crate A to crate B exists only if
//!   A's `Cargo.toml` declares a `threev-B` dependency (or A == B). This
//!   kills most same-name collisions outright.
//! * **Qualifiers**: `Type::name(…)` only matches fns in an
//!   `impl Type`/`trait Type` block (or module-qualified free fns);
//!   `self.name(…)` only matches fns under the caller's own self type.
//! * **Receivers**: `recv.name(…)` through an arbitrary variable is
//!   resolved only in *liberal* mode (used by WAL caller-coverage, where
//!   the interesting targets — `core/src/node/` fns — have distinctive
//!   names). *Strict* mode (used by transitive panic hygiene, where a
//!   false edge means a false diagnostic) drops such calls.
//!
//! Both choices are conservative for their consumer: liberal mode may
//! only *add* call sites that must be covered; strict mode may only
//! *miss* panic chains, never invent them.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};

/// One syntactic call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (the ident directly before the `(`).
    pub name: String,
    /// `Qual::name(…)` qualifier, when syntactically present.
    pub qual: Option<String>,
    /// Is this a `recv.name(…)` method call?
    pub method: bool,
    /// The receiver ident for a method call, when it is a plain ident
    /// (e.g. `self`, `node`).
    pub recv: Option<String>,
    pub line: u32,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "move", "let", "else",
    "break", "continue",
];

/// Recognize a call at `toks[i]`: an identifier directly followed by `(`
/// (macros have a `!` in between and are therefore excluded, as are
/// definitions, whose ident follows `fn`).
pub fn call_at(toks: &[Tok], i: usize) -> Option<CallSite> {
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    if toks.get(i + 1).map(|n| n.text.as_str()) != Some("(") {
        return None;
    }
    let prev = if i >= 1 { Some(&toks[i - 1]) } else { None };
    if prev.is_some_and(|p| p.text == "fn") {
        return None;
    }
    let mut site = CallSite {
        name: t.text.clone(),
        qual: None,
        method: false,
        recv: None,
        line: t.line,
    };
    match prev.map(|p| p.text.as_str()) {
        Some(".") => {
            site.method = true;
            site.recv = toks
                .get(i.wrapping_sub(2))
                .filter(|r| i >= 2 && r.kind == TokKind::Ident)
                .map(|r| r.text.clone());
        }
        Some("::") => {
            site.qual = toks
                .get(i.wrapping_sub(2))
                .filter(|q| i >= 2 && q.kind == TokKind::Ident)
                .map(|q| q.text.clone());
        }
        _ => {}
    }
    Some(site)
}

/// One function in the workspace symbol table.
#[derive(Debug)]
pub struct FnSym {
    pub crate_name: String,
    /// Workspace-relative path of the defining file.
    pub file: String,
    pub name: String,
    pub self_ty: Option<String>,
    pub line: u32,
    /// First direct, non-test, non-allowed panic site in the body, if
    /// any: `(line, what)` — e.g. `(120, "expect")`.
    pub panic: Option<(u32, String)>,
    /// Every syntactic call site in the body.
    pub calls: Vec<CallSite>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnSym>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// Crate dir -> in-workspace crate dirs it may call into. `None` when
    /// built from loose fixtures (everything visible).
    deps: Option<BTreeMap<String, BTreeSet<String>>>,
}

impl CallGraph {
    pub fn new(deps: Option<BTreeMap<String, BTreeSet<String>>>) -> Self {
        CallGraph {
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            deps,
        }
    }

    pub fn push(&mut self, sym: FnSym) -> usize {
        let idx = self.fns.len();
        self.by_name.entry(sym.name.clone()).or_default().push(idx);
        self.fns.push(sym);
        idx
    }

    fn crate_visible(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        match &self.deps {
            None => true,
            Some(d) => d.get(from).is_some_and(|set| set.contains(to)),
        }
    }

    /// Resolve `call` made from `self.fns[from]` to candidate definitions.
    /// `liberal` additionally admits method calls through arbitrary
    /// receivers (see module docs for why each consumer picks one mode).
    pub fn resolve(&self, from: usize, call: &CallSite, liberal: bool) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let caller = &self.fns[from];
        let mut out: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                let callee = &self.fns[c];
                if !self.crate_visible(&caller.crate_name, &callee.crate_name) {
                    return false;
                }
                if let Some(q) = &call.qual {
                    // `Type::name` — impl/trait type must agree; a
                    // module-qualified free fn also matches.
                    return callee.self_ty.as_deref() == Some(q.as_str())
                        || callee.self_ty.is_none();
                }
                if call.method {
                    if call.recv.as_deref() == Some("self") {
                        return callee.self_ty.is_some()
                            && callee.self_ty == caller.self_ty
                            && callee.crate_name == caller.crate_name;
                    }
                    return liberal && callee.self_ty.is_some();
                }
                // Bare `name(…)`: free functions only (associated fns
                // require a qualifier at the call site).
                callee.self_ty.is_none()
            })
            .collect();
        // A bare call with a same-crate candidate is a local definition
        // shadowing any same-name import — drop the cross-crate guesses.
        if !call.method
            && call.qual.is_none()
            && out
                .iter()
                .any(|&c| self.fns[c].crate_name == caller.crate_name)
        {
            out.retain(|&c| self.fns[c].crate_name == caller.crate_name);
        }
        out
    }

    /// Shortest call chain (strict edges) from `start` to a function with
    /// a direct panic site, within `cap` hops. Returns the fn indices
    /// along the chain, `start` first.
    pub fn panic_chain(&self, start: usize, cap: usize) -> Option<Vec<usize>> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier = vec![start];
        let mut seen: BTreeSet<usize> = frontier.iter().copied().collect();
        for _hop in 0..=cap {
            let mut next = Vec::new();
            for &f in &frontier {
                if self.fns[f].panic.is_some() {
                    // Reconstruct start -> … -> f.
                    let mut chain = vec![f];
                    let mut cur = f;
                    while let Some(&p) = parent.get(&cur) {
                        chain.push(p);
                        cur = p;
                    }
                    chain.reverse();
                    return Some(chain);
                }
                for call in &self.fns[f].calls {
                    for tgt in self.resolve(f, call, false) {
                        if seen.insert(tgt) {
                            parent.insert(tgt, f);
                            next.push(tgt);
                        }
                    }
                }
            }
            if next.is_empty() {
                return None;
            }
            frontier = next;
        }
        None
    }
}

/// Parse the in-workspace dependency sets out of `crates/*/Cargo.toml`:
/// any `threev-NAME` mention maps to crate dir `NAME`. Coarse (it does not
/// distinguish dev-dependencies) but strictly a superset of real edges,
/// which is the conservative direction for both consumers.
pub fn workspace_deps(root: &std::path::Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let mut deps = BTreeSet::new();
        for line in manifest.lines() {
            let line = line.trim_start();
            if let Some(rest) = line.strip_prefix("threev-") {
                let dep: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                if !dep.is_empty() && dep != name {
                    deps.insert(dep);
                }
            }
        }
        out.insert(name, deps);
    }
    out
}
