//! Property tests: the recursive-descent parser is *total*. Arbitrary
//! token soup — unbalanced brackets, keyword salads, truncated constructs
//! — must never panic, never hang, and never consume a token into more
//! than one run (the walker's each-token-visited-once invariant rests on
//! that partition).

use proptest::prelude::*;
use threev_lint::{lexer, parser};

/// Fragment pool skewed toward the constructs the parser dispatches on:
/// brackets (balanced and not), control keywords, heads, struct literals,
/// attributes, comments, and the tokens the rules care about.
const FRAGMENTS: &[&str] = &[
    "fn f",
    "fn",
    "impl T",
    "impl",
    "trait Q",
    "mod m",
    "struct S",
    "enum E",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "if",
    "else",
    "match",
    "=>",
    "loop",
    "while",
    "for",
    "in",
    "let",
    "=",
    "==",
    "return",
    "break",
    "continue",
    "?",
    ";",
    ",",
    ".",
    "::",
    "->",
    "#",
    "!",
    "x",
    "y",
    "self",
    "wal",
    "Some",
    "None",
    "0",
    "1.5",
    "0x1f",
    "\"s\"",
    "'a",
    "&&",
    "||",
    "<",
    ">",
    "|",
    "&",
    "move",
    "unsafe",
    "_",
    "#[cfg(test)]",
    "#[test]",
    "// line\n",
    "/* block */",
];

fn assemble(picks: &[usize]) -> String {
    let mut s = String::new();
    for &p in picks {
        s.push_str(FRAGMENTS[p % FRAGMENTS.len()]);
        s.push(' ');
    }
    s
}

/// Tokens across all parsed runs must not exceed the file's token count:
/// every token is consumed into at most one run.
fn assert_no_double_consumption(src: &str) {
    let lexed = lexer::lex(src);
    let parsed = parser::parse(&lexed);
    let mut in_runs = 0usize;
    for f in &parsed.fns {
        parser::for_each_token_run(&f.body, &mut |toks| in_runs += toks.len());
    }
    assert!(
        in_runs <= lexed.toks.len(),
        "runs hold {in_runs} tokens but the file only lexes to {} — some \
         token was consumed twice\nsource: {src:?}",
        lexed.toks.len(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..Default::default() })]

    /// Structured soup: sequences of plausible Rust fragments.
    #[test]
    fn parser_is_total_on_fragment_soup(
        picks in proptest::collection::vec(any::<usize>(), 0..160),
    ) {
        assert_no_double_consumption(&assemble(&picks));
    }

    /// Raw printable-byte soup (exercises the lexer's corners too:
    /// unterminated strings, lone quotes, stray backslashes).
    #[test]
    fn parser_is_total_on_byte_soup(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let src: String = bytes.iter().map(|&b| (b % 96 + 32) as char).collect();
        assert_no_double_consumption(&src);
    }
}
