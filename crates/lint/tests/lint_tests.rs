//! Integration tests: the fixture corpus pins each rule family's
//! behaviour (`file:line` exactness, negatives, the allow escape hatch),
//! and `workspace_is_clean` wires the linter into tier-1 `cargo test`.

use std::path::Path;

use threev_lint::{find_root, lint_source, lint_workspace, Finding};

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// `(rule, line)` pairs, sorted — the shape every assertion below uses.
fn shape(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

/// The linter runs over the real tree as part of `cargo test -q`: the
/// workspace must stay clean, with every suppression reasoned.
#[test]
fn workspace_is_clean() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above CARGO_MANIFEST_DIR");
    let findings = lint_workspace(&root).expect("workspace lint runs");
    assert!(
        findings.is_empty(),
        "threev-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn determinism_fires_with_exact_lines() {
    let src = fixture("bad_determinism.rs");
    let findings = lint_source("model", "crates/model/src/bad.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("determinism", 3),
            ("determinism", 5),
            ("determinism", 6),
            ("determinism", 10),
        ],
        "{findings:#?}"
    );
    // The same file inside a non-deterministic crate is out of scope.
    let exempt = lint_source("bench", "crates/bench/src/bad.rs", &src);
    assert!(exempt.is_empty(), "{exempt:#?}");
}

#[test]
fn counter_monotonicity_fires_on_stray_callsites() {
    let src = fixture("bad_counters.rs");
    let findings = lint_source("core", "crates/core/src/poll.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![("counter-monotonicity", 5), ("counter-monotonicity", 9)],
        "{findings:#?}"
    );
    // The sanctioned call sites may increment — but the flow rules take
    // over there (an increment still needs its write-ahead record and a
    // discharge before exit), and the struct-literal back door stays
    // closed even for them.
    let sanctioned = lint_source("core", "crates/core/src/node/gc.rs", &src);
    assert_eq!(
        shape(&sanctioned),
        vec![
            ("counter-balance", 5),
            ("wal-hook-coverage", 5),
            ("counter-monotonicity", 9),
        ],
        "{sanctioned:#?}"
    );
}

#[test]
fn counter_monotonicity_fires_inside_the_impl() {
    let src = fixture("bad_counters_impl.rs");
    let findings = lint_source("core", "crates/core/src/counters.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("counter-monotonicity", 7),  // pub map field
            ("counter-monotonicity", 11), // fn reset_*
            ("counter-monotonicity", 12), // literal decrement
        ],
        "{findings:#?}"
    );
}

#[test]
fn wal_hook_coverage_fires_on_unlogged_mutations() {
    let src = fixture("bad_wal_hook.rs");
    let findings = lint_source("core", "crates/core/src/node/exec.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("counter-balance", 7), // the unlogged inc_request is also undischarged
            ("wal-hook-coverage", 7),
            ("wal-hook-coverage", 11),
        ],
        "{findings:#?}"
    );
    // Outside the node engine the rule does not apply.
    let exempt = lint_source("core", "crates/core/src/advance.rs", &src);
    assert!(
        !exempt.iter().any(|f| f.rule == "wal-hook-coverage"),
        "{exempt:#?}"
    );
}

#[test]
fn panic_hygiene_fires_but_asserts_pass() {
    let src = fixture("bad_panic.rs");
    let findings = lint_source("core", "crates/core/src/msg.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("panic-hygiene", 4),
            ("panic-hygiene", 5),
            ("panic-hygiene", 8),
            ("panic-hygiene", 9),
        ],
        "{findings:#?}"
    );
}

#[test]
fn unsafe_forbid_fires_on_crate_roots() {
    let src = fixture("bad_unsafe.rs");
    let findings = lint_source("model", "crates/model/src/lib.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("unsafe-forbid", 1), // missing #![forbid(unsafe_code)]
            ("unsafe-forbid", 6), // the unsafe block itself
        ],
        "{findings:#?}"
    );
}

/// The `shard` crate sits in the deterministic tier: its shuttle replays
/// recorded cross-partition schedules, so wall clocks, hash iteration
/// order, and panics are all policy violations there — while the same
/// source inside the (non-deterministic) threaded runtime is out of scope.
#[test]
fn shard_policy_holds_the_deterministic_tier() {
    let src = fixture("bad_shard.rs");
    let findings = lint_source("shard", "crates/shard/src/cluster.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("determinism", 3),   // HashMap import
            ("determinism", 5),   // HashMap in a signature
            ("panic-hygiene", 6), // .unwrap()
            ("determinism", 9),   // Instant in a signature
            ("determinism", 10),  // Instant::now()
        ],
        "{findings:#?}"
    );
    let exempt = lint_source("runtime", "crates/runtime/src/bad.rs", &src);
    assert!(exempt.is_empty(), "{exempt:#?}");
}

/// The `storage` crate is in the deterministic tier, and the paged
/// backend keeps it there: order-random maps, wall-clock stamps, and bare
/// `.unwrap()` on page I/O must all fire. Non-deterministic tiers (e.g.
/// `bench`) stay exempt from the determinism half.
#[test]
fn storage_backend_holds_the_deterministic_tier() {
    let src = fixture("bad_storage_backend.rs");
    let findings = lint_source("storage", "crates/storage/src/paged.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("determinism", 6),    // HashMap import
            ("determinism", 9),    // HashMap as the page map
            ("determinism", 14),   // SystemTime wall clock
            ("panic-hygiene", 17), // bare .unwrap() on page I/O
        ],
        "{findings:#?}"
    );
    let exempt = lint_source("bench", "crates/bench/src/bad.rs", &src);
    assert!(
        shape(&exempt)
            .iter()
            .all(|(rule, _)| *rule == "panic-hygiene"),
        "bench is exempt from determinism, not panic-hygiene: {exempt:#?}"
    );
}

/// The `server` crate fronts sockets, so wall clocks and hash maps are
/// its business — the determinism family must stay silent. But a panic
/// in a worker thread kills a connection (or the engine), so the
/// panic-hygiene family applies in full: `.unwrap()`, `panic!`, and
/// `unreachable!` all fire. The same source under the `runtime` policy
/// (no panic hygiene) produces nothing.
#[test]
fn server_policy_keeps_panic_hygiene_without_determinism() {
    let src = fixture("bad_server.rs");
    let findings = lint_source("server", "crates/server/src/server.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("panic-hygiene", 10), // .unwrap() on the route map
            ("panic-hygiene", 16), // panic! on a missing frame
            ("panic-hygiene", 22), // unreachable! in negotiation
        ],
        "{findings:#?}"
    );
    let exempt = lint_source("runtime", "crates/runtime/src/bad.rs", &src);
    assert!(exempt.is_empty(), "{exempt:#?}");
}

/// The striped execution path (PR 10) is node-engine code, so every
/// family applies at once: determinism (order-random routing maps, wall
/// clocks), panic hygiene (unwrap on stripe lookup), and WAL-hook
/// coverage (an unlogged version switch) — while the pure hash routing
/// the real `stripe_of` uses stays silent.
#[test]
fn stripe_fixture_holds_the_engine_policies() {
    let src = fixture("bad_stripe.rs");
    let findings = lint_source("core", "crates/core/src/node/stripes.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("determinism", 6),        // HashMap import
            ("determinism", 9),        // HashMap routing table in a signature
            ("panic-hygiene", 10),     // .unwrap() on stripe lookup
            ("determinism", 13),       // Instant in a signature
            ("determinism", 14),       // Instant::now()
            ("wal-hook-coverage", 18), // version switch with no WAL hook
        ],
        "{findings:#?}"
    );
    // The same source in the threaded runtime is out of every family's
    // scope.
    let exempt = lint_source("runtime", "crates/runtime/src/bad.rs", &src);
    assert!(exempt.is_empty(), "{exempt:#?}");
}

/// The v2 WAL rule is branch-sensitive: a hook on one arm of an `if`
/// does not cover the join below it; hooks on every arm do.
#[test]
fn wal_coverage_is_branch_sensitive() {
    let src = fixture("bad_wal_branch.rs");
    let findings = lint_source("core", "crates/core/src/node/exec.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![("wal-hook-coverage", 9)],
        "{findings:#?}"
    );
}

/// `counter-balance`: an `inc_request` left open on *some* path to a
/// function exit fires; discharge via completion, job execution, or the
/// NC-gate handoff on every path does not.
#[test]
fn counter_balance_fires_on_the_leaky_path_only() {
    let src = fixture("bad_counter_balance.rs");
    let findings = lint_source("core", "crates/core/src/node/exec.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![("counter-balance", 7)],
        "{findings:#?}"
    );
    // Outside the node engine the flow rules do not apply.
    let exempt = lint_source("core", "crates/core/src/advance.rs", &src);
    assert!(
        !exempt.iter().any(|f| f.rule == "counter-balance"),
        "{exempt:#?}"
    );
}

/// `lock-discipline`: grants dropped on an early-return path, and an
/// acquire whose function never journals a `LockAcquire`.
#[test]
fn lock_discipline_flags_dropped_grants_and_unjournaled_acquires() {
    let src = fixture("bad_lock.rs");
    let findings = lint_source("core", "crates/core/src/node/exec.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![("lock-discipline", 7), ("lock-discipline", 22)],
        "{findings:#?}"
    );
}

/// The transitive half of panic-hygiene: a protocol-crate fn calling a
/// helper crate whose callee can unwrap is flagged at the call site, with
/// the full chain and the panic's file:line in the message.
#[test]
fn transitive_panic_chain_crosses_crates() {
    use threev_lint::{lint_files, Options, SourceFile};
    let core_src = "\
fn drive(x: u64) -> u64 {
    render_row(x)
}
";
    let bench_src = "\
pub fn render_row(x: u64) -> u64 {
    inner(x)
}

fn inner(x: u64) -> u64 {
    x.checked_mul(2).unwrap()
}
";
    let files = [
        SourceFile {
            crate_name: "core".into(),
            rel_path: "crates/core/src/drive.rs".into(),
            src: core_src.into(),
        },
        SourceFile {
            crate_name: "bench".into(),
            rel_path: "crates/bench/src/report.rs".into(),
            src: bench_src.into(),
        },
    ];
    let findings = lint_files(&files, None, &Options::default());
    assert_eq!(
        shape(&findings),
        vec![("panic-hygiene", 2)],
        "{findings:#?}"
    );
    let f = &findings[0];
    assert_eq!(f.file, "crates/core/src/drive.rs");
    assert!(
        f.msg
            .contains("core::drive -> bench::render_row -> bench::inner"),
        "{}",
        f.msg
    );
    assert!(f.msg.contains("crates/bench/src/report.rs:6"), "{}", f.msg);
}

/// PR 9 enrolled `analysis` in the full deterministic tier: the auditor
/// is an oracle, so hash iteration order and unwraps are violations.
#[test]
fn analysis_policy_holds_the_deterministic_tier() {
    let src = fixture("bad_analysis.rs");
    let findings = lint_source("analysis", "crates/analysis/src/audit.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("determinism", 5),    // HashMap import
            ("determinism", 7),    // HashMap in the signature
            ("determinism", 8),    // HashMap::new()
            ("panic-hygiene", 10), // .unwrap() mid-audit
        ],
        "{findings:#?}"
    );
}

/// Workload generators feed the deterministic simulator: unseeded RNGs
/// and wall clocks break seed-reproducibility, so the tier applies.
#[test]
fn workload_policy_holds_the_deterministic_tier() {
    let src = fixture("bad_workload.rs");
    let findings = lint_source("workload", "crates/workload/src/arrivals.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("determinism", 5),    // Instant import
            ("determinism", 8),    // Instant::now()
            ("determinism", 9),    // thread_rng()
            ("panic-hygiene", 10), // .unwrap() in the generator
        ],
        "{findings:#?}"
    );
    // The same source under the bench policy produces nothing at all.
    let exempt = lint_source("bench", "crates/bench/src/bad.rs", &src);
    assert!(exempt.is_empty(), "{exempt:#?}");
}

#[test]
fn clean_fixture_produces_no_findings() {
    let src = fixture("clean.rs");
    let findings = lint_source("core", "crates/core/src/window.rs", &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn allow_escape_hatch_suppresses_and_reports_misuse() {
    let src = fixture("allows.rs");
    let findings = lint_source("model", "crates/model/src/allows.rs", &src);
    assert_eq!(
        shape(&findings),
        vec![
            ("unused-allow", 9),  // allow that suppresses nothing
            ("allow-syntax", 14), // blanket allow with no rule/reason
            ("allow-syntax", 19), // unknown rule id
            ("determinism", 24),  // outside the window: still reported
            ("determinism", 25),
        ],
        "{findings:#?}"
    );
    // The reasoned allow on line 5 swallowed the line-7 HashMap import.
    assert!(!findings.iter().any(|f| f.line == 7), "{findings:#?}");
}
