//! Fixture: a well-behaved protocol file — zero findings expected under
//! the strictest policy (deterministic + panic hygiene + unsafe forbid).

use std::collections::{BTreeMap, BTreeSet};

pub struct Window {
    starts: BTreeMap<u64, u64>,
    seen: BTreeSet<u64>,
}

impl Window {
    pub fn observe(&mut self, at: u64) -> Result<u64, String> {
        self.seen.insert(at);
        match self.starts.get(&at) {
            Some(v) => Ok(*v),
            None => Err(format!("no window at {at}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn test_side_freedom() {
        // Test code may use HashMap and unwrap freely.
        let mut m = HashMap::new();
        m.insert(1u8, 2u8);
        assert_eq!(*m.get(&1).unwrap(), 2);
    }
}
