//! Fixture: stripe-flavoured violations inside the node engine. The
//! striped execution path stays in the deterministic tier, so an
//! order-random routing map, a wall-clock stripe timer, a bare unwrap on
//! stripe lookup, and an unlogged version-switch install must all fire.

use std::collections::HashMap;

impl ThreeVNode {
    fn route_over_map(&self, routes: &HashMap<Key, usize>, key: Key) -> usize {
        *routes.get(&key).unwrap()
    }

    fn time_stripe(&self) -> std::time::Instant {
        std::time::Instant::now()
    }

    fn install_stripes_unlogged(&mut self, v: VersionNo) {
        self.vu = v;
    }

    fn stripe_of_is_fine(&self, key: Key, n: usize) -> usize {
        // Pure hash routing: deterministic, panic-free — must NOT fire.
        (key.0.wrapping_mul(SPREAD) >> 32) as usize % n
    }
}
