//! Fixture: lock-discipline. Grants handed back by `release_all` must be
//! processed on every path, and lock-table mutations must be journalled.

impl Node {
    fn release_dropping_grants(&mut self, txn: TxnId) {
        self.wal(WalOp::LockRelease { txn });
        let grants = self.locks.release_all(txn);
        if grants.is_empty() {
            return;
        }
        self.stash = grants;
    }

    fn release_processed(&mut self, txn: TxnId) {
        self.wal(WalOp::LockRelease { txn });
        let grants = self.locks.release_all(txn);
        self.process_grants(ctx, grants);
    }

    fn acquire_unjournaled(&mut self, key: Key) {
        self.wal(WalOp::Touch { key });
        self.locks.acquire(key, mode, txn);
    }
}
