//! Fixture: `unsafe-forbid` must fire twice when linted as a crate root
//! (`src/lib.rs`): once for the missing `#![forbid(unsafe_code)]` and
//! once for the `unsafe` block.

pub fn peek(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}
