//! Fixture: violations a storage backend must not commit. The paged
//! backend's bytes feed recovery and (via checkpoint sizes) the stats the
//! DES replays, so `storage` sits in the deterministic tier: no
//! order-random maps, no wall clocks, and fail-stop I/O must be an
//! explicit reasoned suppression — bare `.unwrap()` is banned.
use std::collections::HashMap;

struct LeakyBackend {
    pages: HashMap<u32, Vec<u8>>,
}

impl LeakyBackend {
    fn flush(&mut self) -> u64 {
        let stamp = std::time::SystemTime::now();
        let mut bytes = 0;
        for (page, buf) in &self.pages {
            std::fs::write(format!("{page}.bin"), buf).unwrap();
            bytes += buf.len() as u64;
        }
        let _ = stamp.elapsed();
        bytes
    }
}
