//! Fixture: `wal-hook-coverage` must fire (linted under a virtual path
//! inside `crates/core/src/node/`): a counter increment and a durable
//! field reassignment with no WAL hook anywhere in the file.

impl ThreeVNode {
    pub fn apply_unlogged(&mut self, version: VersionNo, to: NodeId) {
        self.counters.inc_request(version, to);
    }

    pub fn advance_unlogged(&mut self, v: VersionNo) {
        self.vu = v;
    }

    pub fn compare_only(&self, v: VersionNo) -> bool {
        // An equality test is not an assignment: must NOT fire.
        self.vu == v
    }
}
