//! Fixture: workload generators feed the deterministic simulator — the
//! same seed must reproduce the same arrival stream on every run, and a
//! generator panic kills a whole experiment sweep.

use std::time::Instant;

fn arrivals(n: usize) -> Vec<u64> {
    let t0 = Instant::now();
    let mut rng = rand::thread_rng();
    let first = sample(&mut rng).unwrap();
    vec![first + t0.elapsed().as_micros() as u64; n]
}
