//! Fixture: violations the `shard` crate policy must catch — the DES
//! shuttle is replayed, so it is held to the deterministic tier.
use std::collections::HashMap;

fn route(order: &mut HashMap<u64, u16>) -> u16 {
    *order.get(&0).unwrap()
}

fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
