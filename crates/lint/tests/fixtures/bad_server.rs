//! Fixture: the `server` crate policy — wall clocks are its job, but a
//! worker thread must never unwind, so panic hygiene still applies.
use std::collections::HashMap;

fn latency(started: std::time::Instant) -> u64 {
    std::time::Instant::now().duration_since(started).as_micros() as u64
}

fn route(conns: &HashMap<u64, u16>) -> u16 {
    *conns.get(&0).unwrap()
}

fn reply(frame: Option<&[u8]>) -> &[u8] {
    match frame {
        Some(f) => f,
        None => panic!("no frame"),
    }
}

fn negotiate(version: u16) -> u16 {
    if version == 0 {
        unreachable!("version zero is rejected at decode");
    }
    version
}
