//! Fixture: the `lint-allow` escape hatch. One reasoned allow suppresses
//! its finding; a stale allow, a reasonless allow, and an unknown-rule
//! allow each produce a meta-finding of their own.

// lint-allow(determinism): fixture exercising the escape hatch; this map
// is constructed and dropped without iteration.
use std::collections::HashMap;

// lint-allow(panic-hygiene): nothing below panics, so this is stale
pub fn quiet() -> u64 {
    7
}

// lint-allow: blanket suppression with no rule or reason
pub fn also_quiet() -> u64 {
    8
}

// lint-allow(no-such-rule): the rule id has a typo
pub fn still_quiet() -> u64 {
    9
}

pub fn state() -> HashMap<u64, u64> {
    HashMap::new()
}
