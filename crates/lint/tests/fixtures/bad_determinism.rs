//! Fixture: the `determinism` rule must fire on the lines noted below.

use std::collections::HashMap;

pub fn state() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn pause() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

#[cfg(test)]
mod tests {
    // Test-only code is out of scope: this must NOT fire.
    use std::collections::HashMap;

    #[test]
    fn ok() {
        let _ = HashMap::<u8, u8>::new();
    }
}
