//! Fixture: `counter-monotonicity` must fire on a stray increment call
//! site (linted under a virtual path outside the sanctioned list).

pub fn sneaky(counters: &mut CounterTable, v: VersionNo, n: NodeId) {
    counters.inc_request(v, n);
}

pub fn forge() -> CounterTable {
    CounterTable { versions: Default::default() }
}
