//! Fixture: counter-balance. An `inc_request` must reach a completion,
//! doom, or handoff on every path before the function exits (§4.3).

impl Node {
    fn submit_leaky(&mut self, ok: bool) {
        self.wal(WalOp::IncRequest { version });
        self.counters.inc_request(version, to);
        if ok {
            self.run_job(ctx, job);
        }
    }

    fn submit_balanced(&mut self, ok: bool) {
        self.wal(WalOp::IncRequest { version });
        self.counters.inc_request(version, to);
        if ok {
            self.run_job(ctx, job);
        } else {
            self.counters.inc_completion(version, to);
        }
    }

    fn submit_parked(&mut self, job: Job) {
        self.wal(WalOp::IncRequest { version });
        self.counters.inc_request(version, to);
        self.nc_waiting.push(job);
    }
}
