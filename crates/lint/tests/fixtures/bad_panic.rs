//! Fixture: `panic-hygiene` must fire on each escape below.

pub fn handle(msg: Option<Msg>, map: &BTreeMap<u64, u64>) -> u64 {
    let m = msg.unwrap();
    let v = map.get(&0).expect("entry");
    match m {
        Msg::Known => *v,
        Msg::Odd => panic!("bad message"),
        _ => unreachable!(),
    }
}

pub fn checked(x: u64) {
    // Invariant assertions are deliberately admitted: must NOT fire.
    assert!(x > 0, "x positive");
    debug_assert_eq!(x % 2, 0);
}
