//! Fixture: `counter-monotonicity` must fire inside the counter
//! implementation itself (linted under the virtual path
//! `crates/core/src/counters.rs`): a `pub` map field, a non-monotone
//! method name, and a literal decrement.

pub struct VersionCounters {
    pub requests_to: BTreeMap<NodeId, u64>,
}

impl VersionCounters {
    pub fn reset_request(&mut self, to: NodeId) {
        *self.requests_to.entry(to).or_insert(1) -= 1;
    }
}
