//! Fixture: flow-sensitive WAL coverage. A hook on one branch does not
//! cover the join below it; a hook on every branch (or above the split) does.

impl Node {
    fn apply_half_logged(&mut self, fast: bool) {
        if fast {
            self.wal(WalOp::Update { key });
        }
        self.store.update(key, version, op);
    }

    fn apply_logged_everywhere(&mut self, fast: bool) {
        if fast {
            self.wal(WalOp::Update { key });
        } else {
            self.wal(WalOp::Touch { key });
        }
        self.store.update(key, version, op);
    }
}
