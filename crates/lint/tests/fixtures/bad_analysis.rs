//! Fixture: the auditor is an oracle — hash iteration order reorders its
//! violation reports across runs, and an unwrap turns "the audit found a
//! bug" into "the audit crashed".

use std::collections::HashMap;

fn summarize(records: &[Record]) -> HashMap<u64, u64> {
    let mut out = HashMap::new();
    for r in records {
        let done = r.completed.unwrap();
        out.insert(r.id, done);
    }
    out
}
