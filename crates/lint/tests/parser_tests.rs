//! Structural unit tests for the item parser: fn discovery, impl/trait
//! self types, branch shapes, struct-literal disambiguation, let-else,
//! and nested items.

use threev_lint::lexer;
use threev_lint::parser::{self, Stmt};

fn parse(src: &str) -> parser::ParsedFile {
    parser::parse(&lexer::lex(src))
}

#[test]
fn finds_fns_with_self_types_and_lines() {
    let src = "\
impl Node {
    fn alpha(&mut self) { self.x = 1; }
}
trait Gauge {
    fn beta(&self) -> u64 { 0 }
}
fn gamma() {}
";
    let p = parse(src);
    let got: Vec<(&str, Option<&str>, u32)> = p
        .fns
        .iter()
        .map(|f| (f.name.as_str(), f.self_ty.as_deref(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("alpha", Some("Node"), 2),
            ("beta", Some("Gauge"), 5),
            ("gamma", None, 7),
        ],
    );
}

#[test]
fn generic_impl_headers_resolve_to_the_type_name() {
    let src = "impl<T: Clone> Window<T> { fn push(&mut self, t: T) { self.go(t); } }";
    let p = parse(src);
    assert_eq!(p.fns[0].self_ty.as_deref(), Some("Window"));
    // `impl Trait for Type` binds to the type, not the trait.
    let p = parse("impl Replay for Shuttle { fn step(&mut self) { tick(); } }");
    assert_eq!(p.fns[0].self_ty.as_deref(), Some("Shuttle"));
}

#[test]
fn if_chain_shape_and_else_tracking() {
    let src = "fn f(a: bool, b: bool) {
        if a { one(); } else if b { two(); } else { three(); }
        if a { four(); }
    }";
    let p = parse(src);
    let ifs: Vec<(usize, bool)> = p.fns[0]
        .body
        .stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::If { arms, has_else } => Some((arms.len(), *has_else)),
            _ => None,
        })
        .collect();
    // 3 arms (the trailing else is an empty-head arm) then a bare if.
    assert_eq!(ifs, vec![(3, true), (1, false)]);
}

#[test]
fn match_collects_every_arm_with_patterns() {
    let src = "fn f(d: Decision) -> u32 {
        match d {
            Decision::Granted => 1,
            Decision::Waiting { queue } => { park(); 2 }
            _ => loop { spin(); },
        }
    }";
    let p = parse(src);
    let Some(Stmt::Match { head, arms }) = p.fns[0].body.stmts.first() else {
        panic!("expected a match, got {:#?}", p.fns[0].body);
    };
    assert_eq!(head[0].text, "d");
    assert_eq!(arms.len(), 3);
    assert_eq!(arms[0].0[0].text, "Decision");
    // The third arm's body is a control construct, not a flat leaf.
    assert!(matches!(arms[2].1.stmts[0], Stmt::Loop { .. }));
}

#[test]
fn struct_literals_do_not_open_blocks() {
    // `Parked { keys, next: 0, job }` must stay inside the leaf: a parser
    // that treats it as a block would see a phantom branch point.
    let src = "fn f(&mut self) { self.park(Parked { keys, next: 0, job }); done(); }";
    let p = parse(src);
    assert!(
        p.fns[0]
            .body
            .stmts
            .iter()
            .all(|s| matches!(s, Stmt::Leaf(_))),
        "{:#?}",
        p.fns[0].body
    );
}

#[test]
fn let_else_is_a_one_armed_non_exhaustive_branch() {
    let src = "fn f(&mut self, txn: TxnId) {
        let Some(job) = self.take(txn) else { return; };
        self.run(job);
    }";
    let p = parse(src);
    let shapes: Vec<bool> = p.fns[0]
        .body
        .stmts
        .iter()
        .filter_map(|s| match s {
            Stmt::If { arms, has_else } => Some(arms.len() == 1 && !has_else),
            _ => None,
        })
        .collect();
    // Exactly one diverging-arm branch whose fallthrough (binding
    // succeeded) survives.
    assert_eq!(shapes, vec![true]);
}

#[test]
fn nested_fns_are_items_not_flow() {
    let src = "fn outer() {
        fn inner() { helper(); }
        inner();
    }";
    let p = parse(src);
    let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, vec!["inner", "outer"]);
    // `helper()` belongs to inner's body only — outer's runs must not
    // contain it (it does not execute when outer is entered).
    let mut outer_texts = Vec::new();
    let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
    parser::for_each_token_run(&outer.body, &mut |toks| {
        outer_texts.extend(toks.iter().map(|t| t.text.clone()));
    });
    assert!(
        !outer_texts.contains(&"helper".to_string()),
        "{outer_texts:?}"
    );
    assert!(outer_texts.contains(&"inner".to_string()));
}

#[test]
fn test_fns_are_marked() {
    let src = "fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn probe() { assert!(true); }
}";
    let p = parse(src);
    let flags: Vec<(&str, bool)> = p.fns.iter().map(|f| (f.name.as_str(), f.in_test)).collect();
    assert_eq!(flags, vec![("live", false), ("probe", true)]);
}
