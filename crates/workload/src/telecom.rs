//! Telephone call recording — the workload that motivated the paper.
//!
//! "Our work was motivated by a proprietary telephone billing application."
//! "AT&T's call recording system records several million calls every hour."
//!
//! Nodes are regional switches. Per `(switch, account)` the schema holds a
//! **minutes counter** and a **call-detail journal**. A *call* is recorded
//! at the originating switch and (for inter-region calls) at the
//! terminating switch — one commuting update transaction spanning two
//! nodes. A *bill generation* reads the account's records across every
//! switch; the §1 correctness anomaly is a bill that includes only one leg
//! of a call.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use threev_core::client::Arrival;
use threev_model::{Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnPlan, UpdateOp};
use threev_sim::SimDuration;

use crate::arrivals::PoissonArrivals;
use crate::zipf::ZipfSampler;

/// Key id for an account's minutes counter at a switch.
pub fn minutes_key(switch: u16, account: u64) -> Key {
    Key((3 << 56) | ((switch as u64) << 40) | account)
}

/// Key id for an account's call-detail journal at a switch.
pub fn cdr_key(switch: u16, account: u64) -> Key {
    Key((4 << 56) | ((switch as u64) << 40) | account)
}

/// Telecom workload parameters.
#[derive(Clone, Debug)]
pub struct TelecomWorkload {
    /// Number of switches (= database nodes).
    pub switches: u16,
    /// Number of billed accounts.
    pub accounts: u64,
    /// Poisson call rate (calls per second).
    pub rate_tps: f64,
    /// Percentage of arrivals that are bill generations (read-only).
    pub read_pct: u8,
    /// Percentage of calls that cross regions (two-switch transactions).
    pub inter_region_pct: u8,
    /// Workload horizon.
    pub duration: SimDuration,
    /// Account-popularity skew.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TelecomWorkload {
    fn default() -> Self {
        TelecomWorkload {
            switches: 8,
            accounts: 1_000,
            rate_tps: 5_000.0,
            read_pct: 10,
            inter_region_pct: 60,
            duration: SimDuration::from_secs(1),
            zipf_s: 1.0,
            seed: 0xCA11,
        }
    }
}

impl TelecomWorkload {
    /// The schema: minutes + CDR journal per (switch, account).
    pub fn schema(&self) -> Schema {
        let mut decls = Vec::with_capacity(self.switches as usize * self.accounts as usize * 2);
        for s in 0..self.switches {
            for a in 0..self.accounts {
                decls.push(KeyDecl::counter(minutes_key(s, a), NodeId(s), 0));
                decls.push(KeyDecl::journal(cdr_key(s, a), NodeId(s)));
            }
        }
        Schema::new(decls)
    }

    /// Record a call by `account` from `orig` to `dest` (equal for local
    /// calls) of `minutes` minutes.
    pub fn call(&self, account: u64, orig: u16, dest: u16, minutes: i64, tag: u32) -> TxnPlan {
        let mut root = SubtxnPlan::new(NodeId(orig))
            .update(minutes_key(orig, account), UpdateOp::Add(minutes))
            .update(
                cdr_key(orig, account),
                UpdateOp::Append {
                    amount: minutes,
                    tag,
                },
            );
        if dest != orig {
            root = root.child(
                SubtxnPlan::new(NodeId(dest))
                    .update(minutes_key(dest, account), UpdateOp::Add(minutes))
                    .update(
                        cdr_key(dest, account),
                        UpdateOp::Append {
                            amount: minutes,
                            tag,
                        },
                    ),
            );
        }
        TxnPlan::commuting(root)
    }

    /// Generate `account`'s bill: read minutes and CDRs at every switch.
    pub fn bill(&self, account: u64, root_switch: u16) -> TxnPlan {
        let mut root = SubtxnPlan::new(NodeId(root_switch))
            .read(minutes_key(root_switch, account))
            .read(cdr_key(root_switch, account));
        for s in 0..self.switches {
            if s != root_switch {
                root = root.child(
                    SubtxnPlan::new(NodeId(s))
                        .read(minutes_key(s, account))
                        .read(cdr_key(s, account)),
                );
            }
        }
        TxnPlan::read_only(root)
    }

    /// Generate the arrival stream.
    pub fn arrivals(&self) -> Vec<Arrival> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let zipf = ZipfSampler::new(self.accounts, self.zipf_s);
        let times = PoissonArrivals::new(self.rate_tps, threev_sim::SimTime::ZERO, self.duration)
            .collect_all(&mut rng);
        let mut out = Vec::with_capacity(times.len());
        for at in times {
            let account = zipf.sample(&mut rng);
            if rng.gen_range(0..100u8) < self.read_pct {
                let s = rng.gen_range(0..self.switches);
                out.push(Arrival::at(at, self.bill(account, s)));
            } else {
                let orig = rng.gen_range(0..self.switches);
                let dest = if self.switches > 1 && rng.gen_range(0..100u8) < self.inter_region_pct {
                    let mut d = rng.gen_range(0..self.switches - 1);
                    if d >= orig {
                        d += 1;
                    }
                    d
                } else {
                    orig
                };
                let minutes = rng.gen_range(1..120);
                let tag = rng.gen_range(1..8);
                out.push(Arrival::at(
                    at,
                    self.call(account, orig, dest, minutes, tag),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::TxnKind;

    fn small() -> TelecomWorkload {
        TelecomWorkload {
            switches: 4,
            accounts: 50,
            rate_tps: 1_000.0,
            read_pct: 15,
            inter_region_pct: 50,
            duration: SimDuration::from_millis(100),
            zipf_s: 1.0,
            seed: 2,
        }
    }

    #[test]
    fn schema_and_plans_consistent() {
        let w = small();
        let schema = w.schema();
        assert_eq!(schema.n_nodes(), 4);
        for a in w.arrivals() {
            a.plan.validate().unwrap();
            for (node, step) in a.plan.root.all_steps() {
                assert_eq!(schema.home(step.key()), Some(node));
            }
        }
    }

    #[test]
    fn mix_of_local_and_inter_region() {
        let w = small();
        let (mut local, mut inter) = (0, 0);
        for a in w.arrivals() {
            if a.plan.kind == TxnKind::Commuting {
                if a.plan.root.count() == 1 {
                    local += 1;
                } else {
                    inter += 1;
                    assert_eq!(a.plan.root.count(), 2);
                }
            }
        }
        assert!(local > 0 && inter > 0, "local={local} inter={inter}");
    }

    #[test]
    fn bills_span_all_switches() {
        let w = small();
        let bill = w.bill(7, 2);
        assert_eq!(bill.root.nodes().len(), 4);
        assert_eq!(bill.keys_read().len(), 8);
    }
}
