//! Workload generators for data-recording systems (paper §6).
//!
//! "Examples of data recording systems include (a) operation monitoring
//! systems …, (b) information gathering systems …, and (c) transaction
//! recording systems for credit card transactions, telephone calls, stock
//! trades, and flight reservations."
//!
//! Every profile in this crate produces the two artifacts an engine run
//! needs — a [`threev_model::Schema`] (the fragmented key layout) and a
//! time-ordered `Vec<Arrival>` of transaction plans — with the defining
//! structure of the domain: update transactions *insert observations and
//! bump derived summaries* (commuting), reads audit across nodes
//! (non-commuting with updates):
//!
//! * [`hospital`] — the paper's §1 motivating example: multi-department
//!   patient visits and balance inquiries;
//! * [`telecom`] — AT&T-style call recording across switches (the paper's
//!   original motivation; "several million calls every hour");
//! * [`retail`] — point-of-sale recording with non-commuting price changes,
//!   exercising NC3V;
//! * [`synthetic`] — the fully parameterised mix used by the scaling and
//!   ablation experiments;
//! * [`zipf`], [`arrivals`] — skewed entity sampling and Poisson arrival
//!   processes (implemented here; no external dependencies beyond `rand`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod arrivals;
pub mod hospital;
pub mod retail;
pub mod synthetic;
pub mod telecom;
pub mod zipf;

pub use arrivals::PoissonArrivals;
pub use hospital::HospitalWorkload;
pub use retail::RetailWorkload;
pub use synthetic::{SyntheticParams, SyntheticWorkload};
pub use telecom::TelecomWorkload;
pub use zipf::ZipfSampler;
