//! The paper's §1 motivating example: a hospital with multiple departments.
//!
//! "A visit by a patient results in charges from several departments. …
//! The recording of a patient visit is thus a multi-database update
//! transaction that updates databases of several departments. … There are
//! also simultaneous read operations in response to patient inquiries, and
//! to generate billing statements."
//!
//! Each department is one node. Per `(department, patient)` the schema
//! holds a **balance counter** (summary) and a **charges journal**
//! (recorded observations). A *visit* charges 1..=`max_fanout` departments
//! (commuting `Add` + `Append`); an *inquiry* reads the patient's balance
//! and charges across every department.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use threev_core::client::Arrival;
use threev_model::{Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnPlan, UpdateOp};
use threev_sim::SimDuration;

use crate::arrivals::PoissonArrivals;
use crate::zipf::ZipfSampler;

/// Key id for a patient's balance counter at a department.
pub fn balance_key(dept: u16, patient: u64) -> Key {
    Key((1 << 56) | ((dept as u64) << 40) | patient)
}

/// Key id for a patient's charges journal at a department.
pub fn charges_key(dept: u16, patient: u64) -> Key {
    Key((2 << 56) | ((dept as u64) << 40) | patient)
}

/// Hospital workload parameters.
#[derive(Clone, Debug)]
pub struct HospitalWorkload {
    /// Number of departments (= database nodes).
    pub departments: u16,
    /// Number of patients.
    pub patients: u64,
    /// Poisson arrival rate (transactions per second).
    pub rate_tps: f64,
    /// Percentage of arrivals that are inquiries (read-only).
    pub read_pct: u8,
    /// Maximum departments charged per visit.
    pub max_fanout: u16,
    /// Workload horizon.
    pub duration: SimDuration,
    /// Patient-popularity skew.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HospitalWorkload {
    fn default() -> Self {
        HospitalWorkload {
            departments: 4,
            patients: 200,
            rate_tps: 2_000.0,
            read_pct: 20,
            max_fanout: 3,
            duration: SimDuration::from_secs(1),
            zipf_s: 0.9,
            seed: 0x5074,
        }
    }
}

impl HospitalWorkload {
    /// The schema: balance + charges per (department, patient).
    pub fn schema(&self) -> Schema {
        let mut decls = Vec::with_capacity(self.departments as usize * self.patients as usize * 2);
        for d in 0..self.departments {
            for p in 0..self.patients {
                decls.push(KeyDecl::counter(balance_key(d, p), NodeId(d), 0));
                decls.push(KeyDecl::journal(charges_key(d, p), NodeId(d)));
            }
        }
        Schema::new(decls)
    }

    /// A visit plan for `patient` touching `depts` (first = root).
    pub fn visit(&self, patient: u64, depts: &[u16], amount: i64, tag: u32) -> TxnPlan {
        let mut root = SubtxnPlan::new(NodeId(depts[0]))
            .update(balance_key(depts[0], patient), UpdateOp::Add(amount))
            .update(
                charges_key(depts[0], patient),
                UpdateOp::Append { amount, tag },
            );
        for &d in &depts[1..] {
            root = root.child(
                SubtxnPlan::new(NodeId(d))
                    .update(balance_key(d, patient), UpdateOp::Add(amount))
                    .update(charges_key(d, patient), UpdateOp::Append { amount, tag }),
            );
        }
        TxnPlan::commuting(root)
    }

    /// A billing inquiry for `patient` across every department, rooted at
    /// `root_dept`.
    pub fn inquiry(&self, patient: u64, root_dept: u16) -> TxnPlan {
        let mut root = SubtxnPlan::new(NodeId(root_dept))
            .read(balance_key(root_dept, patient))
            .read(charges_key(root_dept, patient));
        for d in 0..self.departments {
            if d != root_dept {
                root = root.child(
                    SubtxnPlan::new(NodeId(d))
                        .read(balance_key(d, patient))
                        .read(charges_key(d, patient)),
                );
            }
        }
        TxnPlan::read_only(root)
    }

    /// Generate the arrival stream.
    pub fn arrivals(&self) -> Vec<Arrival> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let zipf = ZipfSampler::new(self.patients, self.zipf_s);
        let times = PoissonArrivals::new(self.rate_tps, threev_sim::SimTime::ZERO, self.duration)
            .collect_all(&mut rng);
        let mut out = Vec::with_capacity(times.len());
        for at in times {
            let patient = zipf.sample(&mut rng);
            if rng.gen_range(0..100u8) < self.read_pct {
                let root_dept = rng.gen_range(0..self.departments);
                out.push(Arrival::at(at, self.inquiry(patient, root_dept)));
            } else {
                let fanout = rng.gen_range(1..=self.max_fanout.min(self.departments));
                let mut depts: Vec<u16> = (0..self.departments).collect();
                // Fisher-Yates prefix shuffle for a random distinct subset.
                for i in 0..fanout as usize {
                    let j = rng.gen_range(i..depts.len());
                    depts.swap(i, j);
                }
                depts.truncate(fanout as usize);
                let amount = rng.gen_range(50..5_000);
                let tag = rng.gen_range(1..64);
                out.push(Arrival::at(at, self.visit(patient, &depts, amount, tag)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::TxnKind;

    fn small() -> HospitalWorkload {
        HospitalWorkload {
            departments: 3,
            patients: 10,
            rate_tps: 500.0,
            read_pct: 30,
            max_fanout: 3,
            duration: SimDuration::from_millis(200),
            zipf_s: 1.0,
            seed: 5,
        }
    }

    #[test]
    fn schema_covers_all_departments() {
        let w = small();
        let s = w.schema();
        assert_eq!(s.n_nodes(), 3);
        assert_eq!(s.len(), 3 * 10 * 2);
        assert_eq!(s.home(balance_key(2, 9)), Some(NodeId(2)));
        assert_eq!(s.home(charges_key(0, 0)), Some(NodeId(0)));
    }

    #[test]
    fn arrivals_validate_against_schema() {
        let w = small();
        let schema = w.schema();
        let arrivals = w.arrivals();
        assert!(!arrivals.is_empty());
        let mut reads = 0usize;
        for a in &arrivals {
            a.plan.validate().unwrap();
            if a.plan.kind == TxnKind::ReadOnly {
                reads += 1;
            }
            // Every step's key is homed on the subtransaction's node.
            for (node, step) in a.plan.root.all_steps() {
                assert_eq!(schema.home(step.key()), Some(node));
            }
        }
        let frac = reads as f64 / arrivals.len() as f64;
        assert!((0.15..0.45).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small().arrivals();
        let b = small().arrivals();
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at == y.at && x.plan == y.plan));
    }

    #[test]
    fn visits_are_distinct_departments() {
        let w = small();
        for a in w.arrivals() {
            let nodes = a.plan.root.nodes();
            let count = a.plan.root.count();
            if a.plan.kind == TxnKind::Commuting {
                assert_eq!(nodes.len(), count, "departments must be distinct");
            }
        }
    }
}
