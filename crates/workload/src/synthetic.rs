//! The fully parameterised synthetic mix used by the scaling and ablation
//! experiments (X1, X6, X7, X8, X9).
//!
//! Per node the schema carries `keys_per_node` **counter** keys, optional
//! **journal** twins (enable for audited runs; they grow with the run, so
//! throughput sweeps leave them off), and optional **register** keys for
//! NC transactions. Update transactions fan out over a uniformly chosen set
//! of nodes, performing `ops_per_subtxn` commuting ops at each; read
//! transactions read the same shape; NC transactions assign registers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use threev_core::client::Arrival;
use threev_model::{Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnPlan, UpdateOp};
use threev_sim::SimDuration;

use crate::arrivals::PoissonArrivals;
use crate::zipf::ZipfSampler;

/// Key id for a synthetic counter.
pub fn counter_key(node: u16, slot: u64) -> Key {
    Key((8 << 56) | ((node as u64) << 40) | slot)
}

/// Key id for a synthetic journal.
pub fn journal_key(node: u16, slot: u64) -> Key {
    Key((9 << 56) | ((node as u64) << 40) | slot)
}

/// Key id for a synthetic register.
pub fn register_key(node: u16, slot: u64) -> Key {
    Key((10 << 56) | ((node as u64) << 40) | slot)
}

/// Parameters of the synthetic mix.
#[derive(Clone, Debug)]
pub struct SyntheticParams {
    /// Number of database nodes.
    pub n_nodes: u16,
    /// Counter (and journal/register) slots per node.
    pub keys_per_node: u64,
    /// Percentage of read-only transactions.
    pub read_pct: u8,
    /// Percentage of non-commuting transactions (of all arrivals).
    pub nc_pct: u8,
    /// Nodes touched per transaction: uniform in `fanout_min..=fanout_max`.
    pub fanout_min: u16,
    /// See `fanout_min`.
    pub fanout_max: u16,
    /// Commuting operations per subtransaction.
    pub ops_per_subtxn: u16,
    /// Poisson arrival rate (transactions per second).
    pub rate_tps: f64,
    /// Workload horizon.
    pub duration: SimDuration,
    /// Key-popularity skew within a node.
    pub zipf_s: f64,
    /// Emit journal appends next to counter adds (enables auditing;
    /// memory grows with the run).
    pub with_journals: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            n_nodes: 4,
            keys_per_node: 64,
            read_pct: 20,
            nc_pct: 0,
            fanout_min: 1,
            fanout_max: 3,
            ops_per_subtxn: 2,
            rate_tps: 5_000.0,
            duration: SimDuration::from_secs(1),
            zipf_s: 0.8,
            with_journals: false,
            seed: 0x517,
        }
    }
}

/// Generator for the synthetic mix.
#[derive(Clone, Debug)]
pub struct SyntheticWorkload {
    /// The parameters.
    pub params: SyntheticParams,
}

impl SyntheticWorkload {
    /// New generator.
    pub fn new(params: SyntheticParams) -> Self {
        SyntheticWorkload { params }
    }

    /// The schema implied by the parameters.
    pub fn schema(&self) -> Schema {
        let p = &self.params;
        let mut decls = Vec::new();
        for n in 0..p.n_nodes {
            for k in 0..p.keys_per_node {
                decls.push(KeyDecl::counter(counter_key(n, k), NodeId(n), 0));
                if p.with_journals {
                    decls.push(KeyDecl::journal(journal_key(n, k), NodeId(n)));
                }
                if p.nc_pct > 0 {
                    decls.push(KeyDecl::register(register_key(n, k), NodeId(n), 0));
                }
            }
        }
        Schema::new(decls)
    }

    fn pick_nodes(&self, rng: &mut SmallRng) -> Vec<u16> {
        let p = &self.params;
        let hi = p.fanout_max.min(p.n_nodes).max(1);
        let lo = p.fanout_min.clamp(1, hi);
        let fanout = rng.gen_range(lo..=hi);
        let mut nodes: Vec<u16> = (0..p.n_nodes).collect();
        for i in 0..fanout as usize {
            let j = rng.gen_range(i..nodes.len());
            nodes.swap(i, j);
        }
        nodes.truncate(fanout as usize);
        nodes
    }

    fn subtxn_for(
        &self,
        node: u16,
        zipf: &ZipfSampler,
        rng: &mut SmallRng,
        kind: Kind,
    ) -> SubtxnPlan {
        let p = &self.params;
        let mut sub = SubtxnPlan::new(NodeId(node));
        for _ in 0..p.ops_per_subtxn {
            let slot = zipf.sample(rng);
            match kind {
                Kind::Update => {
                    let amount = rng.gen_range(1..100);
                    sub = sub.update(counter_key(node, slot), UpdateOp::Add(amount));
                    if p.with_journals {
                        sub = sub
                            .update(journal_key(node, slot), UpdateOp::Append { amount, tag: 1 });
                    }
                }
                Kind::Read => {
                    sub = sub.read(counter_key(node, slot));
                    if p.with_journals {
                        sub = sub.read(journal_key(node, slot));
                    }
                }
                Kind::Nc => {
                    sub = sub.update(
                        register_key(node, slot),
                        UpdateOp::Assign(rng.gen_range(0..1_000)),
                    );
                }
            }
        }
        sub
    }

    /// Generate `(schema, arrivals)`.
    pub fn generate(&self) -> (Schema, Vec<Arrival>) {
        let p = self.params.clone();
        let schema = self.schema();
        let mut rng = SmallRng::seed_from_u64(p.seed);
        let zipf = ZipfSampler::new(p.keys_per_node, p.zipf_s);
        let times = PoissonArrivals::new(p.rate_tps, threev_sim::SimTime::ZERO, p.duration)
            .collect_all(&mut rng);
        let mut out = Vec::with_capacity(times.len());
        for at in times {
            let nodes = self.pick_nodes(&mut rng);
            let roll = rng.gen_range(0..100u8);
            let kind = if roll < p.read_pct {
                Kind::Read
            } else if roll < p.read_pct + p.nc_pct {
                Kind::Nc
            } else {
                Kind::Update
            };
            let mut root = self.subtxn_for(nodes[0], &zipf, &mut rng, kind);
            for &n in &nodes[1..] {
                root = root.child(self.subtxn_for(n, &zipf, &mut rng, kind));
            }
            let plan = match kind {
                Kind::Read => TxnPlan::read_only(root),
                Kind::Update => TxnPlan::commuting(root),
                Kind::Nc => TxnPlan::non_commuting(root),
            };
            out.push(Arrival::at(at, plan));
        }
        (schema, out)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Update,
    Read,
    Nc,
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::TxnKind;

    #[test]
    fn generates_valid_mix() {
        let w = SyntheticWorkload::new(SyntheticParams {
            n_nodes: 5,
            nc_pct: 10,
            with_journals: true,
            rate_tps: 2_000.0,
            duration: SimDuration::from_millis(200),
            ..SyntheticParams::default()
        });
        let (schema, arrivals) = w.generate();
        assert_eq!(schema.n_nodes(), 5);
        assert!(!arrivals.is_empty());
        let (mut u, mut r, mut n) = (0, 0, 0);
        for a in &arrivals {
            a.plan.validate().unwrap();
            for (node, step) in a.plan.root.all_steps() {
                assert_eq!(schema.home(step.key()), Some(node));
            }
            match a.plan.kind {
                TxnKind::Commuting => u += 1,
                TxnKind::ReadOnly => r += 1,
                TxnKind::NonCommuting => n += 1,
            }
        }
        assert!(u > r && r >= n && n > 0, "u={u} r={r} n={n}");
    }

    #[test]
    fn fanout_respected() {
        let w = SyntheticWorkload::new(SyntheticParams {
            n_nodes: 8,
            fanout_min: 2,
            fanout_max: 4,
            rate_tps: 1_000.0,
            duration: SimDuration::from_millis(100),
            ..SyntheticParams::default()
        });
        let (_, arrivals) = w.generate();
        for a in &arrivals {
            let n = a.plan.root.nodes().len();
            assert!((2..=4).contains(&n), "fanout {n}");
        }
    }

    #[test]
    fn no_registers_without_nc() {
        let w = SyntheticWorkload::new(SyntheticParams::default());
        let schema = w.schema();
        // Default: no journals, no registers -> one key per slot.
        assert_eq!(schema.len(), 4 * 64);
    }
}
