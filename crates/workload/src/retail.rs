//! Point-of-sale retail recording — the paper's "inventory management in a
//! 'point-of-sale' system" (§Abstract, §6), extended with the
//! non-commuting transactions NC3V exists for (§5).
//!
//! Nodes are stores. Per `(store, product)` the schema holds a **units-sold
//! counter**, a **sales journal**, and a **price register**. Sales are
//! commuting (`Add` + `Append`); *price changes* overwrite the register at
//! every store carrying the product — a textbook non-commuting update
//! (two price changes do not commute), executed under NC3V with exclusive
//! locks and 2PC. Revenue audits read counters and journals across stores.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use threev_core::client::Arrival;
use threev_model::{Key, KeyDecl, NodeId, Schema, SubtxnPlan, TxnPlan, UpdateOp};
use threev_sim::SimDuration;

use crate::arrivals::PoissonArrivals;
use crate::zipf::ZipfSampler;

/// Key id for a product's units-sold counter at a store.
pub fn sold_key(store: u16, product: u64) -> Key {
    Key((5 << 56) | ((store as u64) << 40) | product)
}

/// Key id for a product's sales journal at a store.
pub fn sales_key(store: u16, product: u64) -> Key {
    Key((6 << 56) | ((store as u64) << 40) | product)
}

/// Key id for a product's price register at a store.
pub fn price_key(store: u16, product: u64) -> Key {
    Key((7 << 56) | ((store as u64) << 40) | product)
}

/// Retail workload parameters.
#[derive(Clone, Debug)]
pub struct RetailWorkload {
    /// Number of stores (= database nodes).
    pub stores: u16,
    /// Number of products.
    pub products: u64,
    /// Poisson arrival rate (transactions per second).
    pub rate_tps: f64,
    /// Percentage of arrivals that are revenue audits (read-only).
    pub read_pct: u8,
    /// Percentage of arrivals that are price changes (non-commuting).
    pub nc_pct: u8,
    /// Workload horizon.
    pub duration: SimDuration,
    /// Product-popularity skew.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RetailWorkload {
    fn default() -> Self {
        RetailWorkload {
            stores: 4,
            products: 300,
            rate_tps: 2_000.0,
            read_pct: 15,
            nc_pct: 2,
            duration: SimDuration::from_secs(1),
            zipf_s: 1.1,
            seed: 0x5A1E,
        }
    }
}

impl RetailWorkload {
    /// The schema: sold counter, sales journal, and price register per
    /// (store, product).
    pub fn schema(&self) -> Schema {
        let mut decls = Vec::with_capacity(self.stores as usize * self.products as usize * 3);
        for s in 0..self.stores {
            for p in 0..self.products {
                decls.push(KeyDecl::counter(sold_key(s, p), NodeId(s), 0));
                decls.push(KeyDecl::journal(sales_key(s, p), NodeId(s)));
                decls.push(KeyDecl::register(price_key(s, p), NodeId(s), 100));
            }
        }
        Schema::new(decls)
    }

    /// Record a sale of `qty` units of `product` at `store`.
    pub fn sale(&self, store: u16, product: u64, qty: i64, tag: u32) -> TxnPlan {
        TxnPlan::commuting(
            SubtxnPlan::new(NodeId(store))
                .update(sold_key(store, product), UpdateOp::Add(qty))
                .update(
                    sales_key(store, product),
                    UpdateOp::Append { amount: qty, tag },
                ),
        )
    }

    /// Change `product`'s price to `new_price` at every store (NC3V).
    pub fn price_change(&self, product: u64, new_price: i64, root_store: u16) -> TxnPlan {
        let mut root = SubtxnPlan::new(NodeId(root_store))
            .update(price_key(root_store, product), UpdateOp::Assign(new_price));
        for s in 0..self.stores {
            if s != root_store {
                root = root.child(
                    SubtxnPlan::new(NodeId(s))
                        .update(price_key(s, product), UpdateOp::Assign(new_price)),
                );
            }
        }
        TxnPlan::non_commuting(root)
    }

    /// Audit `product`'s sales across every store.
    pub fn audit(&self, product: u64, root_store: u16) -> TxnPlan {
        let mut root = SubtxnPlan::new(NodeId(root_store))
            .read(sold_key(root_store, product))
            .read(sales_key(root_store, product));
        for s in 0..self.stores {
            if s != root_store {
                root = root.child(
                    SubtxnPlan::new(NodeId(s))
                        .read(sold_key(s, product))
                        .read(sales_key(s, product)),
                );
            }
        }
        TxnPlan::read_only(root)
    }

    /// Generate the arrival stream.
    pub fn arrivals(&self) -> Vec<Arrival> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let zipf = ZipfSampler::new(self.products, self.zipf_s);
        let times = PoissonArrivals::new(self.rate_tps, threev_sim::SimTime::ZERO, self.duration)
            .collect_all(&mut rng);
        let mut out = Vec::with_capacity(times.len());
        for at in times {
            let product = zipf.sample(&mut rng);
            let store = rng.gen_range(0..self.stores);
            let roll = rng.gen_range(0..100u8);
            if roll < self.read_pct {
                out.push(Arrival::at(at, self.audit(product, store)));
            } else if roll < self.read_pct + self.nc_pct {
                let price = rng.gen_range(50..500);
                out.push(Arrival::at(at, self.price_change(product, price, store)));
            } else {
                let qty = rng.gen_range(1..5);
                let tag = rng.gen_range(1..16);
                out.push(Arrival::at(at, self.sale(store, product, qty, tag)));
            }
        }
        out
    }

    /// Does the generated mix contain non-commuting transactions?
    /// (The 3V cluster must enable locks iff so.)
    pub fn needs_locks(&self) -> bool {
        self.nc_pct > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::TxnKind;

    fn small() -> RetailWorkload {
        RetailWorkload {
            stores: 3,
            products: 20,
            rate_tps: 1_000.0,
            read_pct: 20,
            nc_pct: 5,
            duration: SimDuration::from_millis(200),
            zipf_s: 1.0,
            seed: 9,
        }
    }

    #[test]
    fn plans_match_schema_and_kinds() {
        let w = small();
        let schema = w.schema();
        let (mut sales, mut audits, mut prices) = (0, 0, 0);
        for a in w.arrivals() {
            a.plan.validate().unwrap();
            for (node, step) in a.plan.root.all_steps() {
                assert_eq!(schema.home(step.key()), Some(node));
            }
            match a.plan.kind {
                TxnKind::Commuting => sales += 1,
                TxnKind::ReadOnly => audits += 1,
                TxnKind::NonCommuting => prices += 1,
            }
        }
        assert!(sales > audits && audits > prices && prices > 0);
        assert!(w.needs_locks());
    }

    #[test]
    fn price_change_spans_all_stores() {
        let w = small();
        let pc = w.price_change(3, 250, 1);
        assert_eq!(pc.kind, TxnKind::NonCommuting);
        assert_eq!(pc.root.nodes().len(), 3);
        pc.validate().unwrap();
    }
}
