//! Zipf-distributed entity sampling.
//!
//! Data-recording workloads are skewed: a few patients, accounts, or
//! products receive most of the traffic. This sampler draws from a Zipf
//! distribution with exponent `s` over `n` ranks by inverting a precomputed
//! CDF (exact, O(log n) per sample; `n` is bounded by the entity counts the
//! experiments use, so the table is cheap).

use rand::Rng;

/// Exact Zipf sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build for `n` ranks with exponent `s` (`s = 0` is uniform).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Sample a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn counts(n: u64, s: f64, samples: usize) -> Vec<usize> {
        let z = ZipfSampler::new(n, s);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut c = vec![0usize; n as usize];
        for _ in 0..samples {
            c[z.sample(&mut rng) as usize] += 1;
        }
        c
    }

    #[test]
    fn uniform_when_s_zero() {
        let c = counts(10, 0.0, 100_000);
        for &x in &c {
            let dev = (x as f64 - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.08, "bucket {x} deviates");
        }
    }

    #[test]
    fn skewed_when_s_one() {
        let c = counts(100, 1.0, 100_000);
        assert!(c[0] > c[9] && c[9] > c[49], "{:?}", &c[..10]);
        // Rank 0 gets roughly 1/H(100) ~= 19% of traffic.
        let share = c[0] as f64 / 100_000.0;
        assert!((0.15..0.25).contains(&share), "share={share}");
    }

    #[test]
    fn sample_in_range() {
        let z = ZipfSampler::new(3, 1.5);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.n(), 3);
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
