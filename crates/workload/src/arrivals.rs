//! Poisson arrival processes.
//!
//! Open-loop arrivals with exponential inter-arrival gaps — the natural
//! model for "calls on a telephone network" and the other recording
//! workloads, and the right shape for measuring whether an engine keeps up
//! with a target rate rather than adapting to back-pressure.

use rand::Rng;
use threev_sim::{SimDuration, SimTime};

/// An iterator of Poisson arrival instants.
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
    now: SimTime,
    end: SimTime,
}

impl PoissonArrivals {
    /// Arrivals at `rate_per_sec` over `[start, start + duration]`.
    pub fn new(rate_per_sec: f64, start: SimTime, duration: SimDuration) -> Self {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        PoissonArrivals {
            rate_per_sec,
            now: start,
            end: start + duration,
        }
    }

    /// Next arrival instant, or `None` past the horizon.
    pub fn next<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<SimTime> {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap_secs = -u.ln() / self.rate_per_sec;
        let gap = SimDuration((gap_secs * 1e6) as u64);
        self.now += gap;
        if self.now > self.end {
            None
        } else {
            Some(self.now)
        }
    }

    /// Collect all arrival instants.
    pub fn collect_all<R: Rng + ?Sized>(mut self, rng: &mut R) -> Vec<SimTime> {
        let mut out = Vec::new();
        while let Some(t) = self.next(rng) {
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rate_is_approximately_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        let arrivals = PoissonArrivals::new(1000.0, SimTime::ZERO, SimDuration::from_secs(10))
            .collect_all(&mut rng);
        let n = arrivals.len() as f64;
        assert!((8_500.0..11_500.0).contains(&n), "n={n}");
        // Monotone non-decreasing.
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // All within the horizon.
        assert!(arrivals.last().unwrap().as_secs_f64() <= 10.0);
    }

    #[test]
    fn respects_start_offset() {
        let mut rng = SmallRng::seed_from_u64(8);
        let arrivals = PoissonArrivals::new(100.0, SimTime(5_000_000), SimDuration::from_secs(1))
            .collect_all(&mut rng);
        assert!(!arrivals.is_empty());
        assert!(arrivals[0] >= SimTime(5_000_000));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        PoissonArrivals::new(0.0, SimTime::ZERO, SimDuration::from_secs(1));
    }
}
