//! The correctness auditor.
//!
//! The paper's motivating anomaly (§1): "a patient enquiring about his
//! balance due will see only partial charges from procedures performed
//! during a single visit". The auditor detects exactly that class of bug,
//! plus the stronger version-order guarantee of Theorem 4.1, from the
//! transaction records alone:
//!
//! * **Atomicity** — for every committed read transaction `R` and update
//!   transaction `U`, over the journal keys both touch: `R` must observe
//!   either *all* of `U`'s entries or *none* (any engine, versioned or not);
//! * **Version exactness** (versioned engines) — Theorem 4.1 says the
//!   execution is equivalent to the serial order "by version number, updates
//!   before reads within a version"; hence a version-`v` read must observe
//!   `U` *iff* `V(U) ≤ v`, for committed `U`;
//! * **No dirty reads** — entries of transactions that ultimately aborted
//!   must never be observed (3V reads run strictly behind compensation;
//!   uncoordinated engines violate this).
//!
//! Journal entries carry their writer's [`TxnId`], so observation is direct:
//! no shadow state, no instrumentation of the engines.

use std::collections::{BTreeMap, BTreeSet};

use threev_model::{Key, TxnId, TxnKind, VersionNo};

use crate::records::{TxnRecord, TxnStatus};

/// One detected violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditViolation {
    /// `read` saw only part of `update`'s writes (the partial-charges bug).
    Atomicity {
        /// The reading transaction.
        read: TxnId,
        /// The partially observed update transaction.
        update: TxnId,
        /// Keys where the update was observed.
        seen: u32,
        /// Keys (read by `read`, written by `update`) where it should have
        /// been all-or-nothing.
        relevant: u32,
    },
    /// Versioned read did not match the Theorem 4.1 serial order.
    VersionExactness {
        /// The reading transaction and its version.
        read: TxnId,
        /// Version of the read.
        read_version: VersionNo,
        /// The update transaction and its version.
        update: TxnId,
        /// Version of the update.
        update_version: VersionNo,
        /// Whether the update should have been visible.
        expected_visible: bool,
        /// Keys where the update was observed.
        seen: u32,
        /// Relevant key count.
        relevant: u32,
    },
    /// A read observed entries of a transaction that aborted.
    AbortedVisible {
        /// The reading transaction.
        read: TxnId,
        /// The aborted update transaction.
        update: TxnId,
    },
}

/// Audit result.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Committed read-only transactions checked.
    pub reads_checked: u64,
    /// (read, update) pairs examined.
    pub pairs_checked: u64,
    /// Atomicity violations.
    pub atomicity_violations: u64,
    /// Version-exactness violations.
    pub version_violations: u64,
    /// Dirty reads of aborted transactions.
    pub aborted_visible: u64,
    /// First violations, capped (diagnostics).
    pub samples: Vec<AuditViolation>,
}

impl AuditReport {
    /// Total violations of all classes.
    pub fn total_violations(&self) -> u64 {
        self.atomicity_violations + self.version_violations + self.aborted_visible
    }

    /// Did the run pass cleanly?
    pub fn clean(&self) -> bool {
        self.total_violations() == 0
    }
}

const SAMPLE_CAP: usize = 16;

/// The auditor. Construct with the full set of run records, then call
/// [`Auditor::check`].
pub struct Auditor<'a> {
    records: &'a [TxnRecord],
}

struct UpdateInfo<'a> {
    record: &'a TxnRecord,
    keys: BTreeSet<Key>,
}

impl<'a> Auditor<'a> {
    /// New auditor over `records`.
    pub fn new(records: &'a [TxnRecord]) -> Self {
        Auditor { records }
    }

    /// Run all checks.
    pub fn check(&self) -> AuditReport {
        let mut report = AuditReport::default();

        // Index update transactions by the journal keys they write.
        let mut updates: BTreeMap<TxnId, UpdateInfo<'_>> = BTreeMap::new();
        let mut writers_of: BTreeMap<Key, Vec<TxnId>> = BTreeMap::new();
        for r in self.records {
            if r.kind == TxnKind::ReadOnly || r.journal_keys_written.is_empty() {
                continue;
            }
            for &k in &r.journal_keys_written {
                writers_of.entry(k).or_default().push(r.id);
            }
            updates.insert(
                r.id,
                UpdateInfo {
                    record: r,
                    keys: r.journal_keys_written.iter().copied().collect(),
                },
            );
        }

        for read in self.records {
            if read.kind != TxnKind::ReadOnly || read.status != TxnStatus::Committed {
                continue;
            }
            report.reads_checked += 1;

            // What the read observed, per journal key.
            let mut observed: BTreeMap<Key, BTreeSet<TxnId>> = BTreeMap::new();
            let mut journal_keys_read: Vec<Key> = Vec::new();
            for obs in &read.reads {
                if let Some(txns) = obs.value.journal_txns() {
                    journal_keys_read.push(obs.key);
                    observed.entry(obs.key).or_default().extend(txns);
                }
            }
            if journal_keys_read.is_empty() {
                continue;
            }

            // Candidate updates: anything writing a key this read read.
            let mut candidates: BTreeSet<TxnId> = BTreeSet::new();
            for k in &journal_keys_read {
                if let Some(ws) = writers_of.get(k) {
                    candidates.extend(ws.iter().copied());
                }
            }

            for uid in candidates {
                let u = &updates[&uid];
                let relevant: Vec<Key> = journal_keys_read
                    .iter()
                    .copied()
                    .filter(|k| u.keys.contains(k))
                    .collect();
                if relevant.is_empty() {
                    continue;
                }
                report.pairs_checked += 1;
                let seen = relevant
                    .iter()
                    .filter(|k| observed.get(k).is_some_and(|s| s.contains(&uid)))
                    .count() as u32;
                let relevant_n = relevant.len() as u32;

                if u.record.status == TxnStatus::Aborted {
                    if seen > 0 {
                        report.aborted_visible += 1;
                        push_sample(
                            &mut report.samples,
                            AuditViolation::AbortedVisible {
                                read: read.id,
                                update: uid,
                            },
                        );
                    }
                    continue;
                }

                // Atomicity: all-or-nothing.
                if seen > 0 && seen < relevant_n {
                    report.atomicity_violations += 1;
                    push_sample(
                        &mut report.samples,
                        AuditViolation::Atomicity {
                            read: read.id,
                            update: uid,
                            seen,
                            relevant: relevant_n,
                        },
                    );
                    continue; // exactness check would double-report
                }

                // Version exactness: needs versions on both sides and a
                // committed update (in-flight updates have unknown versions).
                if let (Some(rv), Some(uv), TxnStatus::Committed) =
                    (read.version, u.record.version, u.record.status)
                {
                    let expected_visible = uv <= rv;
                    let fully_visible = seen == relevant_n;
                    let invisible = seen == 0;
                    let ok = if expected_visible {
                        fully_visible
                    } else {
                        invisible
                    };
                    if !ok {
                        report.version_violations += 1;
                        push_sample(
                            &mut report.samples,
                            AuditViolation::VersionExactness {
                                read: read.id,
                                read_version: rv,
                                update: uid,
                                update_version: uv,
                                expected_visible,
                                seen,
                                relevant: relevant_n,
                            },
                        );
                    }
                }
            }
        }
        report
    }
}

fn push_sample(samples: &mut Vec<AuditViolation>, v: AuditViolation) {
    if samples.len() < SAMPLE_CAP {
        samples.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::ReadObservation;
    use threev_model::{JournalEntry, NodeId, Value};
    use threev_sim::SimTime;

    fn tid(seq: u64) -> TxnId {
        TxnId::new(seq, NodeId(0))
    }

    fn update_rec(seq: u64, keys: &[u64], version: Option<u32>, status: TxnStatus) -> TxnRecord {
        let mut r = TxnRecord::submitted(
            tid(seq),
            TxnKind::Commuting,
            SimTime(0),
            keys.iter().map(|&k| Key(k)).collect(),
        );
        r.status = status;
        r.completed = Some(SimTime(10));
        r.version = version.map(VersionNo);
        r
    }

    fn journal(writers: &[u64]) -> Value {
        Value::Journal(
            writers
                .iter()
                .map(|&s| JournalEntry {
                    txn: tid(s),
                    amount: 1,
                    tag: 0,
                })
                .collect(),
        )
    }

    fn read_rec(seq: u64, version: Option<u32>, obs: Vec<(u64, Value)>) -> TxnRecord {
        let mut r = TxnRecord::submitted(tid(seq), TxnKind::ReadOnly, SimTime(0), vec![]);
        r.status = TxnStatus::Committed;
        r.completed = Some(SimTime(20));
        r.version = version.map(VersionNo);
        r.reads = obs
            .into_iter()
            .map(|(k, value)| ReadObservation {
                key: Key(k),
                version: version.map(VersionNo),
                value,
            })
            .collect();
        r
    }

    #[test]
    fn clean_run_passes() {
        // U1 (v1) writes k1,k2; read at v1 sees it on both keys.
        let records = vec![
            update_rec(1, &[1, 2], Some(1), TxnStatus::Committed),
            read_rec(2, Some(1), vec![(1, journal(&[1])), (2, journal(&[1]))]),
        ];
        let rep = Auditor::new(&records).check();
        assert!(rep.clean(), "{rep:?}");
        assert_eq!(rep.reads_checked, 1);
        assert_eq!(rep.pairs_checked, 1);
    }

    #[test]
    fn partial_visibility_is_atomicity_violation() {
        // The paper's partial-charges anomaly: U1 visible on k1, not on k2.
        let records = vec![
            update_rec(1, &[1, 2], None, TxnStatus::Committed),
            read_rec(2, None, vec![(1, journal(&[1])), (2, journal(&[]))]),
        ];
        let rep = Auditor::new(&records).check();
        assert_eq!(rep.atomicity_violations, 1);
        assert!(matches!(
            rep.samples[0],
            AuditViolation::Atomicity {
                seen: 1,
                relevant: 2,
                ..
            }
        ));
    }

    #[test]
    fn future_version_must_be_invisible() {
        // U1 committed at v2; a v1 read must not see it at all.
        let records = vec![
            update_rec(1, &[1, 2], Some(2), TxnStatus::Committed),
            read_rec(2, Some(1), vec![(1, journal(&[1])), (2, journal(&[1]))]),
        ];
        let rep = Auditor::new(&records).check();
        assert_eq!(rep.version_violations, 1);
        assert!(matches!(
            rep.samples[0],
            AuditViolation::VersionExactness {
                expected_visible: false,
                seen: 2,
                ..
            }
        ));
    }

    #[test]
    fn past_version_must_be_fully_visible() {
        // U1 committed at v1; a v2 read missing it entirely is a violation.
        let records = vec![
            update_rec(1, &[1], Some(1), TxnStatus::Committed),
            read_rec(2, Some(2), vec![(1, journal(&[]))]),
        ];
        let rep = Auditor::new(&records).check();
        assert_eq!(rep.version_violations, 1);
    }

    #[test]
    fn aborted_entries_must_not_be_seen() {
        let records = vec![
            update_rec(1, &[1], Some(1), TxnStatus::Aborted),
            read_rec(2, Some(1), vec![(1, journal(&[1]))]),
        ];
        let rep = Auditor::new(&records).check();
        assert_eq!(rep.aborted_visible, 1);
        assert_eq!(rep.version_violations, 0, "aborted txns skip exactness");
    }

    #[test]
    fn aborted_and_invisible_is_fine() {
        let records = vec![
            update_rec(1, &[1], Some(1), TxnStatus::Aborted),
            read_rec(2, Some(1), vec![(1, journal(&[]))]),
        ];
        assert!(Auditor::new(&records).check().clean());
    }

    #[test]
    fn unversioned_engines_skip_exactness() {
        // No versions: full visibility or invisibility both acceptable.
        let records = vec![
            update_rec(1, &[1, 2], None, TxnStatus::Committed),
            read_rec(2, None, vec![(1, journal(&[1])), (2, journal(&[1]))]),
            read_rec(3, None, vec![(1, journal(&[])), (2, journal(&[]))]),
        ];
        let rep = Auditor::new(&records).check();
        assert!(rep.clean(), "{rep:?}");
        assert_eq!(rep.reads_checked, 2);
    }

    #[test]
    fn in_flight_updates_checked_for_atomicity_only() {
        let mut u = update_rec(1, &[1, 2], None, TxnStatus::InFlight);
        u.completed = None;
        let records = vec![
            u,
            read_rec(2, Some(1), vec![(1, journal(&[1])), (2, journal(&[]))]),
        ];
        let rep = Auditor::new(&records).check();
        assert_eq!(rep.atomicity_violations, 1);
        assert_eq!(rep.version_violations, 0);
    }

    #[test]
    fn disjoint_keys_not_paired() {
        let records = vec![
            update_rec(1, &[5], Some(1), TxnStatus::Committed),
            read_rec(2, Some(1), vec![(1, journal(&[]))]),
        ];
        let rep = Auditor::new(&records).check();
        assert_eq!(rep.pairs_checked, 0);
        assert!(rep.clean());
    }

    #[test]
    fn counter_reads_are_ignored() {
        let records = vec![
            update_rec(1, &[1], Some(1), TxnStatus::Committed),
            read_rec(2, Some(1), vec![(1, Value::Counter(42))]),
        ];
        let rep = Auditor::new(&records).check();
        assert_eq!(rep.pairs_checked, 0, "no journal observations to audit");
    }

    #[test]
    fn sample_cap_respected() {
        let mut records = vec![update_rec(1, &[1, 2], None, TxnStatus::Committed)];
        for i in 0..40 {
            records.push(read_rec(
                100 + i,
                None,
                vec![(1, journal(&[1])), (2, journal(&[]))],
            ));
        }
        let rep = Auditor::new(&records).check();
        assert_eq!(rep.atomicity_violations, 40);
        assert_eq!(rep.samples.len(), SAMPLE_CAP);
    }
}
