//! Fixed-width tables and CSV rendering for the experiment harnesses.
//!
//! Every `exp_*` binary prints its results through [`Table`], so the output
//! of the whole evaluation reads uniformly (and diffs cleanly run-to-run).

use std::fmt;

/// A simple right-aligned fixed-width table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Short rows are padded with empty cells; long rows are
    /// a caller bug and panic.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            row.len() <= self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Render as CSV (no quoting — experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = w[i])?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format microseconds as a human-scaled duration string.
pub fn us(v: u64) -> String {
    if v >= 1_000_000 {
        format!("{:.2}s", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.2}ms", v as f64 / 1e3)
    } else {
        format!("{v}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["engine", "tps", "p99"]);
        t.row(["3v", "12000.5", "320us"]);
        t.row(["global-2pc", "800.1", "12.51ms"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("engine"));
        assert!(lines[2].ends_with("320us"));
        // Columns align: "tps" column right edge identical on all rows.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn short_rows_padded_long_rows_panic() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let result = std::panic::catch_unwind(move || {
            let mut t = Table::new(["a"]);
            t.row(["1", "2"]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.257), "1.26");
        assert_eq!(us(15), "15us");
        assert_eq!(us(1_500), "1.50ms");
        assert_eq!(us(2_000_000), "2.00s");
    }
}
