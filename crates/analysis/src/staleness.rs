//! Read staleness.
//!
//! A read serves version `v`; version `v` stopped accumulating updates the
//! moment the advancement coordinator opened version `v + 1` (Phase 1). The
//! *staleness* of the read is the time elapsed since that moment — exactly
//! the "how far behind queries get" knob the paper discusses (§7, comparison
//! with ref \[17\]; §1 "reads … always behind by up to a month").
//!
//! The coordinator publishes a [`VersionTimeline`]; combined with the read
//! records it yields the staleness distribution of experiment X3.

use std::collections::BTreeMap;

use threev_model::VersionNo;
use threev_sim::{SimDuration, SimTime};

use crate::hist::Histogram;
use crate::records::{TxnRecord, TxnStatus};
use threev_model::TxnKind;

/// When each version opened, closed, and became readable.
#[derive(Clone, Debug, Default)]
pub struct VersionTimeline {
    /// Version -> time it stopped accumulating updates (Phase 1 start of the
    /// advancement that opened its successor). Version 0 closes at time 0:
    /// updates never target the initial read version.
    closed_at: BTreeMap<VersionNo, SimTime>,
    /// Version -> time it became the read version (Phase 3 broadcast).
    published_at: BTreeMap<VersionNo, SimTime>,
}

impl VersionTimeline {
    /// New timeline; version 0 is closed at time zero by construction.
    pub fn new() -> Self {
        let mut t = VersionTimeline::default();
        t.closed_at.insert(VersionNo::ZERO, SimTime::ZERO);
        t
    }

    /// Record that `v` stopped accumulating updates at `at`.
    pub fn record_closed(&mut self, v: VersionNo, at: SimTime) {
        self.closed_at.entry(v).or_insert(at);
    }

    /// Record that `v` became the read version at `at`.
    pub fn record_published(&mut self, v: VersionNo, at: SimTime) {
        self.published_at.entry(v).or_insert(at);
    }

    /// When `v` closed, if known.
    pub fn closed_at(&self, v: VersionNo) -> Option<SimTime> {
        self.closed_at.get(&v).copied()
    }

    /// When `v` was published, if known.
    pub fn published_at(&self, v: VersionNo) -> Option<SimTime> {
        self.published_at.get(&v).copied()
    }

    /// Staleness of a read completing at `at` against version `v`, if the
    /// close time of `v` is known.
    pub fn staleness(&self, v: VersionNo, at: SimTime) -> Option<SimDuration> {
        self.closed_at(v).map(|c| at.since(c))
    }

    /// Staleness histogram (µs) over all committed read-only records that
    /// carry a version.
    pub fn staleness_histogram(&self, records: &[TxnRecord]) -> Histogram {
        let mut h = Histogram::new();
        for r in records {
            if r.kind != TxnKind::ReadOnly || r.status != TxnStatus::Committed {
                continue;
            }
            if let (Some(v), Some(done)) = (r.version, r.completed) {
                if let Some(s) = self.staleness(v, done) {
                    h.record(s.as_micros());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::{NodeId, TxnId};

    #[test]
    fn version_zero_closed_at_start() {
        let t = VersionTimeline::new();
        assert_eq!(t.closed_at(VersionNo(0)), Some(SimTime::ZERO));
        assert_eq!(
            t.staleness(VersionNo(0), SimTime(500)),
            Some(SimDuration(500))
        );
        assert_eq!(t.staleness(VersionNo(1), SimTime(500)), None);
    }

    #[test]
    fn close_and_publish_are_first_write_wins() {
        let mut t = VersionTimeline::new();
        t.record_closed(VersionNo(1), SimTime(100));
        t.record_closed(VersionNo(1), SimTime(999));
        assert_eq!(t.closed_at(VersionNo(1)), Some(SimTime(100)));
        t.record_published(VersionNo(1), SimTime(200));
        assert_eq!(t.published_at(VersionNo(1)), Some(SimTime(200)));
    }

    #[test]
    fn histogram_over_reads() {
        let mut t = VersionTimeline::new();
        t.record_closed(VersionNo(1), SimTime(1_000));

        let mk = |seq, v: u32, done: u64| {
            let mut r = TxnRecord::submitted(
                TxnId::new(seq, NodeId(0)),
                TxnKind::ReadOnly,
                SimTime(0),
                vec![],
            );
            r.status = TxnStatus::Committed;
            r.completed = Some(SimTime(done));
            r.version = Some(VersionNo(v));
            r
        };
        let records = vec![mk(1, 0, 700), mk(2, 1, 1_500), mk(3, 1, 3_000)];
        let h = t.staleness_histogram(&records);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 2_000); // read 3: 3000 - 1000
        assert_eq!(h.min(), 500); // read 2: 1500 - 1000
    }
}
