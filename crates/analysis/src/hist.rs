//! Log-bucketed histograms.
//!
//! A compact HDR-style histogram: values are bucketed by (exponent, 1/16th
//! sub-bucket), giving ≤ 6.25% relative error over the full `u64` range with
//! a fixed 64×16 table. Good enough for latency percentiles, tiny, and
//! mergeable — which is all the experiments need.

/// Sub-buckets per power of two.
const SUBS: usize = 16;
/// log2(SUBS).
const SUB_BITS: u32 = 4;

/// A log-bucketed histogram of `u64` samples (microseconds, counts, …).
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64 * SUBS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUBS as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let sub = (value >> (exp - SUB_BITS)) & (SUBS as u64 - 1);
        ((exp - SUB_BITS + 1) as usize) * SUBS + sub as usize
    }

    /// Representative (upper-bound) value of bucket `i`.
    fn bucket_value(i: usize) -> u64 {
        if i < SUBS {
            return i as u64;
        }
        let exp = (i / SUBS) as u32 + SUB_BITS - 1;
        let sub = (i % SUBS) as u128;
        let v = (1u128 << exp) + ((sub + 1) << (exp - SUB_BITS)) - 1;
        v.min(u64::MAX as u128) as u64
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.count(), 16);
        assert_eq!(h.mean(), 7.5);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expected) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expected).abs() / expected;
            assert!(
                err < 0.07,
                "q={q}: got {got}, expected {expected}, err {err}"
            );
        }
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 17)
            } else {
                b.record(v * 17)
            }
            c.record(v * 17);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.mean(), c.mean());
        assert_eq!(a.p50(), c.p50());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.min(), c.min());
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert!(h.quantile(1.0) >= u64::MAX / 2);
    }

    #[test]
    fn quantile_clamped_to_observed_range() {
        let mut h = Histogram::new();
        h.record(1000);
        assert_eq!(h.quantile(0.0), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.p50(), 1000);
    }
}
