//! Per-transaction records and run summaries.
//!
//! The shared client actor (in `threev-core`) fills a [`TxnRecord`] for
//! every transaction it submits, regardless of which engine is running.
//! Everything the experiments report — throughput, latency, staleness,
//! audit verdicts — derives from these records plus engine-side statistics.

use threev_model::{Key, TxnId, TxnKind, Value, VersionNo};
use threev_sim::{SimDuration, SimTime};

use crate::hist::Histogram;

/// One observed read: the key, the version the store actually served
/// (`None` for engines without versioning), and the value snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadObservation {
    /// Key read.
    pub key: Key,
    /// Version served, if the engine versions data.
    pub version: Option<VersionNo>,
    /// Value snapshot at read time.
    pub value: Value,
}

/// Lifecycle status of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnStatus {
    /// Submitted, not yet finished when the run ended.
    InFlight,
    /// Committed (for 3V commuting transactions: whole tree completed).
    Committed,
    /// Aborted (NC3V global abort, or compensated well-behaved abort).
    Aborted,
}

/// Everything the client learns about one transaction.
#[derive(Clone, Debug)]
pub struct TxnRecord {
    /// Transaction id.
    pub id: TxnId,
    /// Kind (read-only / commuting / non-commuting).
    pub kind: TxnKind,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion (commit or abort) time.
    pub completed: Option<SimTime>,
    /// Final status.
    pub status: TxnStatus,
    /// Version the transaction executed in, if the engine versions data.
    pub version: Option<VersionNo>,
    /// Reads observed (read-only transactions and reads inside updates).
    pub reads: Vec<ReadObservation>,
    /// Journal keys this transaction appends to (from its plan) — the
    /// ground truth the auditor checks against.
    pub journal_keys_written: Vec<Key>,
    /// Times the transaction was internally retried (wait-die victims).
    pub retries: u32,
}

impl TxnRecord {
    /// New in-flight record.
    pub fn submitted(
        id: TxnId,
        kind: TxnKind,
        at: SimTime,
        journal_keys_written: Vec<Key>,
    ) -> Self {
        TxnRecord {
            id,
            kind,
            submitted: at,
            completed: None,
            status: TxnStatus::InFlight,
            version: None,
            reads: Vec::new(),
            journal_keys_written,
            retries: 0,
        }
    }

    /// End-to-end latency, if finished.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completed.map(|c| c.since(self.submitted))
    }
}

/// Aggregate summary of a run, engine-agnostic.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Committed transactions by kind: (read-only, commuting, non-commuting).
    pub committed: (u64, u64, u64),
    /// Aborted transactions.
    pub aborted: u64,
    /// Transactions still in flight at the end of the run.
    pub in_flight: u64,
    /// Committed-transaction throughput in txn/s of virtual time.
    pub throughput_tps: f64,
    /// Latency histogram of committed read-only transactions (µs).
    pub read_latency: Histogram,
    /// Latency histogram of committed update transactions (µs).
    pub update_latency: Histogram,
}

impl RunSummary {
    /// Summarise records over the window `[start, end]` of virtual time
    /// (throughput counts transactions *completing* in the window).
    pub fn from_records(records: &[TxnRecord], start: SimTime, end: SimTime) -> Self {
        let mut s = RunSummary::default();
        let mut completed_in_window = 0u64;
        for r in records {
            match r.status {
                TxnStatus::InFlight => s.in_flight += 1,
                TxnStatus::Aborted => s.aborted += 1,
                TxnStatus::Committed => {
                    match r.kind {
                        TxnKind::ReadOnly => s.committed.0 += 1,
                        TxnKind::Commuting => s.committed.1 += 1,
                        TxnKind::NonCommuting => s.committed.2 += 1,
                    }
                    // A committed record without a completion stamp is
                    // malformed input; it falls out of the window count
                    // instead of crashing the summary.
                    if let Some(done) = r.completed {
                        if done >= start && done <= end {
                            completed_in_window += 1;
                        }
                    }
                    if let Some(lat) = r.latency() {
                        match r.kind {
                            TxnKind::ReadOnly => s.read_latency.record(lat.as_micros()),
                            _ => s.update_latency.record(lat.as_micros()),
                        }
                    }
                }
            }
        }
        let window = end.since(start).as_secs_f64();
        s.throughput_tps = if window > 0.0 {
            completed_in_window as f64 / window
        } else {
            0.0
        };
        s
    }

    /// Total committed transactions.
    pub fn total_committed(&self) -> u64 {
        self.committed.0 + self.committed.1 + self.committed.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::NodeId;

    fn rec(
        seq: u64,
        kind: TxnKind,
        sub_us: u64,
        done_us: Option<u64>,
        status: TxnStatus,
    ) -> TxnRecord {
        let mut r = TxnRecord::submitted(TxnId::new(seq, NodeId(0)), kind, SimTime(sub_us), vec![]);
        r.completed = done_us.map(SimTime);
        r.status = status;
        r
    }

    #[test]
    fn latency_requires_completion() {
        let r = rec(1, TxnKind::ReadOnly, 10, None, TxnStatus::InFlight);
        assert_eq!(r.latency(), None);
        let r = rec(1, TxnKind::ReadOnly, 10, Some(25), TxnStatus::Committed);
        assert_eq!(r.latency(), Some(SimDuration(15)));
    }

    #[test]
    fn summary_counts_and_throughput() {
        let records = vec![
            rec(1, TxnKind::ReadOnly, 0, Some(100), TxnStatus::Committed),
            rec(2, TxnKind::Commuting, 0, Some(200), TxnStatus::Committed),
            rec(
                3,
                TxnKind::Commuting,
                0,
                Some(2_000_000),
                TxnStatus::Committed,
            ),
            rec(4, TxnKind::NonCommuting, 0, Some(300), TxnStatus::Committed),
            rec(5, TxnKind::Commuting, 0, None, TxnStatus::InFlight),
            rec(6, TxnKind::Commuting, 0, Some(400), TxnStatus::Aborted),
        ];
        let s = RunSummary::from_records(&records, SimTime::ZERO, SimTime(1_000_000));
        assert_eq!(s.committed, (1, 2, 1));
        assert_eq!(s.total_committed(), 4);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.in_flight, 1);
        // 3 commits inside the 1-second window.
        assert_eq!(s.throughput_tps, 3.0);
        assert_eq!(s.read_latency.count(), 1);
        assert_eq!(s.update_latency.count(), 3);
    }

    #[test]
    fn zero_window_throughput_is_zero() {
        let s = RunSummary::from_records(&[], SimTime(5), SimTime(5));
        assert_eq!(s.throughput_tps, 0.0);
    }
}
