//! Measurement and verification toolkit for the 3V reproduction.
//!
//! Every engine in the workspace produces the same observable artifacts —
//! per-transaction [`records::TxnRecord`]s filled in by the shared client
//! actor — and this crate turns them into the numbers and verdicts the
//! experiments report:
//!
//! * [`hist`] — log-bucketed latency histograms (own implementation; no
//!   external dependency);
//! * [`records`] — transaction records, run summaries, throughput helpers;
//! * [`audit`] — the serializability/atomicity auditor. Journals tag every
//!   entry with its writing transaction, so the auditor can check the
//!   paper's Theorem 4.1 *exactly*: a version-`v` read observes precisely
//!   the committed update transactions with version ≤ `v`, all-or-nothing;
//! * [`staleness`] — how far behind reads run, given the version timeline
//!   published by the advancement coordinator;
//! * [`report`] — fixed-width tables and CSV output for the `exp_*`
//!   harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod audit;
pub mod hist;
pub mod records;
pub mod report;
pub mod staleness;

pub use audit::{AuditReport, AuditViolation, Auditor};
pub use hist::Histogram;
pub use records::{ReadObservation, RunSummary, TxnRecord, TxnStatus};
pub use report::Table;
pub use staleness::VersionTimeline;
