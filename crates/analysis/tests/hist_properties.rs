//! Property tests for the log-bucketed histogram against exact statistics
//! computed from the raw sample vector.

use proptest::prelude::*;
use threev_analysis::Histogram;

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

proptest! {
    #[test]
    fn quantiles_track_exact_within_bucket_error(
        mut samples in proptest::collection::vec(0u64..10_000_000, 1..2000),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), samples[0]);
        prop_assert_eq!(h.max(), *samples.last().unwrap());
        let exact_mean = samples.iter().map(|&x| x as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6);

        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            let approx = h.quantile(q) as f64;
            let exact = exact_quantile(&samples, q) as f64;
            // 1/16 sub-bucketing: <= 6.25% relative error, plus the clamp
            // to the observed range.
            let tolerance = (exact * 0.0625).max(1.0);
            prop_assert!(
                (approx - exact).abs() <= tolerance,
                "q={}: approx={} exact={}",
                q, approx, exact
            );
        }
    }

    #[test]
    fn merge_is_equivalent_to_joint_recording(
        a in proptest::collection::vec(0u64..1_000_000, 0..500),
        b in proptest::collection::vec(0u64..1_000_000, 0..500),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut joint = Histogram::new();
        for &x in &a {
            ha.record(x);
            joint.record(x);
        }
        for &x in &b {
            hb.record(x);
            joint.record(x);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), joint.count());
        prop_assert_eq!(ha.min(), joint.min());
        prop_assert_eq!(ha.max(), joint.max());
        for q in [0.25, 0.5, 0.75, 0.99] {
            prop_assert_eq!(ha.quantile(q), joint.quantile(q));
        }
    }

    #[test]
    fn quantile_monotone_in_q(samples in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let qs = [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
        }
    }
}
