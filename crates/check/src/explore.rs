//! Schedule execution and exploration strategies.
//!
//! Three ways to drive a scenario through the kernel's chosen-event API:
//!
//! * [`run_schedule`] — replay one recorded choice list, invariant-checked
//!   after every step. The basis of regression replay and shrinking;
//! * [`explore_random`] — bounded random walks: uniformly random choices,
//!   recorded as they are made, until a step budget runs out or a
//!   violation appears;
//! * [`explore_exhaustive`] — depth-first enumeration of all interleavings
//!   with sleep-set partial-order reduction, for tiny configurations.
//!
//! All three replay from scratch (stateless model checking): the kernel is
//! deterministic given `(scenario, seed, choices)`, so a prefix of choice
//! indices *is* a state, and storing anything else would be redundant.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

use threev_sim::{EnabledEvent, EnabledKind, Simulation};

use crate::oracle::Violation;
use crate::scenario::{client_records, node_views, Scenario};

/// Hard ceiling on steps per execution when the caller does not tighten
/// it: generous for every catalogue scenario (their quiescent runs are
/// well under 200 steps) while still bounding pathological schedules.
pub const DEFAULT_MAX_STEPS: u64 = 2_000;

/// A violation tagged with the step after which it was observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViolationAt {
    /// Steps executed when the oracle flagged the state (the violating
    /// event is choice `step - 1`... the check runs post-step, so a
    /// schedule of `step` choices reproduces it).
    pub step: u64,
    /// What was violated.
    pub violation: Violation,
}

/// Outcome of one replayed schedule.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Steps executed.
    pub steps: u64,
    /// Did the event queue drain (vs. violation stop / step budget)?
    pub quiescent: bool,
    /// First violation, if any.
    pub violation: Option<ViolationAt>,
    /// Human-readable per-step log plus verdict. Byte-identical across
    /// replays of the same schedule — the regression tests diff it.
    pub report: String,
}

fn describe(ev: &EnabledEvent) -> String {
    let kind = match ev.kind {
        EnabledKind::Deliver => "deliver",
        EnabledKind::Timer => "timer",
        EnabledKind::Crash => "crash",
        EnabledKind::Restart => "restart",
    };
    match ev.from {
        Some(from) => format!(
            "{kind} {from}->{} (t={} seq={})",
            ev.target, ev.at.0, ev.seq
        ),
        None => format!("{kind} @{} (t={} seq={})", ev.target, ev.at.0, ev.seq),
    }
}

/// Replay `choices` against `scenario` built with `seed`, running the
/// oracle after every step and the quiescent checks if the queue drains.
/// Choices past the end of the list are `0`; indices past the enabled set
/// clamp to its last entry.
pub fn run_schedule(scenario: &Scenario, seed: u64, choices: &[u32], max_steps: u64) -> RunOutcome {
    let oracle = scenario.oracle();
    let mut sim = scenario.build(seed);
    let mut report = String::new();
    let _ = writeln!(report, "# scenario = {}", scenario.name);
    let _ = writeln!(report, "# seed = {seed}");
    let mut steps = 0u64;
    let mut quiescent = false;
    let mut violation = None;

    loop {
        let enabled = sim.enabled_events();
        if enabled.is_empty() {
            quiescent = true;
            break;
        }
        if steps >= max_steps {
            let _ = writeln!(report, "step budget ({max_steps}) exhausted");
            break;
        }
        let want = choices.get(steps as usize).copied().unwrap_or(0) as usize;
        let idx = want.min(enabled.len() - 1);
        let ev = enabled[idx];
        let _ = writeln!(
            report,
            "step {steps}: choice {idx}/{} {}",
            enabled.len(),
            describe(&ev)
        );
        sim.step_chosen(ev.seq);
        steps += 1;
        let viols = oracle.check_step(&node_views(&sim), &client_records(&sim));
        if let Some(v) = viols.into_iter().next() {
            let _ = writeln!(report, "violation after step {}: {v}", steps - 1);
            violation = Some(ViolationAt {
                step: steps,
                violation: v,
            });
            break;
        }
    }

    if quiescent && violation.is_none() {
        let views = node_views(&sim);
        let records = &client_records(&sim);
        for v in &views {
            let _ = writeln!(
                report,
                "quiescent: {} vu={} vr={} chains={:?}",
                v.node, v.vu, v.vr, v.chain_lengths
            );
        }
        for r in records {
            let _ = writeln!(
                report,
                "txn {:?}: {:?} version={:?} reads={}",
                r.id,
                r.status,
                r.version,
                r.reads.len()
            );
        }
        let viols = oracle.check_quiescent(&views, records);
        if let Some(v) = viols.into_iter().next() {
            let _ = writeln!(report, "violation at quiescence: {v}");
            violation = Some(ViolationAt {
                step: steps,
                violation: v,
            });
        }
    }
    let _ = writeln!(
        report,
        "verdict: {} after {steps} steps",
        if violation.is_some() {
            "VIOLATION"
        } else if quiescent {
            "clean"
        } else {
            "inconclusive"
        }
    );
    RunOutcome {
        steps,
        quiescent,
        violation,
        report,
    }
}

/// A counterexample: the recorded choices and the violation they hit.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Choice list reproducing the violation via [`run_schedule`].
    pub choices: Vec<u32>,
    /// The violation.
    pub at: ViolationAt,
}

/// Outcome of a random-walk exploration.
#[derive(Clone, Debug)]
pub struct WalkOutcome {
    /// Complete walks executed.
    pub runs: u64,
    /// Total steps across all walks.
    pub steps: u64,
    /// First counterexample found, if any.
    pub violation: Option<Counterexample>,
}

/// Bounded random-walk exploration: repeat uniformly random schedules,
/// recording each walk's choices, until `step_budget` total steps are
/// spent or a violation is found. Deterministic in `(scenario, seed,
/// step_budget)`.
pub fn explore_random(
    scenario: &Scenario,
    seed: u64,
    step_budget: u64,
    max_steps_per_run: u64,
) -> WalkOutcome {
    let oracle = scenario.oracle();
    let mut out = WalkOutcome {
        runs: 0,
        steps: 0,
        violation: None,
    };
    let mut walk = 0u64;
    while out.steps < step_budget {
        // Decorrelate per-walk choice streams from the kernel seed.
        let mut rng =
            SmallRng::seed_from_u64(seed ^ walk.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC4EC);
        walk += 1;
        let mut sim = scenario.build(seed);
        let mut choices: Vec<u32> = Vec::new();
        let mut quiescent = false;
        while (choices.len() as u64) < max_steps_per_run && out.steps < step_budget {
            let enabled = sim.enabled_events();
            if enabled.is_empty() {
                quiescent = true;
                break;
            }
            let idx = rng.gen_range(0..enabled.len());
            choices.push(idx as u32);
            sim.step_chosen(enabled[idx].seq);
            out.steps += 1;
            let viols = oracle.check_step(&node_views(&sim), &client_records(&sim));
            if let Some(v) = viols.into_iter().next() {
                out.violation = Some(Counterexample {
                    at: ViolationAt {
                        step: choices.len() as u64,
                        violation: v,
                    },
                    choices,
                });
                return out;
            }
        }
        if quiescent {
            let viols = oracle.check_quiescent(&node_views(&sim), &client_records(&sim));
            if let Some(v) = viols.into_iter().next() {
                out.violation = Some(Counterexample {
                    at: ViolationAt {
                        step: choices.len() as u64,
                        violation: v,
                    },
                    choices,
                });
                return out;
            }
        }
        out.runs += 1;
    }
    out
}

/// Re-derive the choice list of walk number `walk` of the deterministic
/// walk sequence [`explore_random`] draws from. Used to *record* a
/// schedule into the regression corpus: pick a walk, inspect what it
/// exercised, commit its choices. The oracle is not consulted here —
/// callers replay through [`run_schedule`] to judge the result.
pub fn record_walk(scenario: &Scenario, seed: u64, walk: u64, max_steps: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed ^ walk.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC4EC);
    let mut sim = scenario.build(seed);
    let mut choices = Vec::new();
    while (choices.len() as u64) < max_steps {
        let enabled = sim.enabled_events();
        if enabled.is_empty() {
            break;
        }
        let idx = rng.gen_range(0..enabled.len());
        choices.push(idx as u32);
        sim.step_chosen(enabled[idx].seq);
    }
    choices
}

/// Outcome of an exhaustive DFS exploration.
#[derive(Clone, Debug)]
pub struct DfsOutcome {
    /// Distinct complete schedules explored (leaves reached).
    pub schedules: u64,
    /// Total steps executed (including prefix replays).
    pub steps: u64,
    /// Was the (reduced) space fully enumerated within the budgets? When
    /// `false`, the sweep was truncated — callers must not report the
    /// scenario as exhaustively verified.
    pub complete: bool,
    /// First counterexample found, if any.
    pub violation: Option<Counterexample>,
}

/// Two enabled events commute if they are addressed to different actors
/// and neither is a lifecycle (crash/restart) event: delivering or firing
/// them in either order leaves every actor's state identical. Lifecycle
/// events purge the target's queue, which races with *any* event, so they
/// are treated as dependent on everything. (Virtual-time stamps of later
/// sends differ across the two orders; the scheduler controls ordering
/// anyway, so that difference is sterile — see DESIGN.md §8.)
fn independent(a: &EnabledEvent, b: &EnabledEvent) -> bool {
    a.target != b.target
        && !matches!(a.kind, EnabledKind::Crash | EnabledKind::Restart)
        && !matches!(b.kind, EnabledKind::Crash | EnabledKind::Restart)
}

struct Dfs<'a> {
    scenario: &'a Scenario,
    seed: u64,
    max_schedules: u64,
    max_depth: u64,
    out: DfsOutcome,
}

impl Dfs<'_> {
    fn replay(&mut self, prefix: &[u32]) -> Simulation<threev_core::cluster::ClusterActor> {
        let mut sim = self.scenario.build(self.seed);
        for &c in prefix {
            let enabled = sim.enabled_events();
            if enabled.is_empty() {
                break;
            }
            let idx = (c as usize).min(enabled.len() - 1);
            sim.step_chosen(enabled[idx].seq);
            self.out.steps += 1;
        }
        sim
    }

    /// Explore all extensions of `prefix`. Each state is oracle-checked
    /// exactly once — when it is the tip of the descent (ancestor states
    /// were checked on the way down).
    fn go(&mut self, prefix: &mut Vec<u32>, sleep: Vec<EnabledEvent>) {
        if self.out.violation.is_some() || !self.out.complete {
            return;
        }
        let mut sim = self.replay(prefix);
        let oracle = self.scenario.oracle();
        if !prefix.is_empty() {
            let viols = oracle.check_step(&node_views(&sim), &client_records(&sim));
            if let Some(v) = viols.into_iter().next() {
                self.out.violation = Some(Counterexample {
                    choices: prefix.clone(),
                    at: ViolationAt {
                        step: prefix.len() as u64,
                        violation: v,
                    },
                });
                return;
            }
        }
        let enabled = sim.enabled_events();
        if enabled.is_empty() {
            self.out.schedules += 1;
            let viols = oracle.check_quiescent(&node_views(&sim), &client_records(&sim));
            if let Some(v) = viols.into_iter().next() {
                self.out.violation = Some(Counterexample {
                    choices: prefix.clone(),
                    at: ViolationAt {
                        step: prefix.len() as u64,
                        violation: v,
                    },
                });
            }
            return;
        }
        if prefix.len() as u64 >= self.max_depth {
            // Depth-truncated branch: counted, but the sweep is no longer
            // a proof over the reduced space.
            self.out.schedules += 1;
            self.out.complete = false;
            return;
        }
        drop(sim);
        // Sleep set: events already explored at an ancestor whose effect
        // here would replicate an explored subtree. Keep only those still
        // enabled.
        let mut slp: Vec<EnabledEvent> = sleep
            .into_iter()
            .filter(|s| enabled.iter().any(|e| e.seq == s.seq))
            .collect();
        for (i, ev) in enabled.iter().enumerate() {
            if self.out.violation.is_some() || !self.out.complete {
                return;
            }
            if self.out.schedules >= self.max_schedules {
                self.out.complete = false;
                return;
            }
            if slp.iter().any(|s| s.seq == ev.seq) {
                continue;
            }
            let child_sleep: Vec<EnabledEvent> =
                slp.iter().copied().filter(|s| independent(s, ev)).collect();
            prefix.push(i as u32);
            self.go(prefix, child_sleep);
            prefix.pop();
            slp.push(*ev);
        }
    }
}

/// Exhaustive DFS over all interleavings of `scenario`, pruned by
/// sleep-set partial-order reduction, bounded by `max_schedules` explored
/// leaves and `max_depth` steps per schedule.
pub fn explore_exhaustive(
    scenario: &Scenario,
    seed: u64,
    max_schedules: u64,
    max_depth: u64,
) -> DfsOutcome {
    let mut dfs = Dfs {
        scenario,
        seed,
        max_schedules,
        max_depth,
        out: DfsOutcome {
            schedules: 0,
            steps: 0,
            complete: true,
            violation: None,
        },
    };
    dfs.go(&mut Vec::new(), Vec::new());
    dfs.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::find;

    #[test]
    fn default_schedule_is_clean_and_deterministic() {
        let sc = find("two-node-basic").unwrap();
        let a = run_schedule(sc, 3, &[], DEFAULT_MAX_STEPS);
        let b = run_schedule(sc, 3, &[], DEFAULT_MAX_STEPS);
        assert!(a.quiescent && a.violation.is_none(), "{}", a.report);
        assert_eq!(a.report, b.report, "replay must be byte-identical");
    }

    #[test]
    fn random_walks_on_sound_scenario_stay_clean() {
        let sc = find("two-node-basic").unwrap();
        let out = explore_random(sc, 11, 3_000, DEFAULT_MAX_STEPS);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.runs > 0);
    }

    #[test]
    fn exhaustive_explores_distinct_schedules() {
        let sc = find("two-node-basic").unwrap();
        let out = explore_exhaustive(sc, 3, 150, 400);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.schedules >= 150, "explored {}", out.schedules);
    }

    #[test]
    fn random_walk_finds_the_planted_p2_bug() {
        let sc = find("p2-skip").unwrap();
        let out = explore_random(sc, 5, 60_000, 200);
        let cex = out.violation.expect("sabotaged build must be caught");
        assert!(matches!(
            cex.at.violation,
            crate::oracle::Violation::AuditFailed { .. }
        ));
        // And the recorded schedule reproduces it.
        let rerun = run_schedule(sc, 5, &cex.choices, DEFAULT_MAX_STEPS);
        assert_eq!(rerun.violation.map(|v| v.violation), Some(cex.at.violation));
    }
}
