//! `threev-check` — the model-checker CLI.
//!
//! ```text
//! threev-check list
//! threev-check exhaustive --scenario NAME [--seed N] [--budget SCHEDULES] [--depth STEPS]
//! threev-check random     --scenario NAME [--seed N] [--steps BUDGET] [--depth STEPS] [--out DIR]
//! threev-check sweep      [--seed N] [--steps BUDGET] [--out DIR]
//! threev-check replay     FILE [--depth STEPS] [--verbose]
//! threev-check record     --scenario NAME --walk W [--seed N] [--out FILE]
//! ```
//!
//! Exit status: `0` — exploration clean / replay clean; `1` — a violation
//! was found (the shrunk counterexample is printed and, with `--out`,
//! written next to the run); `2` — usage or I/O error.
//!
//! `sweep` explores every sound catalogue scenario with the random-walk
//! budget — the nightly CI job. Everything here is deterministic in its
//! arguments: no wall clock, no entropy.

use std::process::ExitCode;

use threev_check::{
    explore_exhaustive, explore_random, find, record_walk, run_schedule, shrink, Counterexample,
    Scenario, Schedule, CATALOGUE, DEFAULT_MAX_STEPS,
};

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    verbose: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut out = Args {
        positional: Vec::new(),
        flags: Vec::new(),
        verbose: false,
    };
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if a == "--verbose" {
            out.verbose = true;
        } else if let Some(name) = a.strip_prefix("--") {
            let value = argv
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            out.flags.push((name.to_string(), value.clone()));
            i += 1;
        } else {
            out.positional.push(a.clone());
        }
        i += 1;
    }
    Ok(out)
}

impl Args {
    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|e| format!("bad --{name} `{v}`: {e}")),
        }
    }

    fn scenario(&self) -> Result<&'static Scenario, String> {
        let name = self
            .flag("scenario")
            .ok_or("missing --scenario NAME (try `threev-check list`)")?;
        find(name).ok_or_else(|| format!("unknown scenario `{name}` (try `threev-check list`)"))
    }
}

fn usage() -> &'static str {
    "usage: threev-check <list|exhaustive|random|sweep|replay> [args]\n\
     \x20 list\n\
     \x20 exhaustive --scenario NAME [--seed N] [--budget SCHEDULES] [--depth STEPS]\n\
     \x20 random     --scenario NAME [--seed N] [--steps BUDGET] [--depth STEPS] [--out DIR]\n\
     \x20 sweep      [--seed N] [--steps BUDGET] [--out DIR]\n\
     \x20 replay     FILE [--depth STEPS] [--verbose]\n\
     \x20 record     --scenario NAME --walk W [--seed N] [--out FILE]"
}

/// Shrink a counterexample, print it, and (with `--out`) persist it.
fn handle_counterexample(
    sc: &Scenario,
    seed: u64,
    cex: &Counterexample,
    depth: u64,
    out_dir: Option<&str>,
) -> ExitCode {
    println!("violation: {}", cex.at.violation);
    let (choices, detail) = match shrink(sc, seed, &cex.choices, depth) {
        Some(s) => {
            println!(
                "shrunk {} -> {} choices in {} replays; minimal violation: {}",
                cex.choices.len(),
                s.choices.len(),
                s.attempts,
                s.at.violation
            );
            (s.choices.clone(), s.at.violation.to_string())
        }
        None => {
            println!("shrink could not reproduce; keeping the raw schedule");
            (cex.choices.clone(), cex.at.violation.to_string())
        }
    };
    let schedule = Schedule {
        scenario: sc.name.to_string(),
        seed,
        choices,
    };
    let text = schedule.render(&format!(
        "counterexample for `{}` (seed {seed})\nviolation: {detail}",
        sc.name
    ));
    print!("{text}");
    if let Some(dir) = out_dir {
        let path = format!("{dir}/counterexample-{}-{seed}.sched", sc.name);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("written to {path}");
    }
    ExitCode::from(1)
}

fn cmd_list() -> ExitCode {
    for sc in CATALOGUE {
        println!(
            "{:20} nodes={} partitions={} crashes={} sabotaged={}  {}",
            sc.name, sc.n_nodes, sc.partitions, sc.crashes, sc.sabotaged, sc.about
        );
    }
    ExitCode::SUCCESS
}

fn cmd_exhaustive(args: &Args) -> Result<ExitCode, String> {
    let sc = args.scenario()?;
    let seed = args.num("seed", 3)?;
    let budget = args.num("budget", 2_000)?;
    let depth = args.num("depth", 400)?;
    let out = explore_exhaustive(sc, seed, budget, depth);
    println!(
        "exhaustive {}: {} distinct schedules, {} steps, complete={}",
        sc.name, out.schedules, out.steps, out.complete
    );
    match out.violation {
        Some(cex) => Ok(handle_counterexample(
            sc,
            seed,
            &cex,
            depth,
            args.flag("out"),
        )),
        None => Ok(ExitCode::SUCCESS),
    }
}

fn cmd_random(args: &Args) -> Result<ExitCode, String> {
    let sc = args.scenario()?;
    let seed = args.num("seed", 3)?;
    let steps = args.num("steps", 20_000)?;
    let depth = args.num("depth", DEFAULT_MAX_STEPS)?;
    let out = explore_random(sc, seed, steps, depth);
    println!(
        "random {}: {} walks, {} steps",
        sc.name, out.runs, out.steps
    );
    match out.violation {
        Some(cex) => Ok(handle_counterexample(
            sc,
            seed,
            &cex,
            depth,
            args.flag("out"),
        )),
        None => Ok(ExitCode::SUCCESS),
    }
}

fn cmd_sweep(args: &Args) -> Result<ExitCode, String> {
    let seed = args.num("seed", 3)?;
    let steps = args.num("steps", 50_000)?;
    let depth = args.num("depth", DEFAULT_MAX_STEPS)?;
    let mut status = ExitCode::SUCCESS;
    for sc in CATALOGUE.iter().filter(|s| !s.sabotaged) {
        let out = explore_random(sc, seed, steps, depth);
        println!(
            "sweep {}: {} walks, {} steps, {}",
            sc.name,
            out.runs,
            out.steps,
            if out.violation.is_some() {
                "VIOLATION"
            } else {
                "clean"
            }
        );
        if let Some(cex) = out.violation {
            status = handle_counterexample(sc, seed, &cex, depth, args.flag("out"));
        }
    }
    Ok(status)
}

/// What a replayed schedule exercised: advancement phase instants and, per
/// transaction, which phase boundaries its lifetime straddles. Drives the
/// comments baked into recorded corpus files, so review can see *why* a
/// schedule is in the corpus.
fn coverage_summary(sc: &Scenario, seed: u64, choices: &[u32], depth: u64) -> String {
    use threev_core::cluster::ClusterActor;
    use threev_sim::EnabledKind;
    let mut sim = sc.build(seed);
    let mut steps = 0u64;
    let mut lifecycle: Vec<(EnabledKind, u16, u64)> = Vec::new();
    loop {
        let enabled = sim.enabled_events();
        if enabled.is_empty() || steps >= depth {
            break;
        }
        let want = choices.get(steps as usize).copied().unwrap_or(0) as usize;
        let ev = enabled[want.min(enabled.len() - 1)];
        sim.step_chosen(ev.seq);
        if matches!(ev.kind, EnabledKind::Crash | EnabledKind::Restart) {
            lifecycle.push((ev.kind, ev.target.0, sim.now().0));
        }
        steps += 1;
    }
    let mut out = String::new();
    for (kind, node, at) in &lifecycle {
        out.push_str(&format!("{kind:?} of node {node} executed at t={at}\n"));
    }
    // Walk every coordinator (one per partition) and every client, in
    // actor order — layout-agnostic across single-partition and sharded
    // scenarios.
    let mut boundaries: Vec<(String, u64)> = Vec::new();
    let mut coord = 0usize;
    for actor in sim.actors() {
        if let ClusterActor::Coordinator(c) = actor {
            for (i, a) in c.records().iter().enumerate() {
                out.push_str(&format!(
                    "p{coord} advancement {i} -> vu={}: start={} p1={} p2={} p3={} p4={} \
                     (p2 rounds={})\n",
                    a.vu_new,
                    a.started.0,
                    a.p1_done.0,
                    a.p2_done.0,
                    a.p3_done.0,
                    a.p4_done.0,
                    a.p2_rounds
                ));
                boundaries.push((format!("p{coord}.adv{i}.p1"), a.p1_done.0));
                boundaries.push((format!("p{coord}.adv{i}.p2"), a.p2_done.0));
                boundaries.push((format!("p{coord}.adv{i}.p3"), a.p3_done.0));
                boundaries.push((format!("p{coord}.adv{i}.p4"), a.p4_done.0));
            }
            coord += 1;
        }
    }
    for actor in sim.actors() {
        if let ClusterActor::Client(c) = actor {
            for r in c.records() {
                let done = r.completed.map(|t| t.0).unwrap_or(u64::MAX);
                let crossed: Vec<&str> = boundaries
                    .iter()
                    .filter(|(_, b)| r.submitted.0 < *b && *b < done)
                    .map(|(name, _)| name.as_str())
                    .collect();
                out.push_str(&format!(
                    "txn {:?} ({:?}, v={:?}) alive {}..{} straddles [{}]\n",
                    r.id,
                    r.status,
                    r.version,
                    r.submitted.0,
                    r.completed.map(|t| t.0).unwrap_or(0),
                    crossed.join(" ")
                ));
            }
        }
    }
    out
}

fn cmd_record(args: &Args) -> Result<ExitCode, String> {
    let sc = args.scenario()?;
    let seed = args.num("seed", 3)?;
    let walk = args.num("walk", 0)?;
    let depth = args.num("depth", DEFAULT_MAX_STEPS)?;
    let choices = record_walk(sc, seed, walk, depth);
    let out = run_schedule(sc, seed, &choices, depth);
    if let Some(v) = &out.violation {
        return Err(format!(
            "walk {walk} violates ({}); record is for clean corpus schedules — \
             use `random --out` to persist counterexamples",
            v.violation
        ));
    }
    if !out.quiescent {
        return Err(format!("walk {walk} did not quiesce within {depth} steps"));
    }
    let schedule = Schedule {
        scenario: sc.name.to_string(),
        seed,
        choices,
    };
    let comment = format!(
        "recorded walk {walk} of `{}` (seed {seed}); replays clean\n{}",
        sc.name,
        coverage_summary(sc, seed, &schedule.choices, depth)
    );
    let text = schedule.render(comment.trim_end());
    match args.flag("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("written to {path}");
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(args: &Args) -> Result<ExitCode, String> {
    let path = args
        .positional
        .first()
        .ok_or("replay needs a schedule file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let schedule = Schedule::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let sc = find(&schedule.scenario)
        .ok_or_else(|| format!("{path}: unknown scenario `{}`", schedule.scenario))?;
    let depth = args.num("depth", DEFAULT_MAX_STEPS)?;
    let out = run_schedule(sc, schedule.seed, &schedule.choices, depth);
    if args.verbose {
        print!("{}", out.report);
    }
    match out.violation {
        Some(v) => {
            println!(
                "replay {path}: VIOLATION after {} steps: {}",
                v.step, v.violation
            );
            Ok(ExitCode::from(1))
        }
        None => {
            println!("replay {path}: clean after {} steps", out.steps);
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let args = match parse_args(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "list" => Ok(cmd_list()),
        "exhaustive" => cmd_exhaustive(&args),
        "random" => cmd_random(&args),
        "sweep" => cmd_sweep(&args),
        "replay" => cmd_replay(&args),
        "record" => cmd_record(&args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
