//! The scenario catalogue: small, fixed 3V cluster configurations the
//! checker explores.
//!
//! Model checking is exponential in the event count, so scenarios are
//! deliberately tiny — two or three nodes, a handful of transactions, one
//! advancement — and each is aimed at a distinct slice of the protocol:
//! advancement phase boundaries, version skew across a multi-node
//! transaction, a crash spanning Phase 2, the NC3V gate. A schedule file
//! (see [`crate::schedule`]) names a scenario plus a seed, which together
//! pin the exact event set; the choice list then pins the interleaving.

use threev_core::client::Arrival;
use threev_core::cluster::{build_actors, build_partition_actors, ClusterActor, ClusterConfig};
use threev_core::msg::Msg;
use threev_core::node::DurabilityMode;
use threev_model::{
    Key, KeyDecl, NodeId, PartitionId, Schema, SubtxnPlan, Topology, TxnPlan, UpdateOp,
};
use threev_sim::{LatencyModel, NodeCrash, SimDuration, SimTime, Simulation};

use crate::oracle::Oracle;

/// One checkable configuration.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Stable name, referenced by schedule files.
    pub name: &'static str,
    /// What this scenario is aimed at.
    pub about: &'static str,
    /// Database nodes *per partition*. With one partition (every legacy
    /// scenario) the actors are nodes `0..n`, coordinator `n`, client
    /// `n + 1`; sharded scenarios concatenate one such block per partition
    /// at the [`Topology`] strides.
    pub n_nodes: u16,
    /// Partitions hosted in the single checker kernel. `1` for every
    /// legacy scenario; sharded scenarios run all partitions' actors under
    /// one scheduler so cross-partition interleavings are explorable.
    pub partitions: u16,
    /// Does the scenario inject node crashes? (Disables the Def 3.2 skew
    /// check: a recovering node legitimately lags.)
    pub crashes: bool,
    /// Is the protocol deliberately broken? Sabotaged scenarios exist so
    /// tests can prove the checker *finds* bugs; exploration of them is
    /// expected to produce a violation, and they are excluded from the
    /// clean-sweep lists.
    pub sabotaged: bool,
}

/// Every scenario, sound and sabotaged.
pub const CATALOGUE: &[Scenario] = &[
    Scenario {
        name: "two-node-basic",
        about: "2 nodes, 2 cross-node updates, 1 read, 1 advancement (the CI exhaustive target)",
        n_nodes: 2,
        partitions: 1,
        crashes: false,
        sabotaged: false,
    },
    Scenario {
        name: "phase-boundaries",
        about: "updates and reads arriving across every advancement phase boundary",
        n_nodes: 2,
        partitions: 1,
        crashes: false,
        sabotaged: false,
    },
    Scenario {
        name: "skew-pair",
        about: "3 nodes, tree transactions landing on ahead/behind nodes mid-advancement (§2.3)",
        n_nodes: 3,
        partitions: 1,
        crashes: false,
        sabotaged: false,
    },
    Scenario {
        name: "crash-p2",
        about: "node 1 crashes inside Phase 2 and recovers from its in-memory WAL",
        n_nodes: 2,
        partitions: 1,
        crashes: true,
        sabotaged: false,
    },
    Scenario {
        name: "nc-gate",
        about: "NC3V transactions racing an advancement through the vu == vr + 1 gate (§5)",
        n_nodes: 2,
        partitions: 1,
        crashes: false,
        sabotaged: false,
    },
    Scenario {
        name: "skew-cross-partition",
        about: "2 partitions x 2 nodes, commuting trees crossing the partition boundary \
                 while both partitions advance independently",
        n_nodes: 2,
        partitions: 2,
        crashes: false,
        sabotaged: false,
    },
    Scenario {
        name: "stripe-interleave",
        about: "2 nodes, node stores split into 2 key stripes; both stripes of node 0 \
                 advance interleaved with cross-node trees and a racing advancement",
        n_nodes: 2,
        partitions: 1,
        crashes: false,
        sabotaged: false,
    },
    Scenario {
        name: "p2-skip",
        about: "SABOTAGED: coordinator skips the Phase-2 drain (reverts §4.3's wait)",
        n_nodes: 2,
        partitions: 1,
        crashes: false,
        sabotaged: true,
    },
];

/// Look a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    CATALOGUE.iter().find(|s| s.name == name)
}

/// The sound scenarios (exploration must find zero violations).
pub fn sound() -> impl Iterator<Item = &'static Scenario> {
    CATALOGUE.iter().filter(|s| !s.sabotaged)
}

fn ms(x: u64) -> SimTime {
    SimTime(x * 1_000)
}

fn k(i: u64) -> Key {
    Key(i)
}

fn n(i: u16) -> NodeId {
    NodeId(i)
}

/// Two-node schema: a balance counter and a charge journal per node
/// (the paper's hospital example, shrunk).
fn two_node_schema() -> Schema {
    Schema::new(vec![
        KeyDecl::counter(k(1), n(0), 0),
        KeyDecl::journal(k(11), n(0)),
        KeyDecl::counter(k(2), n(1), 0),
        KeyDecl::journal(k(12), n(1)),
    ])
}

/// A cross-node commuting update: charge `amount` on both nodes.
fn visit2(amount: i64, tag: u32) -> TxnPlan {
    TxnPlan::commuting(
        SubtxnPlan::new(n(0))
            .update(k(1), UpdateOp::Add(amount))
            .update(k(11), UpdateOp::Append { amount, tag })
            .child(
                SubtxnPlan::new(n(1))
                    .update(k(2), UpdateOp::Add(amount))
                    .update(k(12), UpdateOp::Append { amount, tag }),
            ),
    )
}

/// A cross-node read of both balances and journals.
fn inquiry2() -> TxnPlan {
    TxnPlan::read_only(
        SubtxnPlan::new(n(0))
            .read(k(1))
            .read(k(11))
            .child(SubtxnPlan::new(n(1)).read(k(2)).read(k(12))),
    )
}

impl Scenario {
    /// The partition layout of this scenario's cluster.
    pub fn topology(&self) -> Topology {
        Topology::new(self.partitions, self.n_nodes)
    }

    /// Total database nodes across every partition.
    pub fn total_nodes(&self) -> u16 {
        self.partitions * self.n_nodes
    }

    /// The oracle matching this scenario's fault profile and layout.
    pub fn oracle(&self) -> Oracle {
        Oracle {
            check_skew: !self.crashes,
            topology: self.topology(),
        }
    }

    /// Actor id of partition 0's advancement coordinator (the only one in
    /// single-partition scenarios).
    pub fn coordinator(&self) -> NodeId {
        self.topology().coordinator(PartitionId(0))
    }

    /// Actor id of partition 0's workload client.
    pub fn client(&self) -> NodeId {
        self.topology().client(PartitionId(0))
    }

    /// Build the simulation this scenario describes. `seed` feeds the
    /// kernel RNG; with the fixed-latency link model the event *set* is a
    /// pure function of `(scenario, seed)`, which is what makes recorded
    /// schedules replayable.
    pub fn build(&self, seed: u64) -> Simulation<ClusterActor> {
        if self.partitions > 1 {
            return self.build_sharded(seed);
        }
        let (schema, mut cfg, arrivals, triggers, faults) = match self.name {
            "phase-boundaries" => self.phase_boundaries(),
            "skew-pair" => self.skew_pair(),
            "crash-p2" => self.crash_p2(),
            "nc-gate" => self.nc_gate(),
            "stripe-interleave" => self.stripe_interleave(),
            "p2-skip" => self.p2_skip(),
            // "two-node-basic" and any future default.
            _ => self.two_node_basic(),
        };
        cfg.sim.seed = seed;
        cfg.sim.latency = LatencyModel::Fixed(SimDuration::from_micros(200));
        cfg.sim.faults.crashes = faults;
        let actors = build_actors(&schema, &cfg, arrivals);
        let mut sim = Simulation::new(actors, cfg.sim.clone());
        for t in triggers {
            sim.inject_at(
                t,
                self.client(),
                self.coordinator(),
                Msg::TriggerAdvancement,
            );
        }
        sim
    }

    /// Build a multi-partition scenario: every partition's actor block
    /// (nodes, coordinator, client at the topology strides) hosted under
    /// **one** kernel, so the checker can interleave cross-partition
    /// deliveries exactly like local ones. This is the model-checking view
    /// of the sharded cluster — the production DES shuttle pins
    /// cross-partition latency instead, but the protocol messages are the
    /// same either way. Advancement triggers go to every coordinator.
    fn build_sharded(&self, seed: u64) -> Simulation<ClusterActor> {
        let topo = self.topology();
        let (schema, mut cfg, streams, triggers) = self.skew_cross_partition();
        cfg.sim.seed = seed;
        cfg.sim.latency = LatencyModel::Fixed(SimDuration::from_micros(200));
        let mut actors = Vec::new();
        for (p, stream) in streams.into_iter().enumerate() {
            actors.extend(build_partition_actors(
                &schema,
                &cfg,
                stream,
                PartitionId(p as u16),
            ));
        }
        let mut sim = Simulation::new(actors, cfg.sim.clone());
        for t in triggers {
            for p in 0..topo.n_partitions() {
                let pid = PartitionId(p);
                sim.inject_at(
                    t,
                    topo.client(pid),
                    topo.coordinator(pid),
                    Msg::TriggerAdvancement,
                );
            }
        }
        sim
    }

    #[allow(clippy::type_complexity)]
    fn two_node_basic(
        &self,
    ) -> (
        Schema,
        ClusterConfig,
        Vec<Arrival>,
        Vec<SimTime>,
        Vec<NodeCrash>,
    ) {
        let arrivals = vec![
            Arrival::at(ms(1), visit2(100, 1)),
            Arrival::at(ms(2), visit2(7, 2)),
            Arrival::at(ms(6), inquiry2()),
        ];
        (
            two_node_schema(),
            ClusterConfig::new(2),
            arrivals,
            vec![ms(3)],
            vec![],
        )
    }

    #[allow(clippy::type_complexity)]
    fn phase_boundaries(
        &self,
    ) -> (
        Schema,
        ClusterConfig,
        Vec<Arrival>,
        Vec<SimTime>,
        Vec<NodeCrash>,
    ) {
        // Updates keep arriving while the advancement walks its phases, so
        // reorderings can land a transaction on either side of every
        // boundary; reads bracket the whole window.
        let arrivals = vec![
            Arrival::at(ms(1), visit2(10, 1)),
            Arrival::at(ms(3), inquiry2()),
            Arrival::at(ms(4), visit2(20, 2)),
            Arrival::at(ms(6), visit2(30, 3)),
            Arrival::at(ms(9), inquiry2()),
        ];
        (
            two_node_schema(),
            ClusterConfig::new(2),
            arrivals,
            vec![ms(2)],
            vec![],
        )
    }

    #[allow(clippy::type_complexity)]
    fn skew_pair(
        &self,
    ) -> (
        Schema,
        ClusterConfig,
        Vec<Arrival>,
        Vec<SimTime>,
        Vec<NodeCrash>,
    ) {
        // Three nodes, transactions spanning all of them: during Phase 1
        // reordering puts subtransactions on nodes that are ahead of the
        // root (already switched vu) and behind it, exercising both §2.3
        // skew rules.
        let schema = Schema::new(vec![
            KeyDecl::counter(k(1), n(0), 0),
            KeyDecl::journal(k(11), n(0)),
            KeyDecl::counter(k(2), n(1), 0),
            KeyDecl::journal(k(12), n(1)),
            KeyDecl::counter(k(3), n(2), 0),
            KeyDecl::journal(k(13), n(2)),
        ]);
        let visit3 = |amount: i64, tag: u32, root: u16| {
            let others: Vec<u16> = (0..3).filter(|&i| i != root).collect();
            TxnPlan::commuting(
                SubtxnPlan::new(n(root))
                    .update(k(1 + root as u64), UpdateOp::Add(amount))
                    .update(k(11 + root as u64), UpdateOp::Append { amount, tag })
                    .child(
                        SubtxnPlan::new(n(others[0]))
                            .update(k(1 + others[0] as u64), UpdateOp::Add(amount))
                            .update(k(11 + others[0] as u64), UpdateOp::Append { amount, tag }),
                    )
                    .child(
                        SubtxnPlan::new(n(others[1]))
                            .update(k(1 + others[1] as u64), UpdateOp::Add(amount))
                            .update(k(11 + others[1] as u64), UpdateOp::Append { amount, tag }),
                    ),
            )
        };
        let read3 = TxnPlan::read_only(
            SubtxnPlan::new(n(0))
                .read(k(1))
                .read(k(11))
                .child(SubtxnPlan::new(n(1)).read(k(2)).read(k(12)))
                .child(SubtxnPlan::new(n(2)).read(k(3)).read(k(13))),
        );
        let arrivals = vec![
            Arrival::at(ms(1), visit3(5, 1, 0)),
            Arrival::at(ms(3), visit3(9, 2, 1)),
            Arrival::at(ms(7), read3),
        ];
        (schema, ClusterConfig::new(3), arrivals, vec![ms(2)], vec![])
    }

    #[allow(clippy::type_complexity)]
    fn crash_p2(
        &self,
    ) -> (
        Schema,
        ClusterConfig,
        Vec<Arrival>,
        Vec<SimTime>,
        Vec<NodeCrash>,
    ) {
        // Node 1 goes down at 4 ms — inside Phase 2 on the default
        // schedule, and reorderable across any phase by the checker — and
        // recovers from its in-memory WAL. The coordinator's retransmit
        // timer restores liveness for broadcasts lost to the dead window.
        let mut cfg = ClusterConfig::new(2).durability(DurabilityMode::Memory {
            checkpoint_every: 4,
        });
        cfg.protocol.coordinator.retransmit = Some(SimDuration::from_millis(2));
        let arrivals = vec![
            Arrival::at(ms(1), visit2(50, 1)),
            Arrival::at(ms(2), visit2(3, 2)),
            Arrival::at(ms(12), inquiry2()),
        ];
        let crashes = vec![NodeCrash {
            node: n(1),
            at: ms(4),
            restart_after: SimDuration::from_millis(3),
        }];
        (two_node_schema(), cfg, arrivals, vec![ms(3)], crashes)
    }

    #[allow(clippy::type_complexity)]
    fn nc_gate(
        &self,
    ) -> (
        Schema,
        ClusterConfig,
        Vec<Arrival>,
        Vec<SimTime>,
        Vec<NodeCrash>,
    ) {
        // Non-commuting assignments race an advancement: the vu == vr + 1
        // gate must hold them while the window is wide, and the lock table
        // must be clean afterwards.
        let schema = Schema::new(vec![
            KeyDecl::register(k(1), n(0), 0),
            KeyDecl::register(k(2), n(1), 0),
            KeyDecl::counter(k(3), n(1), 0),
        ]);
        let nc = |a: i64, b: i64| {
            TxnPlan::non_commuting(
                SubtxnPlan::new(n(0))
                    .update(k(1), UpdateOp::Assign(a))
                    .child(SubtxnPlan::new(n(1)).update(k(2), UpdateOp::Assign(b))),
            )
        };
        let noise = TxnPlan::commuting(SubtxnPlan::new(n(1)).update(k(3), UpdateOp::Add(1)));
        let read = TxnPlan::read_only(
            SubtxnPlan::new(n(0))
                .read(k(1))
                .child(SubtxnPlan::new(n(1)).read(k(2)).read(k(3))),
        );
        let arrivals = vec![
            Arrival::at(ms(1), nc(5, 6)),
            Arrival::at(ms(2), noise),
            Arrival::at(ms(4), nc(8, 9)),
            Arrival::at(ms(8), read),
        ];
        (
            schema,
            ClusterConfig::new(2).with_locks(),
            arrivals,
            vec![ms(3)],
            vec![],
        )
    }

    #[allow(clippy::type_complexity)]
    fn stripe_interleave(
        &self,
    ) -> (
        Schema,
        ClusterConfig,
        Vec<Arrival>,
        Vec<SimTime>,
        Vec<NodeCrash>,
    ) {
        // Node stores split into 2 key stripes. Under the stripe hash,
        // node 0's counter k(1) routes to stripe 1 and its journal k(11)
        // to stripe 0, so every cross-node visit touches both stripes of
        // node 0 in one dispatch while its node-1 leg is in flight. The
        // stripe-pure arrivals (counter-only, journal-only) let the
        // checker land work on exactly one stripe on either side of the
        // advancement's version switch: the version window (vu, vr) is
        // per-node, never per-stripe, so P1/P2/P5 and the Thm 4.1 audit
        // must hold exactly as in the unsharded scenarios.
        let stripe1_only = TxnPlan::commuting(SubtxnPlan::new(n(0)).update(k(1), UpdateOp::Add(3)));
        let stripe0_only = TxnPlan::commuting(
            SubtxnPlan::new(n(0)).update(k(11), UpdateOp::Append { amount: 3, tag: 4 }),
        );
        let arrivals = vec![
            Arrival::at(ms(1), visit2(100, 1)),
            Arrival::at(ms(2), stripe1_only),
            Arrival::at(ms(4), stripe0_only),
            Arrival::at(ms(6), inquiry2()),
        ];
        (
            two_node_schema(),
            ClusterConfig::new(2).stripes(2),
            arrivals,
            vec![ms(3)],
            vec![],
        )
    }

    #[allow(clippy::type_complexity)]
    fn p2_skip(
        &self,
    ) -> (
        Schema,
        ClusterConfig,
        Vec<Arrival>,
        Vec<SimTime>,
        Vec<NodeCrash>,
    ) {
        // The planted bug: the coordinator publishes the new read version
        // without draining the old update version. A schedule that holds
        // back the visit's node-1 leg until after AdvanceRead and the
        // inquiry exposes a partial transaction to a committed read — the
        // paper's §1 motivating anomaly, which Phase 2 exists to prevent.
        let schema = Schema::new(vec![
            KeyDecl::journal(k(11), n(0)),
            KeyDecl::journal(k(12), n(1)),
        ]);
        let visit = TxnPlan::commuting(
            SubtxnPlan::new(n(0))
                .update(k(11), UpdateOp::Append { amount: 40, tag: 1 })
                .child(
                    SubtxnPlan::new(n(1)).update(k(12), UpdateOp::Append { amount: 40, tag: 1 }),
                ),
        );
        let inquiry = TxnPlan::read_only(
            SubtxnPlan::new(n(0))
                .read(k(11))
                .child(SubtxnPlan::new(n(1)).read(k(12))),
        );
        let mut cfg = ClusterConfig::new(2);
        cfg.protocol.coordinator.skip_p2_drain = true;
        let arrivals = vec![Arrival::at(ms(1), visit), Arrival::at(ms(3), inquiry)];
        (schema, cfg, arrivals, vec![ms(2)], vec![])
    }

    /// Two partitions of two nodes each. Commuting trees cross the
    /// partition boundary in both directions (one subtransaction per
    /// foreign partition — the gauge-counter unit), local trees skew the
    /// partitions internally, and both advancements run concurrently so
    /// reorderings can land a foreign child on either side of the peer's
    /// version switch. Reads stay partition-local: version numbers live in
    /// per-partition spaces, so only a within-partition read order is
    /// meaningful to the audit.
    #[allow(clippy::type_complexity)]
    fn skew_cross_partition(&self) -> (Schema, ClusterConfig, Vec<Vec<Arrival>>, Vec<SimTime>) {
        let topo = self.topology();
        let p0 = topo.nodes(PartitionId(0));
        let p1 = topo.nodes(PartitionId(1));
        let counter = |node: NodeId| k(1 + u64::from(node.0));
        let journal = |node: NodeId| k(11 + u64::from(node.0));
        let mut decls = Vec::new();
        for p in 0..topo.n_partitions() {
            for node in topo.nodes(PartitionId(p)) {
                decls.push(KeyDecl::counter(counter(node), node, 0));
                decls.push(KeyDecl::journal(journal(node), node));
            }
        }
        let schema = Schema::new(decls);
        let charge = |node: NodeId, amount: i64, tag: u32| {
            SubtxnPlan::new(node)
                .update(counter(node), UpdateOp::Add(amount))
                .update(journal(node), UpdateOp::Append { amount, tag })
        };
        let visit = |targets: &[NodeId], amount: i64, tag: u32| {
            let mut root = charge(targets[0], amount, tag);
            for &node in &targets[1..] {
                root = root.child(charge(node, amount, tag));
            }
            TxnPlan::commuting(root)
        };
        let local_read = |nodes: &[NodeId]| {
            let mut root = SubtxnPlan::new(nodes[0])
                .read(counter(nodes[0]))
                .read(journal(nodes[0]));
            for &node in &nodes[1..] {
                root = root.child(
                    SubtxnPlan::new(node)
                        .read(counter(node))
                        .read(journal(node)),
                );
            }
            TxnPlan::read_only(root)
        };
        let s0 = vec![
            // Cross-partition, rooted on P0, one foreign child on P1.
            Arrival::at(ms(1), visit(&[p0[0], p1[0]], 100, 1)),
            // Partition-local tree spanning both P0 nodes.
            Arrival::at(ms(2), visit(&[p0[0], p0[1]], 7, 2)),
            Arrival::at(ms(6), local_read(&p0)),
        ];
        let s1 = vec![
            // Cross-partition the other way, rooted on P1.
            Arrival::at(ms(2), visit(&[p1[0], p0[1]], 9, 3)),
            Arrival::at(ms(6), local_read(&p1)),
        ];
        let cfg = ClusterConfig::new(self.n_nodes).topology(topo);
        (schema, cfg, vec![s0, s1], vec![ms(3)])
    }
}

/// Snapshot every database node's invariant view, whatever the partition
/// layout: the actor vector is filtered for node variants rather than
/// sliced at a fixed prefix, so single-partition and sharded scenarios
/// share one accessor.
pub fn node_views(sim: &Simulation<ClusterActor>) -> Vec<threev_core::InvariantView> {
    sim.actors()
        .iter()
        .filter_map(|a| match a {
            ClusterActor::Node(node) => Some(node.invariant_view()),
            _ => None,
        })
        .collect()
}

/// Every client's transaction records, concatenated in actor (partition)
/// order. Sharded scenarios host one client per partition, so the result
/// is owned rather than a borrow of a single client's slice.
pub fn client_records(sim: &Simulation<ClusterActor>) -> Vec<threev_analysis::TxnRecord> {
    let mut out = Vec::new();
    for a in sim.actors() {
        if let ClusterActor::Client(c) = a {
            out.extend(c.records().iter().cloned());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_sim::QuiesceOutcome;

    #[test]
    fn every_scenario_builds_and_runs_clean_on_the_default_schedule() {
        for sc in sound() {
            let mut sim = sc.build(1);
            let out = sim.run_to_quiescence(SimTime::MAX);
            assert!(
                matches!(out, QuiesceOutcome::Quiescent(_)),
                "{} did not quiesce: {out:?}",
                sc.name
            );
            let views = node_views(&sim);
            assert_eq!(views.len(), sc.total_nodes() as usize, "{}", sc.name);
            let records = client_records(&sim);
            assert!(!records.is_empty(), "{}", sc.name);
            let viols = sc.oracle().check_quiescent(&views, &records);
            assert!(viols.is_empty(), "{}: {viols:?}", sc.name);
        }
    }

    #[test]
    fn catalogue_lookup() {
        assert!(find("two-node-basic").is_some());
        assert!(find("p2-skip").is_some_and(|s| s.sabotaged));
        assert!(find("skew-cross-partition").is_some_and(|s| s.partitions == 2));
        assert!(find("no-such").is_none());
        assert!(sound().all(|s| !s.sabotaged));
    }

    /// The stripe scenario really stripes: both database nodes run two
    /// stripes, node 0's traffic lands in both of them, and the default
    /// schedule still satisfies the oracle.
    #[test]
    fn stripe_scenario_actually_stripes() {
        let sc = find("stripe-interleave").unwrap();
        let mut sim = sc.build(1);
        let out = sim.run_to_quiescence(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)), "{out:?}");
        for a in sim.actors() {
            if let ClusterActor::Node(node) = a {
                assert_eq!(
                    node.store().n_stripes(),
                    2,
                    "node {:?}",
                    node.store().node()
                );
            }
        }
        let node0 = sim
            .actors()
            .iter()
            .find_map(|a| match a {
                ClusterActor::Node(node) if node.store().node() == n(0) => Some(node),
                _ => None,
            })
            .expect("node 0");
        let stripes_touched: std::collections::BTreeSet<usize> = node0
            .store()
            .keys()
            .map(|key| node0.store().stripe_of_key(key))
            .collect();
        assert_eq!(
            stripes_touched.len(),
            2,
            "node 0 must hold keys in both stripes"
        );
    }

    /// The sharded scenario really is sharded: both partitions host a
    /// client that commits work, the views span all four nodes, and the
    /// cross-partition trees land on both sides.
    #[test]
    fn cross_partition_scenario_spans_partitions() {
        let sc = find("skew-cross-partition").unwrap();
        let mut sim = sc.build(1);
        let out = sim.run_to_quiescence(SimTime::MAX);
        assert!(matches!(out, QuiesceOutcome::Quiescent(_)), "{out:?}");
        let views = node_views(&sim);
        assert_eq!(views.len(), 4);
        // Every node executed at least one journal append: the cross trees
        // reached their foreign children.
        for v in &views {
            assert!(
                v.chain_lengths.iter().any(|&(_, len)| len >= 1),
                "node {} saw no writes",
                v.node
            );
        }
        let records = client_records(&sim);
        let topo = sc.topology();
        assert!(
            records
                .iter()
                .any(|r| topo.partition_of(r.id.origin) == threev_model::PartitionId(0)),
            "no transactions rooted on partition 0"
        );
        assert!(
            records
                .iter()
                .any(|r| topo.partition_of(r.id.origin) == threev_model::PartitionId(1)),
            "no transactions rooted on partition 1"
        );
    }
}
