//! The invariant oracle: what "correct" means, checked after every step.
//!
//! The oracle consumes the cheap read-only [`InvariantView`] snapshots the
//! nodes export plus the client's transaction records, and decides whether
//! the state the scheduler just produced is one the paper allows:
//!
//! * **P1 (three-version bound)** — no item's version chain exceeds 3
//!   entries (§2.1, Theorem 2.1);
//! * **P2 (version window)** — every node satisfies `vr < vu ≤ vr + 2`
//!   (§2.2; equality `vu = vr + 2` only transiently during advancement);
//! * **P5 (counter soundness)** — globally, for every `(requester p,
//!   executor q)` pair and version `v`, completions `C(v)pq` never exceed
//!   requests `R(v)pq` (§4.3). Checked only for `v ≥ max vr` across nodes:
//!   per-node counter GC is asynchronous, so older versions may be
//!   one-sidedly reclaimed without that being a bug;
//! * **Def 3.2 (bounded skew)** — across nodes, `max vu − min vu ≤ 1` and
//!   `max vr − min vr ≤ 1`. Skipped in crash scenarios: a node recovering
//!   from a checkpoint legitimately lags further until it re-syncs;
//! * **Thm 4.1 (serializability)** — the [`Auditor`] over completed
//!   transaction records: reads are atomic, version-exact, and never
//!   observe aborted work. Run incrementally over *completed* records at
//!   every step (a violation among completed transactions can never be
//!   retracted by later events) and over everything at quiescence;
//! * **P3/P7 (quiescent residue)** — once the event queue drains, every
//!   node reports quiescent and the NC3V lock table holds no exclusive
//!   locks and no waiters.

use std::collections::BTreeMap;
use std::fmt;

use threev_analysis::{Auditor, TxnRecord, TxnStatus};
use threev_core::InvariantView;
use threev_model::{gauge_peer, Key, NodeId, PartitionId, Topology, TxnId, VersionNo};

/// One invariant violation, with enough context to be a useful diagnostic
/// on its own (counterexample reports embed the `Display` form).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// P1: an item's version chain grew beyond three entries.
    ChainTooLong {
        /// Node holding the chain.
        node: NodeId,
        /// The item.
        key: Key,
        /// Observed chain length.
        len: usize,
    },
    /// P2: a node's `(vr, vu)` window left `vr < vu ≤ vr + 2`.
    WindowViolated {
        /// The offending node.
        node: NodeId,
        /// Its read version.
        vr: VersionNo,
        /// Its update version.
        vu: VersionNo,
    },
    /// P5: more completions than requests for a pair at a live version.
    CounterImbalance {
        /// Version of the unbalanced counters.
        version: VersionNo,
        /// Requesting node (owns `R(v)pq`).
        requester: NodeId,
        /// Executing node (owns `C(v)pq`).
        executor: NodeId,
        /// Requests recorded at the requester.
        requests: u64,
        /// Completions recorded at the executor.
        completions: u64,
    },
    /// Def 3.2: update-version skew across nodes exceeded one.
    UpdateSkew {
        /// Smallest `vu` in the cluster.
        min: VersionNo,
        /// Largest `vu` in the cluster.
        max: VersionNo,
    },
    /// Def 3.2: read-version skew across nodes exceeded one.
    ReadSkew {
        /// Smallest `vr` in the cluster.
        min: VersionNo,
        /// Largest `vr` in the cluster.
        max: VersionNo,
    },
    /// An exclusive NC3V lock survived into quiescence.
    LockResidue {
        /// Node with the stuck lock.
        node: NodeId,
        /// Locked item.
        key: Key,
        /// Holder.
        txn: TxnId,
    },
    /// A node still reports in-flight protocol state at quiescence.
    NotQuiescent {
        /// The busy node.
        node: NodeId,
    },
    /// The serializability audit over transaction records failed.
    AuditFailed {
        /// Atomicity violations (partial transactions observed).
        atomicity: u64,
        /// Version-exactness violations (Theorem 4.1 order broken).
        version_exactness: u64,
        /// Reads that observed aborted transactions.
        aborted_visible: u64,
        /// Debug rendering of the first sampled violation.
        first: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ChainTooLong { node, key, len } => {
                write!(f, "P1: chain of {key:?} on {node} has {len} versions (> 3)")
            }
            Violation::WindowViolated { node, vr, vu } => {
                write!(
                    f,
                    "P2: window on {node} is vr={vr} vu={vu} (need vr < vu <= vr+2)"
                )
            }
            Violation::CounterImbalance {
                version,
                requester,
                executor,
                requests,
                completions,
            } => write!(
                f,
                "P5: C({version}){requester}->{executor} = {completions} exceeds R = {requests}"
            ),
            Violation::UpdateSkew { min, max } => {
                write!(f, "Def 3.2: update-version skew {min}..{max} exceeds 1")
            }
            Violation::ReadSkew { min, max } => {
                write!(f, "Def 3.2: read-version skew {min}..{max} exceeds 1")
            }
            Violation::LockResidue { node, key, txn } => {
                write!(
                    f,
                    "NC3V: exclusive lock on {key:?}@{node} held by {txn:?} at quiescence"
                )
            }
            Violation::NotQuiescent { node } => {
                write!(f, "residue: {node} not quiescent after the queue drained")
            }
            Violation::AuditFailed {
                atomicity,
                version_exactness,
                aborted_visible,
                first,
            } => write!(
                f,
                "Thm 4.1: audit failed (atomicity={atomicity} version={version_exactness} \
                 aborted-visible={aborted_visible}): {first}"
            ),
        }
    }
}

/// The oracle configuration. Build one per scenario via
/// [`crate::scenario::Scenario::oracle`].
#[derive(Clone, Copy, Debug)]
pub struct Oracle {
    /// Check Def 3.2 bounded skew. Off for crash scenarios, where a
    /// recovering node legitimately lags the cluster.
    pub check_skew: bool,
    /// Partition layout of the checked cluster. The global invariants are
    /// partition-scoped: version numbers live in per-partition spaces, so
    /// skew and the counter GC horizon only compare nodes of the same
    /// partition, and the audit drops version exactness once more than one
    /// version space is in play.
    pub topology: Topology,
}

impl Oracle {
    /// Invariants that must hold after *every* delivered event.
    pub fn check_step(&self, views: &[InvariantView], records: &[TxnRecord]) -> Vec<Violation> {
        let mut out = self.structural(views);
        out.extend(self.audit(records, true));
        out
    }

    /// Invariants that must additionally hold once the event queue drains.
    pub fn check_quiescent(
        &self,
        views: &[InvariantView],
        records: &[TxnRecord],
    ) -> Vec<Violation> {
        let mut out = self.structural(views);
        for v in views {
            for &(key, txn) in &v.exclusive_held {
                out.push(Violation::LockResidue {
                    node: v.node,
                    key,
                    txn,
                });
            }
            if !v.quiescent {
                out.push(Violation::NotQuiescent { node: v.node });
            }
        }
        out.extend(self.audit(records, false));
        out
    }

    fn structural(&self, views: &[InvariantView]) -> Vec<Violation> {
        let mut out = Vec::new();
        // A down node's snapshot is the post-crash wipe, not a protocol
        // state: per-node invariants are meaningless against it, and the
        // global checks below would compare live requester/executor
        // counters against tables recovery has not replayed yet. The
        // per-node checks resume for it at restart; the global checks
        // resume once the whole cluster is up.
        let any_down = views.iter().any(|v| v.down);
        for v in views.iter().filter(|v| !v.down) {
            for &(key, len) in &v.chain_lengths {
                if len > 3 {
                    out.push(Violation::ChainTooLong {
                        node: v.node,
                        key,
                        len,
                    });
                }
            }
            if !(v.vu > v.vr && v.vu.0 <= v.vr.0 + 2) {
                out.push(Violation::WindowViolated {
                    node: v.node,
                    vr: v.vr,
                    vu: v.vu,
                });
            }
        }
        if !any_down {
            out.extend(self.counter_balance(views));
            if self.check_skew {
                out.extend(self.skew(views));
            }
        }
        out
    }

    /// Global counter soundness: aggregate every node's `(requests_to,
    /// completions_from)` export into per-`(version, requester, executor)`
    /// pairs and require `C ≤ R` for every version at or above the pair's
    /// partition GC horizon (max `vr` within that partition — below it,
    /// one side may already be reclaimed).
    ///
    /// Cross-partition gauge rows pair **sender-local**, mirroring
    /// [`threev_core::counters::CounterMatrix::assemble`]: the node
    /// shipping work to a peer partition keeps both the R and the C side
    /// of the `(node, gauge)` pair, so a gauge completion joins its own
    /// node's request row rather than a (nonexistent) gauge actor's.
    fn counter_balance(&self, views: &[InvariantView]) -> Vec<Violation> {
        let mut horizons: BTreeMap<PartitionId, VersionNo> = BTreeMap::new();
        for v in views {
            let p = self.topology.partition_of(v.node);
            let h = horizons.entry(p).or_insert(v.vr);
            *h = (*h).max(v.vr);
        }
        let mut pairs: BTreeMap<(VersionNo, NodeId, NodeId), (u64, u64)> = BTreeMap::new();
        for v in views {
            for (ver, requests_to, completions_from) in &v.counters {
                for &(q, r) in requests_to {
                    pairs.entry((*ver, v.node, q)).or_default().0 += r;
                }
                for &(p, c) in completions_from {
                    let key = if gauge_peer(p).is_some() {
                        (*ver, v.node, p)
                    } else {
                        (*ver, p, v.node)
                    };
                    pairs.entry(key).or_default().1 += c;
                }
            }
        }
        pairs
            .into_iter()
            .filter(|&((ver, requester, _), (r, c))| {
                // The requester of every pair is a real node (gauge pairs
                // key sender-local), so its partition picks the horizon.
                let horizon = horizons
                    .get(&self.topology.partition_of(requester))
                    .copied()
                    .unwrap_or(VersionNo(0));
                ver >= horizon && c > r
            })
            .map(
                |((version, requester, executor), (requests, completions))| {
                    Violation::CounterImbalance {
                        version,
                        requester,
                        executor,
                        requests,
                        completions,
                    }
                },
            )
            .collect()
    }

    /// Def 3.2 bounded skew, scoped per partition: each partition advances
    /// its own version space independently, so only nodes sharing a
    /// coordinator are comparable.
    fn skew(&self, views: &[InvariantView]) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut groups: BTreeMap<PartitionId, (Vec<VersionNo>, Vec<VersionNo>)> = BTreeMap::new();
        for v in views {
            let g = groups
                .entry(self.topology.partition_of(v.node))
                .or_default();
            g.0.push(v.vu);
            g.1.push(v.vr);
        }
        for (vus, vrs) in groups.into_values() {
            if let (Some(&min), Some(&max)) = (vus.iter().min(), vus.iter().max()) {
                if max.0 - min.0 > 1 {
                    out.push(Violation::UpdateSkew { min, max });
                }
            }
            if let (Some(&min), Some(&max)) = (vrs.iter().min(), vrs.iter().max()) {
                if max.0 - min.0 > 1 {
                    out.push(Violation::ReadSkew { min, max });
                }
            }
        }
        out
    }

    /// Serializability audit. With `completed_only`, records still in
    /// flight are excluded: their observations are not final yet, but any
    /// violation among the already-completed set is permanent, so flagging
    /// early is sound and lets counterexamples stop (and shrink) well
    /// before full quiescence.
    ///
    /// With more than one partition, version numbers are stripped before
    /// auditing: a cross-partition tree commits at (potentially) different
    /// version numbers per partition, so Theorem 4.1's version-exact order
    /// is only defined within a partition. Atomicity and
    /// aborted-invisibility remain fully checked.
    fn audit(&self, records: &[TxnRecord], completed_only: bool) -> Option<Violation> {
        let mut subset: Vec<TxnRecord> = records
            .iter()
            .filter(|r| !completed_only || r.status != TxnStatus::InFlight)
            .cloned()
            .collect();
        if !self.topology.is_single() {
            for r in &mut subset {
                r.version = None;
                for read in &mut r.reads {
                    read.version = None;
                }
            }
        }
        let report = Auditor::new(&subset).check();
        if report.clean() {
            return None;
        }
        Some(Violation::AuditFailed {
            atomicity: report.atomicity_violations,
            version_exactness: report.version_violations,
            aborted_visible: report.aborted_visible,
            first: report
                .samples
                .first()
                .map(|s| format!("{s:?}"))
                .unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_view(node: u16) -> InvariantView {
        // Requests only: outstanding work (R=3, C=0) is balanced-enough
        // (C ≤ R) and stays consistent whether the oracle sees one view
        // or the whole cluster.
        let other = NodeId(1 - node);
        InvariantView {
            node: NodeId(node),
            vu: VersionNo(1),
            vr: VersionNo(0),
            chain_lengths: vec![(Key(1), 2)],
            counters: vec![(VersionNo(1), vec![(other, 3)], vec![])],
            exclusive_held: vec![],
            lock_waiters: 0,
            quiescent: true,
            down: false,
        }
    }

    fn oracle() -> Oracle {
        Oracle {
            check_skew: true,
            topology: Topology::new(1, 2),
        }
    }

    #[test]
    fn clean_snapshot_passes() {
        let views = [clean_view(0), clean_view(1)];
        assert_eq!(oracle().check_step(&views, &[]), vec![]);
        assert_eq!(oracle().check_quiescent(&views, &[]), vec![]);
    }

    #[test]
    fn four_version_chain_raises_p1() {
        let mut v = clean_view(0);
        v.chain_lengths = vec![(Key(7), 4)];
        let got = oracle().check_step(&[v], &[]);
        assert_eq!(
            got,
            vec![Violation::ChainTooLong {
                node: NodeId(0),
                key: Key(7),
                len: 4
            }]
        );
    }

    #[test]
    fn window_too_wide_raises_p2() {
        let mut v = clean_view(0);
        v.vr = VersionNo(1);
        v.vu = VersionNo(4); // vu > vr + 2
        let got = oracle().check_step(&[v], &[]);
        assert_eq!(
            got,
            vec![Violation::WindowViolated {
                node: NodeId(0),
                vr: VersionNo(1),
                vu: VersionNo(4)
            }]
        );
    }

    #[test]
    fn update_version_not_ahead_raises_p2() {
        let mut v = clean_view(0);
        v.vr = VersionNo(2);
        v.vu = VersionNo(2); // vu must be strictly ahead of vr
        let got = oracle().check_step(&[v], &[]);
        assert!(
            matches!(got[0], Violation::WindowViolated { .. }),
            "{got:?}"
        );
    }

    #[test]
    fn negative_counter_balance_raises_p5() {
        // Node 1 recorded 5 completions for requests node 0 only made 3 of.
        let mut a = clean_view(0);
        a.counters = vec![(VersionNo(1), vec![(NodeId(1), 3)], vec![])];
        let mut b = clean_view(1);
        b.counters = vec![(VersionNo(1), vec![], vec![(NodeId(0), 5)])];
        let got = oracle().check_step(&[a, b], &[]);
        assert_eq!(
            got,
            vec![Violation::CounterImbalance {
                version: VersionNo(1),
                requester: NodeId(0),
                executor: NodeId(1),
                requests: 3,
                completions: 5
            }]
        );
    }

    #[test]
    fn gc_horizon_masks_stale_versions() {
        // Same imbalance, but at a version below every node's vr: one side
        // has GC'd its counters, which is not a bug.
        let mut a = clean_view(0);
        a.vr = VersionNo(2);
        a.vu = VersionNo(3);
        a.counters = vec![(VersionNo(1), vec![], vec![(NodeId(1), 5)])];
        let mut b = clean_view(1);
        b.vr = VersionNo(2);
        b.vu = VersionNo(3);
        b.counters = vec![];
        assert_eq!(oracle().check_step(&[a, b], &[]), vec![]);
    }

    #[test]
    fn skew_beyond_one_raises_def_3_2() {
        let mut a = clean_view(0);
        a.vu = VersionNo(3);
        a.vr = VersionNo(2);
        let b = clean_view(1); // vu=1, vr=0
        let got = oracle().check_step(&[a.clone(), b.clone()], &[]);
        assert!(got.contains(&Violation::UpdateSkew {
            min: VersionNo(1),
            max: VersionNo(3)
        }));
        assert!(got.contains(&Violation::ReadSkew {
            min: VersionNo(0),
            max: VersionNo(2)
        }));
        // Crash-scenario oracles skip the skew rule.
        let lax = Oracle {
            check_skew: false,
            topology: Topology::new(1, 2),
        };
        assert_eq!(lax.check_step(&[a, b], &[]), vec![]);
    }

    #[test]
    fn down_node_is_masked() {
        // A crashed-but-not-yet-recovered node reports its wiped state:
        // nothing about it may be flagged, and the cross-node checks
        // (counter soundness, skew) pause until the cluster is whole —
        // the down node's requester-side tables are gone until recovery.
        let mut crashed = clean_view(1);
        crashed.down = true;
        crashed.vr = VersionNo(1);
        crashed.vu = VersionNo(1); // would violate P2 if checked
        crashed.counters = vec![];
        let mut live = clean_view(0);
        live.vu = VersionNo(3);
        live.vr = VersionNo(2); // would violate Def 3.2 against vu=1
                                // C(v2) from n1 with n1's R-side wiped: would be a false P5 hit.
        live.counters = vec![(VersionNo(2), vec![], vec![(NodeId(1), 5)])];
        assert_eq!(oracle().check_step(&[live, crashed], &[]), vec![]);
    }

    #[test]
    fn quiescent_residue_flagged() {
        let mut v = clean_view(0);
        v.exclusive_held = vec![(Key(9), TxnId::new(4, NodeId(0)))];
        v.quiescent = false;
        let got = oracle().check_quiescent(&[v], &[]);
        assert!(got.contains(&Violation::LockResidue {
            node: NodeId(0),
            key: Key(9),
            txn: TxnId::new(4, NodeId(0))
        }));
        assert!(got.contains(&Violation::NotQuiescent { node: NodeId(0) }));
        // The same state passes the per-step check: locks and in-flight
        // work are normal while events remain.
        assert_eq!(oracle().check_step(&[clean_view(0)], &[]), vec![]);
    }
}
