//! The on-disk schedule format.
//!
//! A schedule is the full identity of one explored execution: the scenario
//! name, the kernel seed, and the list of choice indices — at step `i` the
//! scheduler picked `choices[i]` from the sorted enabled-event list.
//! Choices past the end of the list default to `0` (the earliest event,
//! i.e. the normal schedule), and out-of-range indices clamp to the last
//! enabled event, so a *prefix* is already a complete, replayable
//! counterexample.
//!
//! The format is line-oriented text so counterexamples diff cleanly in
//! review:
//!
//! ```text
//! # free-form comment
//! scenario = two-node-basic
//! seed = 7
//! choices = 0 0 3 1 0 2
//! choices = 1 4
//! ```
//!
//! Repeated `choices` lines concatenate, which keeps long schedules
//! wrapped at a readable width.

use std::fmt::Write as _;

/// A parsed schedule file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Scenario name (see [`crate::scenario::find`]).
    pub scenario: String,
    /// Kernel seed the scenario was built with.
    pub seed: u64,
    /// Choice indices, one per step.
    pub choices: Vec<u32>,
}

impl Schedule {
    /// Parse the text format. Errors name the offending line; a schedule
    /// file is test input, so bad content must fail loudly rather than be
    /// silently repaired.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut scenario = None;
        let mut seed = None;
        let mut choices = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = i + 1;
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`, got `{line}`"))?;
            match key.trim() {
                "scenario" => scenario = Some(value.trim().to_string()),
                "seed" => {
                    seed =
                        Some(value.trim().parse::<u64>().map_err(|e| {
                            format!("line {lineno}: bad seed `{}`: {e}", value.trim())
                        })?)
                }
                "choices" => {
                    for tok in value.split_whitespace() {
                        choices.push(
                            tok.parse::<u32>()
                                .map_err(|e| format!("line {lineno}: bad choice `{tok}`: {e}"))?,
                        );
                    }
                }
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        Ok(Schedule {
            scenario: scenario.ok_or("missing `scenario = ...` line".to_string())?,
            seed: seed.ok_or("missing `seed = ...` line".to_string())?,
            choices,
        })
    }

    /// Render back to the text format, with `comment` lines on top.
    pub fn render(&self, comment: &str) -> String {
        let mut out = String::new();
        for line in comment.lines() {
            let _ = writeln!(out, "# {line}");
        }
        let _ = writeln!(out, "scenario = {}", self.scenario);
        let _ = writeln!(out, "seed = {}", self.seed);
        if self.choices.is_empty() {
            let _ = writeln!(out, "choices =");
        }
        for chunk in self.choices.chunks(16) {
            let toks: Vec<String> = chunk.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(out, "choices = {}", toks.join(" "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let s = Schedule {
            scenario: "two-node-basic".into(),
            seed: 42,
            choices: (0..40).map(|i| i % 5).collect(),
        };
        let text = s.render("recorded by a test");
        assert!(text.starts_with("# recorded by a test\n"));
        assert_eq!(Schedule::parse(&text), Ok(s));
    }

    #[test]
    fn empty_choice_list_roundtrips() {
        let s = Schedule {
            scenario: "x".into(),
            seed: 0,
            choices: vec![],
        };
        assert_eq!(Schedule::parse(&s.render("")), Ok(s));
    }

    #[test]
    fn errors_name_the_line() {
        let err = Schedule::parse("scenario = a\nseed = b\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = Schedule::parse("scenario = a\nseed = 1\nbogus\n").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        let err = Schedule::parse("seed = 1\n").unwrap_err();
        assert!(err.contains("scenario"), "{err}");
        let err = Schedule::parse("scenario = a\nseed = 1\nwhat = 4\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }
}
