//! Counterexample shrinking: delta-debugging over choice indices.
//!
//! A recorded violating schedule from a random walk is mostly noise —
//! dozens of arbitrary choices of which only a handful force the bad
//! interleaving. Shrinking exploits the replay semantics of
//! [`crate::schedule::Schedule`]: a missing choice defaults to `0` (the
//! earliest event), so "simplify" means "set choices back to 0", and a
//! trailing run of zeros can be dropped entirely. The passes:
//!
//! 1. **truncate** — choices after the violation step never ran;
//! 2. **zero out** — ddmin-style: try resetting halves, then quarters,
//!    ... then single choices to `0`, keeping any candidate that still
//!    violates (any violation counts: a simpler schedule that trips a
//!    different invariant is still a minimal repro of broken protocol);
//! 3. **trim** — drop the trailing zeros and re-verify.
//!
//! The result is the schedule written to `tests/schedules/` style
//! counterexample files: short, mostly zeros, and deterministic to
//! replay.

use crate::explore::{run_schedule, ViolationAt};
use crate::scenario::Scenario;

/// A shrunk counterexample.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimal choice list (still violating).
    pub choices: Vec<u32>,
    /// The violation the minimal schedule reproduces.
    pub at: ViolationAt,
    /// Replays spent shrinking.
    pub attempts: u64,
}

/// Shrink `choices` against `(scenario, seed)`. Returns `None` if the
/// original schedule does not reproduce any violation (stale input).
pub fn shrink(
    scenario: &Scenario,
    seed: u64,
    choices: &[u32],
    max_steps: u64,
) -> Option<ShrinkOutcome> {
    let mut attempts = 0u64;
    let mut probe = |c: &[u32]| -> Option<ViolationAt> {
        attempts += 1;
        run_schedule(scenario, seed, c, max_steps).violation
    };

    let first = probe(choices)?;
    let mut cur: Vec<u32> = choices[..choices.len().min(first.step as usize)].to_vec();

    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut lo = 0;
        while lo < cur.len() {
            let hi = (lo + chunk).min(cur.len());
            if cur[lo..hi].iter().all(|&c| c == 0) {
                lo = hi;
                continue;
            }
            let mut cand = cur.clone();
            for c in &mut cand[lo..hi] {
                *c = 0;
            }
            if let Some(v) = probe(&cand) {
                cand.truncate(cand.len().min(v.step as usize));
                cur = cand;
                // Re-scan the same window: it is now all zeros, so the
                // guard above advances past it next iteration.
            } else {
                lo = hi;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    while cur.last() == Some(&0) {
        cur.pop();
    }
    let at = probe(&cur)?;
    Some(ShrinkOutcome {
        choices: cur,
        at,
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore_random;
    use crate::scenario::find;

    #[test]
    fn non_violating_schedule_shrinks_to_none() {
        let sc = find("two-node-basic").unwrap();
        assert!(shrink(sc, 3, &[0, 0, 1], 500).is_none());
    }

    #[test]
    fn planted_bug_counterexample_shrinks() {
        let sc = find("p2-skip").unwrap();
        let cex = explore_random(sc, 5, 60_000, 200)
            .violation
            .expect("sabotage must be found");
        let shrunk = shrink(sc, 5, &cex.choices, 500).expect("must still reproduce");
        assert!(
            shrunk.choices.len() <= cex.choices.len(),
            "shrinking must not grow the schedule"
        );
        // The minimal schedule still reproduces after a round-trip.
        let rerun = run_schedule(sc, 5, &shrunk.choices, 500);
        assert!(rerun.violation.is_some());
    }
}
