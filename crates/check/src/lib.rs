//! Deterministic model checking for the 3V protocol.
//!
//! The simulation kernel executes one fixed schedule per seed. This crate
//! turns it into a model checker: the kernel exposes its enabled-event set
//! ([`threev_sim::Simulation::enabled_events`]) and executes whichever
//! event a [`threev_sim::Scheduler`] picks, so *every* interleaving of a
//! scenario's events is reachable, not just the timestamp-ordered one.
//! After each step an invariant oracle checks the paper's safety
//! properties; when a state fails, the offending schedule is shrunk to a
//! minimal, replayable counterexample.
//!
//! Module map:
//!
//! * [`scenario`] — the catalogue of tiny fixed cluster configurations
//!   worth exploring (phase boundaries, version skew, crash in Phase 2,
//!   the NC3V gate, and a deliberately sabotaged build);
//! * [`oracle`] — the invariants: P1 (≤ 3 versions), P2 (`vr < vu ≤
//!   vr + 2`), P5 (counter soundness), Def 3.2 (bounded skew), Thm 4.1
//!   (serializability via the analysis auditor), and quiescent-residue
//!   checks;
//! * [`schedule`] — the replayable text format: `(scenario, seed,
//!   choices)`;
//! * [`explore`] — replay, bounded random walks, and exhaustive DFS with
//!   sleep-set partial-order reduction;
//! * [`shrink`] — delta-debugging a violating schedule down to a minimal
//!   counterexample.
//!
//! The `threev-check` binary fronts all of this for CI and for local
//! bug-hunts; `tests/check_replay.rs` at the workspace root replays the
//! committed corpus in `tests/schedules/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod explore;
pub mod oracle;
pub mod scenario;
pub mod schedule;
pub mod shrink;

pub use explore::{
    explore_exhaustive, explore_random, record_walk, run_schedule, Counterexample, DfsOutcome,
    RunOutcome, ViolationAt, WalkOutcome, DEFAULT_MAX_STEPS,
};
pub use oracle::{Oracle, Violation};
pub use scenario::{find, sound, Scenario, CATALOGUE};
pub use schedule::Schedule;
pub use shrink::{shrink, ShrinkOutcome};
