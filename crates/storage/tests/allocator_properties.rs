//! Property: the paged backend's free-list [`PageAllocator`] is a correct
//! allocator — no page is ever handed out twice while allocated, no freed
//! page is lost, and the file never grows while free pages exist.
//!
//! The oracle is a trivially-correct reference model: a `BTreeSet` of
//! allocated pages plus a `BTreeSet` of freed pages. The proptest drives
//! both through random alloc/free interleavings (frees pick a random live
//! page, so the free list gets arbitrarily fragmented) and checks the
//! allocator's every answer against the model.

use std::collections::BTreeSet;

use proptest::prelude::*;
use threev_storage::PageAllocator;

/// One step of the driven interleaving. `Free(i)` frees the `i % live`-th
/// currently-allocated page (no-op when none are live), so the generator
/// never needs to know page numbers up front.
#[derive(Clone, Debug)]
enum Step {
    Alloc,
    Free(usize),
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(Step::Alloc),
            1 => any::<usize>().prop_map(Step::Free),
        ],
        1..200,
    )
}

/// Reference model: the sets of live and free pages, tracked exactly.
#[derive(Default)]
struct Model {
    live: BTreeSet<u32>,
    free: BTreeSet<u32>,
    high_water: u32,
}

proptest! {
    #[test]
    fn allocator_matches_reference_model(script in steps()) {
        let mut alloc = PageAllocator::default();
        let mut model = Model::default();

        for step in script {
            match step {
                Step::Alloc => {
                    let p = alloc.alloc();
                    // Never double-allocate a live page.
                    prop_assert!(
                        !model.live.contains(&p),
                        "page {p} allocated while still live"
                    );
                    // Reuse before growth: a fresh page is only legal when
                    // the free list is empty — and then it must be exactly
                    // the next index, so the file stays dense.
                    if let Some(&lowest) = model.free.iter().next() {
                        prop_assert_eq!(p, lowest, "must reuse the lowest free page");
                        model.free.remove(&p);
                    } else {
                        prop_assert_eq!(p, model.high_water, "fresh pages are sequential");
                        model.high_water += 1;
                    }
                    model.live.insert(p);
                }
                Step::Free(i) => {
                    if model.live.is_empty() {
                        continue;
                    }
                    let p = *model.live.iter().nth(i % model.live.len()).unwrap();
                    model.live.remove(&p);
                    alloc.free(p);
                    model.free.insert(p);
                }
            }

            // Invariants after every step: the allocator's view of the free
            // list and high-water mark is exactly the model's, and no page
            // leaked (live + free partition [0, high_water)).
            prop_assert_eq!(alloc.high_water(), model.high_water);
            prop_assert_eq!(alloc.free_count(), model.free.len());
            let free: Vec<u32> = alloc.free_pages().collect();
            let want: Vec<u32> = model.free.iter().copied().collect();
            prop_assert_eq!(free, want, "free lists diverge");
            prop_assert_eq!(
                model.live.len() + model.free.len(),
                model.high_water as usize,
                "pages leaked or double-tracked"
            );
        }
    }

    /// Recovery hand-off: rebuilding an allocator from `(high_water, free)`
    /// — exactly what `meta.bin` persists — resumes with identical
    /// behaviour to the original.
    #[test]
    fn rebuilt_allocator_resumes_identically(
        script in steps(),
        tail in proptest::collection::vec(Just(Step::Alloc), 1..40),
    ) {
        let mut a = PageAllocator::default();
        let mut live = Vec::new();
        for step in script {
            match step {
                Step::Alloc => live.push(a.alloc()),
                Step::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let p = live.swap_remove(i % live.len());
                    a.free(p);
                }
            }
        }
        let mut b = PageAllocator::new(a.high_water(), a.free_pages().collect::<Vec<_>>());
        for step in tail {
            let _ = step;
            prop_assert_eq!(a.alloc(), b.alloc(), "rebuilt allocator diverged");
        }
    }
}

/// The two assertion paths (`free` of a never-allocated or already-free
/// page) are protocol-violation guards; pin that they actually fire.
#[test]
#[should_panic(expected = "double free")]
fn double_free_is_caught() {
    let mut a = PageAllocator::default();
    let p = a.alloc();
    a.free(p);
    a.free(p);
}

#[test]
#[should_panic(expected = "never-allocated")]
fn freeing_unallocated_page_is_caught() {
    let mut a = PageAllocator::default();
    a.free(3);
}
