//! Property-based verification of the versioned record against a naive
//! reference model: a full map `version -> value` with the same rules.
//! Random protocol-shaped operation sequences (reads, updates at drifting
//! versions, GCs at the trailing read version) must agree between the
//! compact ≤3-version chain and the reference at every step.

use std::collections::BTreeMap;

use proptest::prelude::*;
use threev_model::{Key, NodeId, TxnId, UpdateOp, Value, VersionNo};
use threev_storage::VersionedRecord;

fn tid(seq: u64) -> TxnId {
    TxnId::new(seq, NodeId(0))
}

/// Reference implementation: unbounded version map with the same rules.
#[derive(Clone, Debug)]
struct RefRecord {
    versions: BTreeMap<u32, Value>,
}

impl RefRecord {
    fn new(init: Value) -> Self {
        let mut versions = BTreeMap::new();
        versions.insert(0, init);
        RefRecord { versions }
    }

    fn read_visible(&self, v: u32) -> Option<(u32, &Value)> {
        self.versions
            .range(..=v)
            .next_back()
            .map(|(w, val)| (*w, val))
    }

    fn update(&mut self, v: u32, op: UpdateOp, txn: TxnId) {
        if !self.versions.contains_key(&v) {
            let base = self
                .read_visible(v)
                .map(|(_, val)| val.clone())
                .expect("visible base");
            self.versions.insert(v, base);
        }
        for (_, val) in self.versions.range_mut(v..) {
            op.apply(val, txn).unwrap();
        }
    }

    fn gc(&mut self, vr_new: u32) {
        if self.versions.contains_key(&vr_new) {
            self.versions.retain(|w, _| *w >= vr_new);
        } else if let Some((&w, _)) = self.versions.range(..vr_new).next_back() {
            let val = self.versions.remove(&w).unwrap();
            self.versions.retain(|x, _| *x >= vr_new);
            self.versions.insert(vr_new, val);
        }
    }
}

/// One protocol-shaped step: the version window drifts forward like real
/// advancement does (update version = gc floor + 1 or + 2).
#[derive(Clone, Debug)]
enum Step {
    /// Update at `gc_floor + offset` (offset 1 = current, 2 = mid-advance,
    /// 0 = straggler at the read version boundary... clamped below).
    Update {
        offset: u32,
        delta: i64,
    },
    Read {
        offset: u32,
    },
    Advance,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => (1u32..=2, -100i64..100).prop_map(|(offset, delta)| Step::Update { offset, delta }),
        3 => (0u32..=2).prop_map(|offset| Step::Read { offset }),
        1 => Just(Step::Advance),
    ]
}

proptest! {
    #[test]
    fn chain_matches_reference_model(steps in proptest::collection::vec(step(), 1..120)) {
        let mut real = VersionedRecord::initial(Value::Counter(0));
        let mut reference = RefRecord::new(Value::Counter(0));
        let mut floor = 0u32; // current read version (gc floor)
        let mut seq = 0u64;

        for s in steps {
            match s {
                Step::Update { offset, delta } => {
                    let v = VersionNo(floor + offset);
                    seq += 1;
                    real.update(Key(1), v, UpdateOp::Add(delta), tid(seq)).unwrap();
                    reference.update(floor + offset, UpdateOp::Add(delta), tid(seq));
                }
                Step::Read { offset } => {
                    let v = floor + offset;
                    let got = real.read_visible(VersionNo(v)).map(|(w, val)| (w.0, val.clone()));
                    let want = reference.read_visible(v).map(|(w, val)| (w, val.clone()));
                    prop_assert_eq!(got, want);
                }
                Step::Advance => {
                    // Like the protocol: everything below the new read
                    // version is collected once it drains.
                    floor += 1;
                    real.gc(VersionNo(floor));
                    reference.gc(floor);
                }
            }
            // Invariants the protocol relies on:
            prop_assert!(real.version_count() <= 3, "chain grew past 3");
            prop_assert_eq!(real.version_count(), reference.versions.len());
            let chain: Vec<u32> = real.version_numbers().map(|v| v.0).collect();
            let reference_keys: Vec<u32> = reference.versions.keys().copied().collect();
            prop_assert_eq!(chain.clone(), reference_keys);
            prop_assert!(chain.windows(2).all(|w| w[0] < w[1]), "sorted strictly");
            // Every live version's value agrees.
            for w in chain {
                prop_assert_eq!(
                    real.value_at(VersionNo(w)),
                    reference.versions.get(&w),
                    "value at v{} diverged", w
                );
            }
        }
    }

    /// GC is idempotent and monotone: collecting twice at the same target,
    /// or at successive targets, never resurrects or corrupts data.
    #[test]
    fn gc_idempotent(updates in proptest::collection::vec((1u32..=2, -50i64..50), 0..20)) {
        let mut r = VersionedRecord::initial(Value::Counter(7));
        for (i, (offset, delta)) in updates.iter().enumerate() {
            r.update(Key(1), VersionNo(*offset), UpdateOp::Add(*delta), tid(i as u64)).unwrap();
        }
        let mut once = r.clone();
        once.gc(VersionNo(1));
        let mut twice = once.clone();
        twice.gc(VersionNo(1));
        prop_assert_eq!(&once, &twice);
        // Monotone follow-up.
        let mut ahead = once.clone();
        ahead.gc(VersionNo(2));
        prop_assert!(ahead.version_count() <= once.version_count());
        prop_assert!(ahead.version_numbers().all(|v| v >= VersionNo(2)));
    }
}
