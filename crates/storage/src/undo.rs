//! Undo logging for local rollback.
//!
//! A subtransaction that aborts "rolls back all changes it performed
//! locally" (paper §3.2). The store records, for every update applied under
//! a log, the prior value of each touched version — and whether the version
//! itself was created by the update (so rollback can delete it again).
//!
//! The log is value-based rather than operation-based: versions are small
//! and the log is short-lived, so snapshotting priors is both simpler and
//! immune to non-invertible operations.

use threev_model::{Key, Value, VersionNo};

/// Undo records for one subtransaction, in application order.
#[derive(Clone, Debug, Default)]
pub struct UndoLog {
    /// `(key, version, prior)`; `prior == None` means "this version did not
    /// exist — remove it on rollback".
    entries: Vec<(Key, VersionNo, Option<Value>)>,
}

impl UndoLog {
    /// Record that `key`'s version `v` is about to be created.
    pub fn record_created(&mut self, key: Key, v: VersionNo) {
        self.entries.push((key, v, None));
    }

    /// Record the prior value of `key`'s version `v`.
    pub fn record_prior(&mut self, key: Key, v: VersionNo, prior: Option<Value>) {
        self.entries.push((key, v, prior));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in application order (the durability layer WAL-logs a
    /// rollback before the store applies it).
    pub fn entries(&self) -> &[(Key, VersionNo, Option<Value>)] {
        &self.entries
    }

    /// Consume the log, yielding entries newest-first (rollback order).
    pub fn into_entries_rev(self) -> impl Iterator<Item = (Key, VersionNo, Option<Value>)> {
        self.entries.into_iter().rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_come_back_reversed() {
        let mut log = UndoLog::default();
        assert!(log.is_empty());
        log.record_created(Key(1), VersionNo(1));
        log.record_prior(Key(1), VersionNo(1), Some(Value::Counter(5)));
        assert_eq!(log.len(), 2);
        let entries: Vec<_> = log.into_entries_rev().collect();
        assert_eq!(entries[0], (Key(1), VersionNo(1), Some(Value::Counter(5))));
        assert_eq!(entries[1], (Key(1), VersionNo(1), None));
    }
}
