//! The pluggable storage seam: where a node's ≤3-version chains live.
//!
//! [`Store`](crate::Store) implements the paper's §4 rules (copy-on-update,
//! read-max-≤v, update-all-≥v, GC) against an abstract [`StorageBackend`]
//! holding the actual `Key → VersionedRecord` map:
//!
//! * [`MemBackend`] — a plain `BTreeMap`, the historical behaviour. Chains
//!   are volatile; durability (if any) is whole-store checkpoint
//!   serialisation through `threev-durability`.
//! * [`PagedBackend`](crate::paged::PagedBackend) — chains held natively in
//!   fixed-size on-disk pages with a free-list allocator; checkpoints
//!   become *incremental* (only dirty records are rewritten).
//!
//! [`AnyBackend`] erases the choice at runtime so the node engine carries a
//! single concrete store type, and [`BackendConfig`] is the small config
//! enum threaded through `NodeConfig`/`ClusterConfig` to select one.

use std::collections::{btree_map, BTreeMap};
use std::io;
use std::path::PathBuf;

use threev_model::{Key, NodeId, VersionNo};

use crate::paged::PagedBackend;
use crate::record::VersionedRecord;

/// Where a [`Store`](crate::Store) keeps its version chains.
///
/// The contract mirrors the handful of map operations the §4 rules need.
/// Backends with durable state additionally track a *dirty set* (every
/// record touched through [`get_mut`](StorageBackend::get_mut) /
/// [`insert`](StorageBackend::insert) / a modifying
/// [`visit_mut`](StorageBackend::visit_mut) callback) and persist exactly
/// that set on [`flush`](StorageBackend::flush) — the incremental-checkpoint
/// seam.
pub trait StorageBackend: Send + std::fmt::Debug {
    /// Read one record.
    fn get(&self, key: Key) -> Option<&VersionedRecord>;

    /// Mutable access to one record. A durable backend marks the record
    /// dirty — callers only take `get_mut` on paths that write.
    fn get_mut(&mut self, key: Key) -> Option<&mut VersionedRecord>;

    /// Insert (or replace) a record, marking it dirty.
    fn insert(&mut self, key: Key, rec: VersionedRecord);

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Is the backend empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate all records in key order.
    fn iter(&self) -> btree_map::Iter<'_, Key, VersionedRecord>;

    /// Visit every record mutably, in key order. The callback returns
    /// `true` when it modified the record, which marks it dirty in durable
    /// backends.
    fn visit_mut(&mut self, f: &mut dyn FnMut(Key, &mut VersionedRecord) -> bool);

    /// A §4.3 GC sweep at `vr_new` just ran over every record. Durable
    /// backends persist the highest floor instead of dirtying the swept
    /// chains: the sweep is deterministic from `(record, vr_new)`, so it
    /// is re-derived at open rather than rewritten on disk (see
    /// [`crate::paged`] module docs).
    fn note_gc(&mut self, vr_new: VersionNo) {
        let _ = vr_new;
    }

    /// Persist every dirty record and stamp the durable image with `lsn`.
    /// Returns the number of bytes written to stable storage (0 for
    /// volatile backends).
    fn flush(&mut self, lsn: u64) -> u64 {
        let _ = lsn;
        0
    }

    /// LSN the durable chain image is current to, if the backend persists
    /// chains (`None` for volatile backends).
    fn durable_lsn(&self) -> Option<u64> {
        None
    }

    /// Does this backend hold the chains on stable storage? When `true`,
    /// checkpoints skip whole-store serialisation (the snapshot carries
    /// `external_store`) and recovery replays only WAL records beyond
    /// [`durable_lsn`](StorageBackend::durable_lsn).
    fn persists_chains(&self) -> bool {
        false
    }
}

/// The in-memory backend: the `BTreeMap` the store always used, extracted
/// behind the trait. Fully deterministic (key-ordered iteration, no I/O),
/// so it is what the DES kernel and model checker run on by default.
#[derive(Clone, Debug, Default)]
pub struct MemBackend {
    records: BTreeMap<Key, VersionedRecord>,
}

impl StorageBackend for MemBackend {
    fn get(&self, key: Key) -> Option<&VersionedRecord> {
        self.records.get(&key)
    }

    fn get_mut(&mut self, key: Key) -> Option<&mut VersionedRecord> {
        self.records.get_mut(&key)
    }

    fn insert(&mut self, key: Key, rec: VersionedRecord) {
        self.records.insert(key, rec);
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn iter(&self) -> btree_map::Iter<'_, Key, VersionedRecord> {
        self.records.iter()
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(Key, &mut VersionedRecord) -> bool) {
        for (k, rec) in self.records.iter_mut() {
            f(*k, rec);
        }
    }
}

/// Runtime-selected backend: lets the node engine hold one concrete
/// `Store<AnyBackend>` regardless of configuration, keeping the generics
/// out of every call site.
#[derive(Debug)]
pub enum AnyBackend {
    /// Volatile `BTreeMap` chains.
    Mem(MemBackend),
    /// On-disk paged chains (see [`crate::paged`]).
    Paged(PagedBackend),
}

impl StorageBackend for AnyBackend {
    fn get(&self, key: Key) -> Option<&VersionedRecord> {
        match self {
            AnyBackend::Mem(b) => b.get(key),
            AnyBackend::Paged(b) => b.get(key),
        }
    }

    fn get_mut(&mut self, key: Key) -> Option<&mut VersionedRecord> {
        match self {
            AnyBackend::Mem(b) => b.get_mut(key),
            AnyBackend::Paged(b) => b.get_mut(key),
        }
    }

    fn insert(&mut self, key: Key, rec: VersionedRecord) {
        match self {
            AnyBackend::Mem(b) => b.insert(key, rec),
            AnyBackend::Paged(b) => b.insert(key, rec),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyBackend::Mem(b) => b.len(),
            AnyBackend::Paged(b) => b.len(),
        }
    }

    fn iter(&self) -> btree_map::Iter<'_, Key, VersionedRecord> {
        match self {
            AnyBackend::Mem(b) => b.iter(),
            AnyBackend::Paged(b) => b.iter(),
        }
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(Key, &mut VersionedRecord) -> bool) {
        match self {
            AnyBackend::Mem(b) => b.visit_mut(f),
            AnyBackend::Paged(b) => b.visit_mut(f),
        }
    }

    fn note_gc(&mut self, vr_new: VersionNo) {
        match self {
            AnyBackend::Mem(b) => b.note_gc(vr_new),
            AnyBackend::Paged(b) => b.note_gc(vr_new),
        }
    }

    fn flush(&mut self, lsn: u64) -> u64 {
        match self {
            AnyBackend::Mem(b) => b.flush(lsn),
            AnyBackend::Paged(b) => b.flush(lsn),
        }
    }

    fn durable_lsn(&self) -> Option<u64> {
        match self {
            AnyBackend::Mem(b) => b.durable_lsn(),
            AnyBackend::Paged(b) => b.durable_lsn(),
        }
    }

    fn persists_chains(&self) -> bool {
        match self {
            AnyBackend::Mem(b) => b.persists_chains(),
            AnyBackend::Paged(b) => b.persists_chains(),
        }
    }
}

/// Which [`StorageBackend`] a node opens — threaded through `NodeConfig`
/// and the cluster builders.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum BackendConfig {
    /// Volatile in-memory chains (the default; bit-identical to the
    /// pre-trait store).
    #[default]
    Mem,
    /// On-disk paged chains rooted at `dir`; each node opens the
    /// subdirectory `store-node-<id>` so one `dir` serves a whole cluster.
    Paged {
        /// Cluster-level root directory for the page files.
        dir: PathBuf,
    },
}

impl BackendConfig {
    /// Open the configured backend for `node`.
    ///
    /// # Errors
    /// Propagates I/O and page-file corruption errors from
    /// [`PagedBackend::open`]; the `Mem` arm never fails.
    pub fn open(&self, node: NodeId) -> io::Result<AnyBackend> {
        match self {
            BackendConfig::Mem => Ok(AnyBackend::Mem(MemBackend::default())),
            BackendConfig::Paged { dir } => {
                let node_dir = dir.join(format!("store-node-{}", node.0));
                Ok(AnyBackend::Paged(PagedBackend::open(&node_dir)?))
            }
        }
    }

    /// Open the configured backend for one *stripe* of `node` (intra-node
    /// key-striped execution; see [`crate::stripe`]). With `total <= 1`
    /// this is exactly [`BackendConfig::open`] — same directory name — so
    /// unsharded nodes keep their on-disk layout. A striped paged node
    /// opens `store-node-<id>-s<idx>` per stripe.
    ///
    /// # Errors
    /// Propagates I/O and page-file corruption errors from
    /// [`PagedBackend::open`]; the `Mem` arm never fails.
    pub fn open_stripe(&self, node: NodeId, idx: u16, total: u16) -> io::Result<AnyBackend> {
        if total <= 1 {
            return self.open(node);
        }
        match self {
            BackendConfig::Mem => Ok(AnyBackend::Mem(MemBackend::default())),
            BackendConfig::Paged { dir } => {
                let stripe_dir = dir.join(format!("store-node-{}-s{idx}", node.0));
                Ok(AnyBackend::Paged(PagedBackend::open(&stripe_dir)?))
            }
        }
    }

    /// A `Paged` config rooted at a fresh scratch directory under the
    /// system temp dir, namespaced by `tag`, the process id, and a
    /// counter, so repeated runs within one process never see each
    /// other's page files. The `THREEV_BACKEND` env dispatch lives in
    /// `threev::testutil::backend_from_env`, shared by the equivalence
    /// suites and the server binaries.
    pub fn paged_scratch(tag: &str) -> BackendConfig {
        use std::sync::atomic::{AtomicU64, Ordering};
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("threev-backend-{tag}-{}-{n}", std::process::id()));
        // Stale page files from a previous crashed run would be recovered
        // as live chains; start from nothing.
        let _ = std::fs::remove_dir_all(&dir);
        BackendConfig::Paged { dir }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::Value;

    #[test]
    fn mem_backend_round_trips_records() {
        let mut b = MemBackend::default();
        assert!(b.is_empty());
        b.insert(Key(1), VersionedRecord::initial(Value::Counter(5)));
        assert_eq!(b.len(), 1);
        assert_eq!(
            b.get(Key(1)).unwrap().value_at(threev_model::VersionNo(0)),
            Some(&Value::Counter(5))
        );
        assert!(b.get(Key(2)).is_none());
        assert_eq!(b.flush(7), 0, "volatile flush writes nothing");
        assert_eq!(b.durable_lsn(), None);
        assert!(!b.persists_chains());
    }

    #[test]
    fn any_backend_delegates() {
        let mut b = BackendConfig::Mem.open(NodeId(0)).unwrap();
        b.insert(Key(9), VersionedRecord::initial(Value::Counter(1)));
        assert_eq!(b.len(), 1);
        assert_eq!(b.iter().count(), 1);
        let mut touched = 0;
        b.visit_mut(&mut |_, _| {
            touched += 1;
            false
        });
        assert_eq!(touched, 1);
        assert!(!b.persists_chains());
    }

    #[test]
    fn paged_scratch_dirs_are_unique() {
        let a = BackendConfig::paged_scratch("x");
        let b = BackendConfig::paged_scratch("x");
        assert_ne!(a, b, "each scratch config gets its own directory");
        assert!(matches!(a, BackendConfig::Paged { .. }));
    }
}
