//! Lock table for the NC3V extension (paper §5).
//!
//! "We require that the well-behaved update transactions acquire special
//! commuting-update and commuting-read locks … Non-well-behaved transactions
//! are required to obtain non-commuting locks … Commuting locks are
//! compatible with each other but not with their non-commuting
//! counterparts."
//!
//! * [`LockMode::Commute`] — taken by well-behaved transactions; compatible
//!   with other commute locks, so **in the absence of non-well-behaved
//!   transactions there is never a wait** (§5), and the pure-3V engine skips
//!   the lock table entirely.
//! * [`LockMode::Exclusive`] — taken by non-commuting transactions;
//!   compatible with nothing.
//!
//! Deadlock avoidance is **wait-die** on the global [`TxnId`] order (lower
//! id = older): a requester may wait only for strictly younger conflicting
//! holders; otherwise it dies and is compensated/restarted by the engine.
//! Waiters queue FIFO and a new request must also be compatible with every
//! queued waiter, so exclusive requests are not starved by a stream of
//! commute requests.

use std::collections::{BTreeMap, VecDeque};

use threev_model::{Key, TxnId};

/// Lock modes (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Commuting-update/read lock: shared among well-behaved transactions.
    Commute,
    /// Non-commuting lock: exclusive.
    Exclusive,
}

impl LockMode {
    /// Mode compatibility matrix.
    #[inline]
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Commute, LockMode::Commute))
    }

    /// Does holding `self` satisfy a request for `req`?
    #[inline]
    fn covers(self, req: LockMode) -> bool {
        self == LockMode::Exclusive || req == LockMode::Commute
    }
}

/// Outcome of a lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockDecision {
    /// Lock granted immediately.
    Granted,
    /// Enqueued; the engine will be told via the release path when granted.
    Waiting,
    /// Wait-die says the requester (younger than a conflicting holder)
    /// must abort.
    Abort,
}

#[derive(Clone, Debug)]
struct Holder {
    txn: TxnId,
    mode: LockMode,
    count: u32,
}

#[derive(Clone, Debug, Default)]
struct LockState {
    holders: Vec<Holder>,
    waiters: VecDeque<(TxnId, LockMode)>,
}

impl LockState {
    fn compatible_with_holders(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|h| h.txn == txn || h.mode.compatible(mode))
    }

    fn conflicting_holders(&self, txn: TxnId, mode: LockMode) -> impl Iterator<Item = &Holder> {
        self.holders
            .iter()
            .filter(move |h| h.txn != txn && !h.mode.compatible(mode))
    }
}

/// Grants produced by a release: `(txn, key, mode)` now held.
pub type Grants = Vec<(TxnId, Key, LockMode)>;

/// The per-node lock table.
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    locks: BTreeMap<Key, LockState>,
    /// Total waits observed (experiment X6 reports lock-wait pressure).
    pub waits: u64,
    /// Total wait-die aborts.
    pub die_aborts: u64,
}

impl LockTable {
    /// New empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Request `mode` on `key` for `txn`.
    pub fn acquire(&mut self, key: Key, mode: LockMode, txn: TxnId) -> LockDecision {
        let state = self.locks.entry(key).or_default();

        // Re-entrant: already holding a covering mode?
        if let Some(h) = state.holders.iter_mut().find(|h| h.txn == txn) {
            if h.mode.covers(mode) {
                h.count += 1;
                return LockDecision::Granted;
            }
            // Upgrade Commute -> Exclusive: only if sole holder.
            if state.holders.len() == 1 {
                let h = &mut state.holders[0];
                h.mode = LockMode::Exclusive;
                h.count += 1;
                return LockDecision::Granted;
            }
            // Conflicting upgrade: fall through to wait-die below.
        }

        let compatible_now = state.compatible_with_holders(txn, mode)
            && state
                .waiters
                .iter()
                .all(|(w, wmode)| *w == txn || wmode.compatible(mode) && mode.compatible(*wmode));

        if compatible_now && state.waiters.is_empty() {
            match state.holders.iter_mut().find(|h| h.txn == txn) {
                Some(h) => h.count += 1, // upgrade path with sole holder handled above
                None => state.holders.push(Holder {
                    txn,
                    mode,
                    count: 1,
                }),
            }
            return LockDecision::Granted;
        }

        // Wait-die: may wait only if strictly older than every conflicting
        // holder (and, for fairness, than conflicting waiters ahead).
        let younger_than_conflicting_holder =
            state.conflicting_holders(txn, mode).any(|h| txn > h.txn)
                || state
                    .waiters
                    .iter()
                    .any(|(w, wmode)| *w != txn && !wmode.compatible(mode) && txn > *w);
        if younger_than_conflicting_holder {
            self.die_aborts += 1;
            return LockDecision::Abort;
        }
        state.waiters.push_back((txn, mode));
        self.waits += 1;
        LockDecision::Waiting
    }

    /// Release every lock held or awaited by `txn`, returning the grants
    /// that become possible.
    pub fn release_all(&mut self, txn: TxnId) -> Grants {
        let mut grants = Grants::new();
        let mut emptied = Vec::new();
        for (key, state) in self.locks.iter_mut() {
            state.holders.retain(|h| h.txn != txn);
            state.waiters.retain(|(w, _)| *w != txn);
            Self::promote(*key, state, &mut grants);
            if state.holders.is_empty() && state.waiters.is_empty() {
                emptied.push(*key);
            }
        }
        for key in emptied {
            self.locks.remove(&key);
        }
        grants
    }

    fn promote(key: Key, state: &mut LockState, grants: &mut Grants) {
        while let Some(&(txn, mode)) = state.waiters.front() {
            if !state.compatible_with_holders(txn, mode) {
                break;
            }
            state.waiters.pop_front();
            match state.holders.iter_mut().find(|h| h.txn == txn) {
                Some(h) => {
                    h.mode = if h.mode == LockMode::Exclusive || mode == LockMode::Exclusive {
                        LockMode::Exclusive
                    } else {
                        LockMode::Commute
                    };
                    h.count += 1;
                }
                None => state.holders.push(Holder {
                    txn,
                    mode,
                    count: 1,
                }),
            }
            grants.push((txn, key, mode));
        }
    }

    /// Does `txn` currently hold a lock on `key`?
    pub fn holds(&self, txn: TxnId, key: Key) -> bool {
        self.locks
            .get(&key)
            .is_some_and(|s| s.holders.iter().any(|h| h.txn == txn))
    }

    /// Number of holders on `key`.
    pub fn holder_count(&self, key: Key) -> usize {
        self.locks.get(&key).map_or(0, |s| s.holders.len())
    }

    /// Number of waiters on `key`.
    pub fn waiter_count(&self, key: Key) -> usize {
        self.locks.get(&key).map_or(0, |s| s.waiters.len())
    }

    /// Is the table completely free? (Quiescence invariant in tests.)
    pub fn is_idle(&self) -> bool {
        self.locks.is_empty()
    }

    /// Export the table for a durability checkpoint: per key (sorted),
    /// the holders `(txn, mode, count)` and queued waiters `(txn, mode)`
    /// in queue order.
    #[allow(clippy::type_complexity)]
    pub fn export_parts(&self) -> Vec<(Key, Vec<(TxnId, LockMode, u32)>, Vec<(TxnId, LockMode)>)> {
        let mut parts: Vec<_> = self
            .locks
            .iter()
            .map(|(key, state)| {
                (
                    *key,
                    state
                        .holders
                        .iter()
                        .map(|h| (h.txn, h.mode, h.count))
                        .collect::<Vec<_>>(),
                    state.waiters.iter().copied().collect::<Vec<_>>(),
                )
            })
            .collect();
        parts.sort_unstable_by_key(|(k, ..)| *k);
        parts
    }

    /// Rebuild a table from exported parts (checkpoint recovery). The
    /// wait/abort statistics restart at zero.
    #[allow(clippy::type_complexity)]
    pub fn from_parts(
        parts: Vec<(Key, Vec<(TxnId, LockMode, u32)>, Vec<(TxnId, LockMode)>)>,
    ) -> Self {
        let mut locks = BTreeMap::new();
        for (key, holders, waiters) in parts {
            locks.insert(
                key,
                LockState {
                    holders: holders
                        .into_iter()
                        .map(|(txn, mode, count)| Holder { txn, mode, count })
                        .collect(),
                    waiters: waiters.into_iter().collect(),
                },
            );
        }
        LockTable {
            locks,
            waits: 0,
            die_aborts: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::NodeId;

    fn t(seq: u64) -> TxnId {
        TxnId::new(seq, NodeId(0))
    }
    const K: Key = Key(1);

    #[test]
    fn commute_locks_never_conflict() {
        // Paper §5: "in the absence of non-well-behaved transactions, there
        // is no wait to obtain a commute lock".
        let mut lt = LockTable::new();
        for i in 0..50 {
            assert_eq!(
                lt.acquire(K, LockMode::Commute, t(i)),
                LockDecision::Granted
            );
        }
        assert_eq!(lt.holder_count(K), 50);
        assert_eq!(lt.waits, 0);
        assert_eq!(lt.die_aborts, 0);
    }

    #[test]
    fn exclusive_excludes_everything() {
        let mut lt = LockTable::new();
        assert_eq!(
            lt.acquire(K, LockMode::Exclusive, t(1)),
            LockDecision::Granted
        );
        // Older commute requester waits...
        assert_eq!(
            lt.acquire(K, LockMode::Commute, t(0)),
            LockDecision::Waiting
        );
        // ...younger one dies.
        assert_eq!(lt.acquire(K, LockMode::Commute, t(2)), LockDecision::Abort);
        // Younger exclusive also dies.
        assert_eq!(
            lt.acquire(K, LockMode::Exclusive, t(3)),
            LockDecision::Abort
        );
        assert_eq!(lt.die_aborts, 2);
    }

    #[test]
    fn release_promotes_fifo() {
        // Wait-die discipline: a waiter must be older than every
        // conflicting holder/waiter ahead, so ids decrease down the queue.
        let mut lt = LockTable::new();
        lt.acquire(K, LockMode::Exclusive, t(10)).unwrap_granted();
        assert_eq!(
            lt.acquire(K, LockMode::Commute, t(2)),
            LockDecision::Waiting
        );
        assert_eq!(
            lt.acquire(K, LockMode::Commute, t(1)),
            LockDecision::Waiting
        );
        assert_eq!(
            lt.acquire(K, LockMode::Exclusive, t(0)),
            LockDecision::Waiting
        );
        let grants = lt.release_all(t(10));
        // Both commute waiters promoted together; exclusive still queued.
        assert_eq!(grants.len(), 2);
        assert!(grants.iter().all(|(_, _, m)| *m == LockMode::Commute));
        assert_eq!(lt.holder_count(K), 2);
        assert_eq!(lt.waiter_count(K), 1);
        // Releasing both commute holders promotes the exclusive.
        assert!(lt.release_all(t(2)).is_empty());
        let grants = lt.release_all(t(1));
        assert_eq!(grants, vec![(t(0), K, LockMode::Exclusive)]);
    }

    #[test]
    fn younger_exclusive_dies_behind_older_waiters() {
        // A younger exclusive may not wait behind an older conflicting
        // waiter (would break the wait-die order and admit deadlock).
        let mut lt = LockTable::new();
        lt.acquire(K, LockMode::Exclusive, t(10)).unwrap_granted();
        assert_eq!(
            lt.acquire(K, LockMode::Commute, t(1)),
            LockDecision::Waiting
        );
        assert_eq!(
            lt.acquire(K, LockMode::Exclusive, t(3)),
            LockDecision::Abort
        );
    }

    #[test]
    fn exclusive_waiter_blocks_new_commutes() {
        // FIFO fairness: once an exclusive waits, later commute requests
        // must not leapfrog it.
        let mut lt = LockTable::new();
        lt.acquire(K, LockMode::Commute, t(10)).unwrap_granted();
        assert_eq!(
            lt.acquire(K, LockMode::Exclusive, t(1)),
            LockDecision::Waiting
        );
        // Older commute: waits behind the exclusive.
        assert_eq!(
            lt.acquire(K, LockMode::Commute, t(0)),
            LockDecision::Waiting
        );
        // Younger commute: dies (conflicting waiter ahead is older).
        assert_eq!(lt.acquire(K, LockMode::Commute, t(11)), LockDecision::Abort);
    }

    #[test]
    fn reentrant_acquire() {
        let mut lt = LockTable::new();
        lt.acquire(K, LockMode::Commute, t(1)).unwrap_granted();
        lt.acquire(K, LockMode::Commute, t(1)).unwrap_granted();
        assert_eq!(lt.holder_count(K), 1);
        lt.release_all(t(1));
        assert!(lt.is_idle());
    }

    #[test]
    fn exclusive_covers_commute_reentry() {
        let mut lt = LockTable::new();
        lt.acquire(K, LockMode::Exclusive, t(1)).unwrap_granted();
        assert_eq!(
            lt.acquire(K, LockMode::Commute, t(1)),
            LockDecision::Granted
        );
    }

    #[test]
    fn sole_holder_upgrade() {
        let mut lt = LockTable::new();
        lt.acquire(K, LockMode::Commute, t(1)).unwrap_granted();
        assert_eq!(
            lt.acquire(K, LockMode::Exclusive, t(1)),
            LockDecision::Granted
        );
        // Now exclusive: other commute requests conflict.
        assert_eq!(lt.acquire(K, LockMode::Commute, t(9)), LockDecision::Abort);
    }

    #[test]
    fn contested_upgrade_uses_wait_die() {
        let mut lt = LockTable::new();
        lt.acquire(K, LockMode::Commute, t(1)).unwrap_granted();
        lt.acquire(K, LockMode::Commute, t(2)).unwrap_granted();
        // t2 (younger than holder t1) upgrading -> dies.
        assert_eq!(
            lt.acquire(K, LockMode::Exclusive, t(2)),
            LockDecision::Abort
        );
        // t1 (older than holder t2) upgrading -> waits.
        assert_eq!(
            lt.acquire(K, LockMode::Exclusive, t(1)),
            LockDecision::Waiting
        );
        // t2 releases: t1's upgrade is granted.
        let grants = lt.release_all(t(2));
        assert_eq!(grants, vec![(t(1), K, LockMode::Exclusive)]);
        assert!(lt.holds(t(1), K));
    }

    #[test]
    fn release_of_waiter_cleans_queue() {
        let mut lt = LockTable::new();
        lt.acquire(K, LockMode::Exclusive, t(5)).unwrap_granted();
        assert_eq!(
            lt.acquire(K, LockMode::Commute, t(1)),
            LockDecision::Waiting
        );
        lt.release_all(t(1)); // waiter gives up (e.g. aborted elsewhere)
        assert_eq!(lt.waiter_count(K), 0);
        lt.release_all(t(5));
        assert!(lt.is_idle());
    }

    #[test]
    fn wait_die_no_deadlock_two_keys() {
        // Classic crossing pattern: t1 holds A wants B, t2 holds B wants A.
        // Wait-die guarantees at most one of them waits.
        let (a, b) = (Key(1), Key(2));
        let mut lt = LockTable::new();
        lt.acquire(a, LockMode::Exclusive, t(1)).unwrap_granted();
        lt.acquire(b, LockMode::Exclusive, t(2)).unwrap_granted();
        let d1 = lt.acquire(b, LockMode::Exclusive, t(1));
        let d2 = lt.acquire(a, LockMode::Exclusive, t(2));
        assert_eq!(d1, LockDecision::Waiting, "older may wait");
        assert_eq!(d2, LockDecision::Abort, "younger dies");
    }

    trait UnwrapGranted {
        fn unwrap_granted(self);
    }
    impl UnwrapGranted for LockDecision {
        fn unwrap_granted(self) {
            assert_eq!(self, LockDecision::Granted);
        }
    }
}
