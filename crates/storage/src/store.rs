//! The per-node key-value store: the paper's §4 access rules over a
//! pluggable [`StorageBackend`] holding the [`VersionedRecord`]s, plus the
//! statistics the experiments report on.

use std::fmt;

use threev_model::{Key, NodeId, Schema, TxnId, UpdateOp, Value, VersionNo};

use crate::backend::{AnyBackend, MemBackend, StorageBackend};
use crate::record::{GcAction, UpdateOutcome, VersionedRecord};
use crate::undo::UndoLog;

/// Storage-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The key is not in this node's fragment.
    UnknownKey {
        /// The missing key.
        key: Key,
    },
    /// No version of the item is visible at the requested version — a
    /// protocol invariant violation (GC ran too early) that we surface
    /// loudly instead of masking.
    NoVisibleVersion {
        /// The key read.
        key: Key,
        /// The version requested.
        version: VersionNo,
        /// The node's `(vr, vu)` window when the read failed, if known.
        /// The store itself does not track versions; the node layer
        /// attaches its window via [`StoreError::with_window`] so the
        /// error names the invariant that broke (a visible read must have
        /// `vr <= version <= vu`).
        window: Option<(VersionNo, VersionNo)>,
    },
    /// The operation does not apply to the stored value kind.
    Apply {
        /// The key updated.
        key: Key,
        /// Underlying model error.
        source: threev_model::ops::ApplyError,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownKey { key } => write!(f, "key {key} not stored on this node"),
            StoreError::NoVisibleVersion {
                key,
                version,
                window,
            } => {
                write!(f, "no version of {key} visible at {version}")?;
                if let Some((vr, vu)) = window {
                    write!(f, " (node window vr={vr}, vu={vu})")?;
                }
                Ok(())
            }
            StoreError::Apply { key, source } => write!(f, "updating {key}: {source}"),
        }
    }
}

impl StoreError {
    /// Attach the node's `(vr, vu)` version window to a
    /// [`StoreError::NoVisibleVersion`]; other variants pass through
    /// unchanged.
    pub fn with_window(self, vr: VersionNo, vu: VersionNo) -> Self {
        match self {
            StoreError::NoVisibleVersion { key, version, .. } => StoreError::NoVisibleVersion {
                key,
                version,
                window: Some((vr, vu)),
            },
            other => other,
        }
    }
}

impl std::error::Error for StoreError {}

/// Counters the storage layer maintains for the experiment harnesses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Reads served.
    pub reads: u64,
    /// Update operations applied (one per op, not per version written).
    pub updates: u64,
    /// Versions materialised by copy-on-update.
    pub copies_created: u64,
    /// Updates that wrote ≥ 2 versions (the §2.3 straggler dual write; X7).
    pub dual_writes: u64,
    /// High-water mark of live versions of any single item (X4: must be ≤ 3).
    pub max_versions_of_any_item: u32,
    /// Garbage-collection sweeps run.
    pub gc_runs: u64,
    /// Versions dropped by GC.
    pub gc_dropped: u64,
    /// Records renamed by GC (item had no copy at the new read version).
    pub gc_renamed: u64,
}

/// The node-local store, generic over where the chains live. Bare `Store`
/// keeps meaning the in-memory store it always was; the node engine runs a
/// `Store<AnyBackend>` selected by `BackendConfig`.
#[derive(Clone, Debug)]
pub struct Store<B: StorageBackend = MemBackend> {
    node: NodeId,
    backend: B,
    stats: StoreStats,
}

impl Store<MemBackend> {
    /// Build the in-memory store for `node`, materialising every key the
    /// schema homes there at version 0.
    pub fn from_schema(schema: &Schema, node: NodeId) -> Self {
        Store::from_schema_on(MemBackend::default(), schema, node)
    }

    /// Empty in-memory store for `node` (keys inserted with
    /// [`Store::insert_initial`]).
    pub fn empty(node: NodeId) -> Self {
        Store::on_backend(MemBackend::default(), node)
    }

    /// Rebuild a store from exported parts (checkpoint recovery).
    /// Statistics restart from the recovered layout: the historical
    /// counters died with the node.
    pub fn from_parts(node: NodeId, parts: Vec<(Key, Vec<(VersionNo, Value)>)>) -> Self {
        let mut store = Store::empty(node);
        for (key, versions) in parts {
            store.stats.max_versions_of_any_item = store
                .stats
                .max_versions_of_any_item
                .max(versions.len() as u32);
            store
                .backend
                .insert(key, VersionedRecord::from_versions(versions));
        }
        store
    }

    /// Erase the backend type (the node engine's store is `Store<AnyBackend>`
    /// whichever backend configuration selected).
    pub fn into_any(self) -> Store<AnyBackend> {
        Store {
            node: self.node,
            backend: AnyBackend::Mem(self.backend),
            stats: self.stats,
        }
    }
}

impl<B: StorageBackend> Store<B> {
    /// Wrap an opened backend without touching its contents. The
    /// max-versions high-water mark restarts from the recovered layout.
    pub fn on_backend(backend: B, node: NodeId) -> Self {
        let mut store = Store {
            node,
            backend,
            stats: StoreStats::default(),
        };
        store.stats.max_versions_of_any_item = store.current_max_versions() as u32;
        store
    }

    /// Build the store for `node` on `backend`: a fresh (empty) backend is
    /// materialised from the schema at version 0; a reopened backend keeps
    /// its recovered chains and ignores the schema.
    pub fn from_schema_on(backend: B, schema: &Schema, node: NodeId) -> Self {
        let mut store = Store::on_backend(backend, node);
        if store.backend.is_empty() {
            for decl in schema.keys_on(node) {
                store
                    .backend
                    .insert(decl.key, VersionedRecord::initial(decl.init.clone()));
            }
            store.stats.max_versions_of_any_item = 1;
        }
        store
    }

    /// The underlying backend (observability for tests and benches).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Insert a key at version 0 (test/bootstrap helper).
    pub fn insert_initial(&mut self, key: Key, value: Value) {
        self.backend.insert(key, VersionedRecord::initial(value));
        self.stats.max_versions_of_any_item = self.stats.max_versions_of_any_item.max(1);
    }

    /// Node this store belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Validate the read rule without serving the read (no stats moved, no
    /// value cloned). Lets the node layer reject a malformed subtransaction
    /// *before* applying any of its steps, so rejection needs no undo.
    pub fn check_read(&self, key: Key, v: VersionNo) -> Result<(), StoreError> {
        let rec = self
            .backend
            .get(key)
            .ok_or(StoreError::UnknownKey { key })?;
        rec.read_visible(v)
            .map(|_| ())
            .ok_or(StoreError::NoVisibleVersion {
                key,
                version: v,
                window: None,
            })
    }

    /// Validate an update without applying it: the key is stored here, a
    /// base version is visible at `v`, and `op` applies to the stored value
    /// kind. Companion pre-pass to [`Store::check_read`].
    pub fn check_update(&self, key: Key, v: VersionNo, op: UpdateOp) -> Result<(), StoreError> {
        let rec = self
            .backend
            .get(key)
            .ok_or(StoreError::UnknownKey { key })?;
        let (_, base) = rec.read_visible(v).ok_or(StoreError::NoVisibleVersion {
            key,
            version: v,
            window: None,
        })?;
        if op.applies_to() != base.kind() {
            return Err(StoreError::Apply {
                key,
                source: threev_model::ops::ApplyError::TypeMismatch { value: base.kind() },
            });
        }
        Ok(())
    }

    /// Read rule (§4.1 step 3 / §4.2): maximum existing version ≤ `v`.
    /// Returns the version actually read alongside the value.
    pub fn read_visible(
        &mut self,
        key: Key,
        v: VersionNo,
    ) -> Result<(VersionNo, Value), StoreError> {
        let rec = self
            .backend
            .get(key)
            .ok_or(StoreError::UnknownKey { key })?;
        let (w, val) = rec.read_visible(v).ok_or(StoreError::NoVisibleVersion {
            key,
            version: v,
            window: None,
        })?;
        self.stats.reads += 1;
        Ok((w, val.clone()))
    }

    /// Update rule (§4.1 step 4): ensure `x(v)` exists (copy-on-update),
    /// then apply `op` to every version ≥ `v`. When `undo` is supplied, the
    /// prior state of every touched version is recorded for rollback.
    pub fn update(
        &mut self,
        key: Key,
        v: VersionNo,
        op: UpdateOp,
        txn: TxnId,
        undo: Option<&mut UndoLog>,
    ) -> Result<UpdateOutcome, StoreError> {
        let rec = self
            .backend
            .get_mut(key)
            .ok_or(StoreError::UnknownKey { key })?;
        if let Some(log) = undo {
            // Record priors for all versions >= v, plus (if x(v) is about to
            // be created) a deletion entry for it.
            if !rec.exists(v) {
                log.record_created(key, v);
            }
            for w in rec.version_numbers().collect::<Vec<_>>() {
                if w >= v {
                    log.record_prior(key, w, rec.value_at(w).cloned());
                }
            }
        }
        let out = rec.update(key, v, op, txn)?;
        self.stats.updates += 1;
        if out.created_version {
            self.stats.copies_created += 1;
        }
        if out.versions_written >= 2 {
            self.stats.dual_writes += 1;
        }
        self.stats.max_versions_of_any_item = self
            .stats
            .max_versions_of_any_item
            .max(rec.version_count() as u32);
        Ok(out)
    }

    /// Update exactly version `v` of `key` (manual-versioning semantics:
    /// late updates do not propagate to newer versions). See
    /// [`crate::record::VersionedRecord::update_exact`].
    pub fn update_exact(
        &mut self,
        key: Key,
        v: VersionNo,
        op: UpdateOp,
        txn: TxnId,
    ) -> Result<UpdateOutcome, StoreError> {
        let rec = self
            .backend
            .get_mut(key)
            .ok_or(StoreError::UnknownKey { key })?;
        let out = rec.update_exact(key, v, op, txn)?;
        self.stats.updates += 1;
        if out.created_version {
            self.stats.copies_created += 1;
        }
        self.stats.max_versions_of_any_item = self
            .stats
            .max_versions_of_any_item
            .max(rec.version_count() as u32);
        Ok(out)
    }

    /// Does any version of `key` exist strictly above `v`? (NC3V abort rule,
    /// §5 step 4.)
    pub fn exists_above(&self, key: Key, v: VersionNo) -> Result<bool, StoreError> {
        let rec = self
            .backend
            .get(key)
            .ok_or(StoreError::UnknownKey { key })?;
        Ok(rec.max_version() > v)
    }

    /// Apply an undo log (rollback of an uncommitted subtransaction).
    /// Entries are applied newest-first.
    pub fn rollback(&mut self, log: UndoLog) {
        for (key, version, prior) in log.into_entries_rev() {
            if let Some(rec) = self.backend.get_mut(key) {
                rec.restore(version, prior);
            }
        }
    }

    /// Garbage-collect every record for the new read version (§4.3 Phase 4).
    ///
    /// The sweep does *not* dirty the records it changes: a GC rename is a
    /// deterministic function of `(record, vr_new)`, so durable backends
    /// persist only the highest swept version — the *vr floor*, via
    /// [`StorageBackend::note_gc`] — and re-derive the renames at open.
    /// Dirtying here would turn every advancement into a full-store
    /// rewrite, defeating incremental checkpoints.
    pub fn gc(&mut self, vr_new: VersionNo) {
        let stats = &mut self.stats;
        stats.gc_runs += 1;
        self.backend
            .visit_mut(&mut |_key, rec| match rec.gc(vr_new) {
                GcAction::DroppedOld { dropped } => {
                    stats.gc_dropped += dropped as u64;
                    false
                }
                GcAction::Renamed { dropped, .. } => {
                    stats.gc_renamed += 1;
                    stats.gc_dropped += dropped as u64;
                    false
                }
                GcAction::None => false,
            });
        self.backend.note_gc(vr_new);
    }

    /// Restore version `v` of `key` to `prior` (`None` removes the
    /// version). This is the single-entry form of [`Store::rollback`],
    /// exposed so WAL replay can re-apply logged rollbacks during
    /// recovery.
    pub fn restore_version(&mut self, key: Key, v: VersionNo, prior: Option<Value>) {
        if let Some(rec) = self.backend.get_mut(key) {
            rec.restore(v, prior);
        }
    }

    /// Export the full version layout of every key, sorted by key —
    /// the store side of a durability checkpoint.
    pub fn export_parts(&self) -> Vec<(Key, Vec<(VersionNo, Value)>)> {
        // Backend iteration is key-ordered, so the parts arrive sorted.
        self.iter_versions()
            .map(|(k, r)| {
                (
                    k,
                    r.version_numbers()
                        .filter_map(|v| r.value_at(v).map(|val| (v, val.clone())))
                        .collect(),
                )
            })
            .collect()
    }

    /// Version layout of one key: `(version, value)` pairs ascending. Used
    /// by the Figure 2 replay and by invariant checks.
    pub fn layout(&self, key: Key) -> Option<Vec<(VersionNo, Value)>> {
        self.backend.get(key).map(|r| {
            r.version_numbers()
                .filter_map(|v| r.value_at(v).map(|val| (v, val.clone())))
                .collect()
        })
    }

    /// Current maximum live version count across all items.
    pub fn current_max_versions(&self) -> usize {
        self.iter_versions()
            .map(|(_, r)| r.version_count())
            .max()
            .unwrap_or(0)
    }

    /// Iterate over all keys.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.iter_versions().map(|(k, _)| k)
    }

    /// Non-cloning snapshot view of every chain, in key order — the
    /// backend-agnostic read path for checkpointing, invariant checks, and
    /// the model checker's oracle (no whole-`Store` clone, no value clones).
    pub fn iter_versions(&self) -> impl Iterator<Item = (Key, &VersionedRecord)> + '_ {
        self.backend.iter().map(|(k, r)| (*k, r))
    }

    /// Persist every record changed since the last flush and stamp the
    /// durable image with `lsn`; returns bytes written (0 when the backend
    /// is volatile). See [`StorageBackend::flush`].
    pub fn flush_dirty(&mut self, lsn: u64) -> u64 {
        self.backend.flush(lsn)
    }

    /// LSN the durable chain image is current to (see
    /// [`StorageBackend::durable_lsn`]).
    pub fn durable_lsn(&self) -> Option<u64> {
        self.backend.durable_lsn()
    }

    /// Does the backend hold chains on stable storage? (See
    /// [`StorageBackend::persists_chains`].)
    pub fn persists_chains(&self) -> bool {
        self.backend.persists_chains()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::KeyDecl;

    fn t(seq: u64) -> TxnId {
        TxnId::new(seq, NodeId(0))
    }
    fn v(n: u32) -> VersionNo {
        VersionNo(n)
    }

    fn store() -> Store {
        let schema = Schema::new(vec![
            KeyDecl::counter(Key(1), NodeId(0), 100),
            KeyDecl::journal(Key(2), NodeId(0)),
            KeyDecl::counter(Key(3), NodeId(1), 0),
        ]);
        Store::from_schema(&schema, NodeId(0))
    }

    #[test]
    fn schema_fragmentation() {
        let s = store();
        assert_eq!(s.len(), 2, "only node-0 keys are materialised");
        assert!(!s.is_empty());
        assert_eq!(s.node(), NodeId(0));
        assert_eq!(s.keys().count(), 2);
    }

    #[test]
    fn unknown_key_errors() {
        let mut s = store();
        assert_eq!(
            s.read_visible(Key(3), v(0)).unwrap_err(),
            StoreError::UnknownKey { key: Key(3) }
        );
        assert_eq!(
            s.update(Key(3), v(1), UpdateOp::Add(1), t(1), None)
                .unwrap_err(),
            StoreError::UnknownKey { key: Key(3) }
        );
        assert!(s.exists_above(Key(3), v(0)).is_err());
    }

    #[test]
    fn read_update_cycle_with_stats() {
        let mut s = store();
        assert_eq!(s.read_visible(Key(1), v(0)).unwrap().1, Value::Counter(100));
        s.update(Key(1), v(1), UpdateOp::Add(10), t(1), None)
            .unwrap();
        // Reader at version 0 unaffected; reader at 1 sees it.
        assert_eq!(s.read_visible(Key(1), v(0)).unwrap().1, Value::Counter(100));
        assert_eq!(s.read_visible(Key(1), v(1)).unwrap().1, Value::Counter(110));
        let st = s.stats();
        assert_eq!(st.reads, 3);
        assert_eq!(st.updates, 1);
        assert_eq!(st.copies_created, 1);
        assert_eq!(st.dual_writes, 0);
        assert_eq!(st.max_versions_of_any_item, 2);
    }

    #[test]
    fn dual_write_stat() {
        let mut s = store();
        s.update(Key(1), v(1), UpdateOp::Add(1), t(1), None)
            .unwrap();
        s.update(Key(1), v(2), UpdateOp::Add(1), t(2), None)
            .unwrap();
        s.update(Key(1), v(1), UpdateOp::Add(1), t(3), None)
            .unwrap(); // straggler
        let st = s.stats();
        assert_eq!(st.dual_writes, 1);
        assert_eq!(st.max_versions_of_any_item, 3);
        assert_eq!(s.current_max_versions(), 3);
    }

    #[test]
    fn rollback_restores_all_versions() {
        let mut s = store();
        s.update(Key(1), v(1), UpdateOp::Add(10), t(1), None)
            .unwrap();
        s.update(Key(1), v(2), UpdateOp::Add(100), t(2), None)
            .unwrap();
        let before = s.layout(Key(1)).unwrap();

        // A straggler at v1 under an undo log, then rolled back.
        let mut log = UndoLog::default();
        s.update(Key(1), v(1), UpdateOp::Add(7), t(3), Some(&mut log))
            .unwrap();
        assert_ne!(s.layout(Key(1)).unwrap(), before);
        s.rollback(log);
        assert_eq!(s.layout(Key(1)).unwrap(), before);
    }

    #[test]
    fn rollback_removes_created_version() {
        let mut s = store();
        let mut log = UndoLog::default();
        s.update(Key(1), v(1), UpdateOp::Add(10), t(1), Some(&mut log))
            .unwrap();
        assert_eq!(s.layout(Key(1)).unwrap().len(), 2);
        s.rollback(log);
        let layout = s.layout(Key(1)).unwrap();
        assert_eq!(layout.len(), 1);
        assert_eq!(layout[0], (v(0), Value::Counter(100)));
    }

    #[test]
    fn gc_sweeps_everything() {
        let mut s = store();
        s.update(Key(1), v(1), UpdateOp::Add(1), t(1), None)
            .unwrap();
        // Key(2) untouched in v1 -> will be renamed.
        s.gc(v(1));
        let st = s.stats();
        assert_eq!(st.gc_runs, 1);
        assert_eq!(st.gc_dropped, 1); // Key(1)'s version 0
        assert_eq!(st.gc_renamed, 1); // Key(2) renamed 0 -> 1
        assert_eq!(s.current_max_versions(), 1);
        assert_eq!(s.read_visible(Key(2), v(1)).unwrap().0, v(1));
    }

    #[test]
    fn exists_above_for_nc_abort_rule() {
        let mut s = store();
        assert!(!s.exists_above(Key(1), v(0)).unwrap());
        s.update(Key(1), v(2), UpdateOp::Add(1), t(1), None)
            .unwrap();
        assert!(s.exists_above(Key(1), v(1)).unwrap());
        assert!(!s.exists_above(Key(1), v(2)).unwrap());
    }

    #[test]
    fn journal_reads_clone_snapshot() {
        let mut s = store();
        s.update(
            Key(2),
            v(1),
            UpdateOp::Append { amount: 5, tag: 1 },
            t(1),
            None,
        )
        .unwrap();
        let (_, snap) = s.read_visible(Key(2), v(1)).unwrap();
        // Later writes must not affect the returned snapshot.
        s.update(
            Key(2),
            v(1),
            UpdateOp::Append { amount: 6, tag: 1 },
            t(2),
            None,
        )
        .unwrap();
        assert_eq!(snap.as_journal().unwrap().len(), 1);
    }

    #[test]
    fn error_display() {
        let e = StoreError::NoVisibleVersion {
            key: Key(4),
            version: v(2),
            window: None,
        };
        assert!(e.to_string().contains("k4"));
        assert!(e.to_string().contains("v2"));
        assert!(!e.to_string().contains("window"));
        let e = e.with_window(v(3), v(4));
        assert!(e.to_string().contains("vr=v3"));
        assert!(e.to_string().contains("vu=v4"));
    }

    #[test]
    fn with_window_leaves_other_variants_alone() {
        let e = StoreError::UnknownKey { key: Key(1) };
        assert_eq!(e.clone().with_window(v(0), v(1)), e);
    }
}
