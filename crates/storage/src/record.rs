//! Bounded version chains.
//!
//! A [`VersionedRecord`] holds the live versions of one data item, ordered
//! by version number. The paper's central space claim (§4.4 property 1/2a)
//! is that at most **three** versions of any item exist, and only two while
//! no advancement is running; the chain asserts that bound in debug builds
//! and exposes a high-water mark for experiment X4.

use threev_model::{Key, TxnId, UpdateOp, Value, VersionNo};

use crate::store::StoreError;

/// Maximum number of simultaneously live versions (the paper's "3V" bound).
pub const MAX_VERSIONS: usize = 3;

/// Result of applying one update to a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// A new version was materialised by copy-on-update.
    pub created_version: bool,
    /// Number of versions the operation was applied to. A value `>= 2` is a
    /// *dual write* — the straggler case of §2.3, counted by experiment X7.
    pub versions_written: u8,
}

/// What garbage collection did to a record (§4.3 Phase 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcAction {
    /// `x(vr_new)` existed: all earlier versions were dropped.
    DroppedOld {
        /// How many versions were discarded.
        dropped: u8,
    },
    /// `x(vr_new)` did not exist: the latest earlier version was renamed to
    /// `vr_new` (and any versions before *it* dropped).
    Renamed {
        /// The version that was renamed.
        from: VersionNo,
        /// How many versions were discarded.
        dropped: u8,
    },
    /// Nothing to do (record already had a single version `>= vr_new`).
    None,
}

/// The live versions of one data item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionedRecord {
    /// `(version, value)` pairs, strictly ascending by version. Tiny by
    /// construction (≤ 3 entries), so a `Vec` beats any tree.
    versions: Vec<(VersionNo, Value)>,
}

impl VersionedRecord {
    /// New record whose initial value carries version 0 (paper §4:
    /// "Initially, all records exist in a single version 0").
    pub fn initial(value: Value) -> Self {
        VersionedRecord {
            versions: vec![(VersionNo::ZERO, value)],
        }
    }

    /// Rebuild a record from an explicit version layout (checkpoint
    /// recovery). `versions` must be non-empty, strictly ascending, and
    /// within the 3V bound — exactly what [`crate::store::Store::layout`]
    /// produces.
    pub fn from_versions(versions: Vec<(VersionNo, Value)>) -> Self {
        assert!(!versions.is_empty(), "record must have >= 1 version");
        assert!(
            versions.windows(2).all(|w| w[0].0 < w[1].0),
            "versions must be strictly ascending"
        );
        assert!(versions.len() <= MAX_VERSIONS, "3V bound violated");
        VersionedRecord { versions }
    }

    /// Number of live versions.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// The live version numbers, ascending.
    pub fn version_numbers(&self) -> impl Iterator<Item = VersionNo> + '_ {
        self.versions.iter().map(|(v, _)| *v)
    }

    /// Largest live version number.
    pub fn max_version(&self) -> VersionNo {
        // Structural invariant: every constructor materialises at least one
        // version, and GC never drops the last one — an empty record is
        // unrepresentable. Degrading to version 0 beats a reachable panic.
        self.versions
            .last()
            .map(|(v, _)| *v)
            .unwrap_or(VersionNo(0))
    }

    /// Does version `v` exist?
    pub fn exists(&self, v: VersionNo) -> bool {
        self.versions.iter().any(|(w, _)| *w == v)
    }

    /// Value stored under exactly version `v`, if present.
    pub fn value_at(&self, v: VersionNo) -> Option<&Value> {
        self.versions
            .iter()
            .find(|(w, _)| *w == v)
            .map(|(_, val)| val)
    }

    /// Read rule (§4.1 step 3): the maximum existing version of the item
    /// that does not exceed `v`.
    pub fn read_visible(&self, v: VersionNo) -> Option<(VersionNo, &Value)> {
        self.versions
            .iter()
            .rev()
            .find(|(w, _)| *w <= v)
            .map(|(w, val)| (*w, val))
    }

    /// Update rule (§4.1 step 4), for transaction `txn` at version `v` on
    /// item `key` (used only for error reporting):
    ///
    /// 1. if `x(v)` does not exist, create it by copying the maximum
    ///    existing version ≤ `v` (checking + creating is one atomic step —
    ///    trivially so here, since the node owns the record exclusively
    ///    while executing a subtransaction step);
    /// 2. apply the operation to **all** versions ≥ `v`.
    pub fn update(
        &mut self,
        key: Key,
        v: VersionNo,
        op: UpdateOp,
        txn: TxnId,
    ) -> Result<UpdateOutcome, StoreError> {
        let mut created_version = false;
        if !self.exists(v) {
            let (_, base) = self.read_visible(v).ok_or(StoreError::NoVisibleVersion {
                key,
                version: v,
                window: None,
            })?;
            let copy = base.clone();
            let pos = self.versions.partition_point(|(w, _)| *w < v);
            self.versions.insert(pos, (v, copy));
            created_version = true;
            debug_assert!(
                self.versions.len() <= MAX_VERSIONS,
                "3V bound violated for {key}: {:?}",
                self.versions.iter().map(|(w, _)| *w).collect::<Vec<_>>()
            );
        }
        let mut versions_written = 0u8;
        for (w, val) in self.versions.iter_mut() {
            if *w >= v {
                op.apply(val, txn)
                    .map_err(|source| StoreError::Apply { key, source })?;
                versions_written += 1;
            }
        }
        Ok(UpdateOutcome {
            created_version,
            versions_written,
        })
    }

    /// Update exactly version `v` (creating it by copy-on-update if
    /// needed), leaving newer versions untouched.
    ///
    /// This is *not* part of the 3V algorithm — it models the classic
    /// manual-versioning scheme (paper §1), whose late updates are lost
    /// from newer versions. The contrast with [`VersionedRecord::update`]
    /// is exactly the dual-write rule 3V adds.
    pub fn update_exact(
        &mut self,
        key: Key,
        v: VersionNo,
        op: UpdateOp,
        txn: TxnId,
    ) -> Result<UpdateOutcome, StoreError> {
        let mut created_version = false;
        if !self.exists(v) {
            let (_, base) = self.read_visible(v).ok_or(StoreError::NoVisibleVersion {
                key,
                version: v,
                window: None,
            })?;
            let copy = base.clone();
            let pos = self.versions.partition_point(|(w, _)| *w < v);
            self.versions.insert(pos, (v, copy));
            created_version = true;
        }
        let Some(slot) = self
            .versions
            .iter_mut()
            .find(|(w, _)| *w == v)
            .map(|(_, val)| val)
        else {
            // Ensured three lines up; failing here would be a defect in
            // `ensure_version`, surfaced as an error instead of a panic.
            return Err(StoreError::NoVisibleVersion {
                key,
                version: v,
                window: None,
            });
        };
        op.apply(slot, txn)
            .map_err(|source| StoreError::Apply { key, source })?;
        Ok(UpdateOutcome {
            created_version,
            versions_written: 1,
        })
    }

    /// Restore version `v` to `value` (undo support). Creates the version
    /// entry if the undo needs to re-insert it; passing `None` removes the
    /// version (undoing a copy-on-update creation).
    pub(crate) fn restore(&mut self, v: VersionNo, value: Option<Value>) {
        match value {
            Some(val) => {
                if let Some(slot) = self
                    .versions
                    .iter_mut()
                    .find(|(w, _)| *w == v)
                    .map(|(_, x)| x)
                {
                    *slot = val;
                } else {
                    let pos = self.versions.partition_point(|(w, _)| *w < v);
                    self.versions.insert(pos, (v, val));
                }
            }
            None => self.versions.retain(|(w, _)| *w != v),
        }
    }

    /// Garbage collection rule (§4.3 Phase 4) for a new read version:
    /// if `x(vr_new)` exists, drop all earlier versions; otherwise rename
    /// the latest earlier version to `vr_new`.
    pub fn gc(&mut self, vr_new: VersionNo) -> GcAction {
        if self.exists(vr_new) {
            let before = self.versions.len();
            self.versions.retain(|(w, _)| *w >= vr_new);
            let dropped = (before - self.versions.len()) as u8;
            if dropped == 0 {
                GcAction::None
            } else {
                GcAction::DroppedOld { dropped }
            }
        } else {
            // Find the latest version < vr_new; rename it.
            let Some(idx) = self.versions.iter().rposition(|(w, _)| *w < vr_new) else {
                return GcAction::None; // all versions already >= vr_new
            };
            let from = self.versions[idx].0;
            self.versions[idx].0 = vr_new;
            // Drop everything before it.
            self.versions.drain(..idx);
            GcAction::Renamed {
                from,
                dropped: idx as u8,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::NodeId;

    fn t(seq: u64) -> TxnId {
        TxnId::new(seq, NodeId(0))
    }
    fn v(n: u32) -> VersionNo {
        VersionNo(n)
    }
    const K: Key = Key(1);

    #[test]
    fn initial_record_is_version_zero() {
        let r = VersionedRecord::initial(Value::Counter(5));
        assert_eq!(r.version_count(), 1);
        assert_eq!(r.max_version(), v(0));
        assert_eq!(r.read_visible(v(0)), Some((v(0), &Value::Counter(5))));
        assert_eq!(r.read_visible(v(9)), Some((v(0), &Value::Counter(5))));
    }

    #[test]
    fn copy_on_update_creates_lazily() {
        let mut r = VersionedRecord::initial(Value::Counter(10));
        let out = r.update(K, v(1), UpdateOp::Add(5), t(1)).unwrap();
        assert!(out.created_version);
        assert_eq!(out.versions_written, 1);
        assert_eq!(r.version_count(), 2);
        // version 0 untouched, version 1 updated
        assert_eq!(r.value_at(v(0)), Some(&Value::Counter(10)));
        assert_eq!(r.value_at(v(1)), Some(&Value::Counter(15)));
        // reads below 1 still see version 0
        assert_eq!(r.read_visible(v(0)).unwrap().0, v(0));
        assert_eq!(r.read_visible(v(1)).unwrap().0, v(1));
    }

    #[test]
    fn second_update_does_not_copy() {
        let mut r = VersionedRecord::initial(Value::Counter(0));
        r.update(K, v(1), UpdateOp::Add(1), t(1)).unwrap();
        let out = r.update(K, v(1), UpdateOp::Add(1), t(2)).unwrap();
        assert!(!out.created_version);
        assert_eq!(r.value_at(v(1)), Some(&Value::Counter(2)));
    }

    #[test]
    fn straggler_updates_all_greater_versions() {
        // Paper §2.3: subtx iq arrives at a node already advanced to v2 and
        // must update versions 1 AND 2 of item D.
        let mut r = VersionedRecord::initial(Value::Counter(0));
        r.update(K, v(1), UpdateOp::Add(10), t(1)).unwrap(); // creates v1
        r.update(K, v(2), UpdateOp::Add(100), t(2)).unwrap(); // creates v2 (copy of v1)
        assert_eq!(r.value_at(v(2)), Some(&Value::Counter(110)));
        // Straggler at version 1: must hit v1 and v2 (dual write).
        let out = r.update(K, v(1), UpdateOp::Add(1), t(3)).unwrap();
        assert!(!out.created_version);
        assert_eq!(out.versions_written, 2);
        assert_eq!(r.value_at(v(0)), Some(&Value::Counter(0)));
        assert_eq!(r.value_at(v(1)), Some(&Value::Counter(11)));
        assert_eq!(r.value_at(v(2)), Some(&Value::Counter(111)));
    }

    #[test]
    fn straggler_with_no_newer_copy_writes_once() {
        // Paper §2.3: item E has no version-2 copy at site q, so iq executes
        // only against version 1 — no dual-write overhead without contention.
        let mut r = VersionedRecord::initial(Value::Counter(0));
        let out = r.update(K, v(1), UpdateOp::Add(1), t(1)).unwrap();
        assert_eq!(out.versions_written, 1);
    }

    #[test]
    fn three_version_bound_holds() {
        let mut r = VersionedRecord::initial(Value::Counter(0));
        r.update(K, v(1), UpdateOp::Add(1), t(1)).unwrap();
        r.update(K, v(2), UpdateOp::Add(1), t(2)).unwrap();
        assert_eq!(r.version_count(), 3);
        // GC to read version 1 drops version 0.
        assert_eq!(r.gc(v(1)), GcAction::DroppedOld { dropped: 1 });
        assert_eq!(r.version_count(), 2);
        r.update(K, v(3), UpdateOp::Add(1), t(3)).unwrap();
        assert_eq!(r.version_count(), 3);
    }

    #[test]
    fn gc_renames_when_target_missing() {
        // Item never written in v1: GC to vr_new=1 renames v0 -> v1.
        let mut r = VersionedRecord::initial(Value::Counter(7));
        assert_eq!(
            r.gc(v(1)),
            GcAction::Renamed {
                from: v(0),
                dropped: 0
            }
        );
        assert_eq!(r.version_count(), 1);
        assert!(r.exists(v(1)));
        assert!(!r.exists(v(0)));
        assert_eq!(r.value_at(v(1)), Some(&Value::Counter(7)));
        // Idempotent-ish: second GC with same target does nothing.
        assert_eq!(r.gc(v(1)), GcAction::None);
    }

    #[test]
    fn gc_renames_and_drops_older() {
        let mut r = VersionedRecord::initial(Value::Counter(0));
        r.update(K, v(1), UpdateOp::Add(1), t(1)).unwrap();
        // GC to version 2 (item never written in v2): v1 renamed to v2, v0 dropped.
        assert_eq!(
            r.gc(v(2)),
            GcAction::Renamed {
                from: v(1),
                dropped: 1
            }
        );
        assert_eq!(r.version_count(), 1);
        assert_eq!(r.value_at(v(2)), Some(&Value::Counter(1)));
    }

    #[test]
    fn reads_after_gc_rename_see_renamed() {
        let mut r = VersionedRecord::initial(Value::Counter(42));
        r.gc(v(1));
        // A version-1 or version-2 reader sees the renamed copy; a
        // version-0 reader cannot exist any more by protocol (Phase 4 waits
        // for them), and indeed sees nothing.
        assert_eq!(r.read_visible(v(2)).unwrap().1, &Value::Counter(42));
        assert!(r.read_visible(v(0)).is_none());
    }

    #[test]
    fn restore_round_trips() {
        let mut r = VersionedRecord::initial(Value::Counter(0));
        r.update(K, v(1), UpdateOp::Add(5), t(1)).unwrap();
        r.restore(v(1), Some(Value::Counter(100)));
        assert_eq!(r.value_at(v(1)), Some(&Value::Counter(100)));
        r.restore(v(1), None);
        assert!(!r.exists(v(1)));
        assert_eq!(r.version_count(), 1);
    }

    #[test]
    fn journal_dual_write_keeps_versions_independent() {
        let mut r = VersionedRecord::initial(Value::Journal(vec![]));
        r.update(K, v(1), UpdateOp::Append { amount: 1, tag: 0 }, t(1))
            .unwrap();
        r.update(K, v(2), UpdateOp::Append { amount: 2, tag: 0 }, t(2))
            .unwrap();
        // v1 has entry from t1 only; v2 has both.
        assert_eq!(r.value_at(v(1)).unwrap().as_journal().unwrap().len(), 1);
        assert_eq!(r.value_at(v(2)).unwrap().as_journal().unwrap().len(), 2);
    }

    #[test]
    fn update_exact_loses_late_writes() {
        // The manual-versioning defect the paper motivates with: a late
        // January charge applied after February's copy exists never reaches
        // the February version.
        let mut r = VersionedRecord::initial(Value::Counter(0));
        r.update_exact(K, v(1), UpdateOp::Add(10), t(1)).unwrap();
        r.update_exact(K, v(2), UpdateOp::Add(100), t(2)).unwrap(); // copies v1
        let out = r.update_exact(K, v(1), UpdateOp::Add(7), t(3)).unwrap(); // straggler
        assert_eq!(out.versions_written, 1);
        assert_eq!(r.value_at(v(1)), Some(&Value::Counter(17)));
        assert_eq!(r.value_at(v(2)), Some(&Value::Counter(110)), "charge lost");
    }

    #[test]
    fn version_numbers_sorted() {
        let mut r = VersionedRecord::initial(Value::Counter(0));
        r.update(K, v(2), UpdateOp::Add(1), t(1)).unwrap();
        r.update(K, v(1), UpdateOp::Add(1), t(2)).unwrap();
        let nums: Vec<VersionNo> = r.version_numbers().collect();
        assert_eq!(nums, vec![v(0), v(1), v(2)]);
    }
}
