//! Intra-node key-striped execution state (ROADMAP item 3).
//!
//! The paper's commutativity assumption (§2) says commuting updates on
//! *disjoint* keys need no mutual ordering: the update-all-≥`V(T)` rule and
//! the read-max-≤`v` rule are both single-key local, the R/C counters are
//! key-agnostic, and the NC3V lock table decides every `acquire` from the
//! state of one key alone. So a node's store and lock table may be split
//! into N independent *stripes* by a fixed hash of the key, with each
//! stripe holding its own version chains and lock states, and every
//! single-key operation routed to exactly one stripe — no cross-stripe
//! ordering exists to violate.
//!
//! What this buys: per-stripe maps are smaller (shallower `BTreeMap`s on
//! the hot read/update path), a stripe-spanning plan is detectable (the
//! fallback is simply that each step routes independently — correctness is
//! unconditional), and the layout is ready for per-stripe worker threads
//! when multi-core delivery lands.
//!
//! Why equivalence holds *exactly* (the `stripe_equivalence` suite pins
//! this down):
//!
//! * **Store**: every §4 rule reads/writes one key's chain. Routing by key
//!   partitions the chains without changing any chain's content. Merged
//!   views ([`StripedStore::export_parts`], [`StripedStore::iter_versions`])
//!   re-sort by key, reproducing the single `BTreeMap`'s iteration order.
//! * **Locks**: [`crate::LockTable::acquire`] decisions depend only on the
//!   addressed key's holders/waiters; [`StripedLocks::release_all`] merges
//!   per-stripe grants and stable-sorts them by key, reproducing the single
//!   table's key-ordered promotion sweep (within one key all grants come
//!   from one stripe in FIFO order, and a stable sort preserves that).
//! * **Stats**: reads/updates/copies/dual-writes/GC-drop counters are sums
//!   of disjoint routed events; the version high-water mark is a max; a GC
//!   sweep runs once over every stripe, so `gc_runs` merges as a max, not
//!   a sum.

use std::io;

use threev_model::{Key, NodeId, Schema, TxnId, UpdateOp, Value, VersionNo};

use crate::backend::{AnyBackend, BackendConfig};
use crate::locks::{Grants, LockDecision, LockMode, LockTable};
use crate::record::{UpdateOutcome, VersionedRecord};
use crate::store::{Store, StoreError, StoreStats};
use crate::undo::UndoLog;

/// Which stripe owns `key` in an `n`-striped node. Fibonacci-multiplicative
/// hash: cheap, deterministic, and spreads the dense low-valued keys the
/// workload generators emit. `n <= 1` always routes to stripe 0.
#[inline]
pub fn stripe_of(key: Key, n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        ((key.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % n
    }
}

/// A node's store split into N independent key-striped [`Store`]s.
///
/// With one stripe this is a transparent wrapper around the classic
/// `Store<AnyBackend>` — same construction path, same backend directory
/// layout — so the default configuration stays bit-identical to the
/// unsharded engine.
#[derive(Debug)]
pub struct StripedStore {
    node: NodeId,
    stripes: Vec<Store<AnyBackend>>,
}

impl StripedStore {
    /// Build the striped store for `node` from the schema: each stripe
    /// opens its own backend via [`BackendConfig::open_stripe`] and
    /// materialises only the schema keys that hash to it. A reopened
    /// non-empty backend keeps its recovered chains and ignores the schema
    /// (mirroring [`Store::from_schema_on`]).
    ///
    /// # Errors
    /// Propagates backend open errors (the `Mem` arm never fails).
    pub fn from_schema_on_config(
        cfg: &BackendConfig,
        schema: &Schema,
        node: NodeId,
        n_stripes: u16,
    ) -> io::Result<Self> {
        let n = usize::from(n_stripes.max(1));
        if n == 1 {
            // Exact legacy path: same directory name, same construction.
            let backend = cfg.open(node)?;
            return Ok(StripedStore {
                node,
                stripes: vec![Store::from_schema_on(backend, schema, node)],
            });
        }
        let mut stripes = Vec::with_capacity(n);
        for idx in 0..n {
            let backend = cfg.open_stripe(node, idx as u16, n_stripes)?;
            let mut stripe = Store::on_backend(backend, node);
            if stripe.is_empty() {
                for decl in schema.keys_on(node) {
                    if stripe_of(decl.key, n) == idx {
                        stripe.insert_initial(decl.key, decl.init.clone());
                    }
                }
            }
            stripes.push(stripe);
        }
        Ok(StripedStore { node, stripes })
    }

    /// Wrap an already-built single store (recovery installs, tests).
    pub fn from_single(store: Store<AnyBackend>) -> Self {
        StripedStore {
            node: store.node(),
            stripes: vec![store],
        }
    }

    /// Rebuild an `n`-striped in-memory store from merged exported parts
    /// (checkpoint recovery: the snapshot image is always the merged,
    /// key-sorted view, whatever the stripe count that produced it).
    pub fn from_merged_parts(
        node: NodeId,
        parts: Vec<(Key, Vec<(VersionNo, Value)>)>,
        n_stripes: u16,
    ) -> Self {
        let n = usize::from(n_stripes.max(1));
        let mut routed: Vec<Vec<_>> = (0..n).map(|_| Vec::new()).collect();
        for (key, versions) in parts {
            routed[stripe_of(key, n)].push((key, versions));
        }
        StripedStore {
            node,
            stripes: routed
                .into_iter()
                .map(|p| Store::from_parts(node, p).into_any())
                .collect(),
        }
    }

    /// Empty volatile single-stripe placeholder (the post-crash wipe;
    /// recovery replaces it).
    pub fn empty_mem(node: NodeId) -> Self {
        StripedStore::from_single(Store::empty(node).into_any())
    }

    /// Number of stripes.
    pub fn n_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Which stripe owns `key`.
    #[inline]
    pub fn stripe_of_key(&self, key: Key) -> usize {
        stripe_of(key, self.stripes.len())
    }

    #[inline]
    fn stripe(&self, key: Key) -> &Store<AnyBackend> {
        &self.stripes[self.stripe_of_key(key)]
    }

    #[inline]
    fn stripe_mut(&mut self, key: Key) -> &mut Store<AnyBackend> {
        let idx = self.stripe_of_key(key);
        &mut self.stripes[idx]
    }

    /// The single underlying store — only meaningful (and only called) on
    /// unsharded nodes, e.g. paged-backend recovery which replays the WAL
    /// directly into the one store.
    pub fn single_mut(&mut self) -> &mut Store<AnyBackend> {
        debug_assert_eq!(self.stripes.len(), 1);
        &mut self.stripes[0]
    }

    /// Node this store belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total number of keys across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(Store::len).sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(Store::is_empty)
    }

    /// Merged statistics: event counters sum across stripes; the version
    /// high-water mark is a max; `gc_runs` is a max because one §4.3 sweep
    /// visits every stripe once.
    pub fn stats(&self) -> StoreStats {
        let mut out = StoreStats::default();
        for s in &self.stripes {
            let st = s.stats();
            out.reads += st.reads;
            out.updates += st.updates;
            out.copies_created += st.copies_created;
            out.dual_writes += st.dual_writes;
            out.max_versions_of_any_item = out
                .max_versions_of_any_item
                .max(st.max_versions_of_any_item);
            out.gc_runs = out.gc_runs.max(st.gc_runs);
            out.gc_dropped += st.gc_dropped;
            out.gc_renamed += st.gc_renamed;
        }
        out
    }

    /// Insert a key at version 0 (test/bootstrap helper).
    pub fn insert_initial(&mut self, key: Key, value: Value) {
        self.stripe_mut(key).insert_initial(key, value);
    }

    /// Validate the read rule without serving the read.
    pub fn check_read(&self, key: Key, v: VersionNo) -> Result<(), StoreError> {
        self.stripe(key).check_read(key, v)
    }

    /// Validate an update without applying it.
    pub fn check_update(&self, key: Key, v: VersionNo, op: UpdateOp) -> Result<(), StoreError> {
        self.stripe(key).check_update(key, v, op)
    }

    /// Read rule (§4.1 step 3 / §4.2): maximum existing version ≤ `v`.
    pub fn read_visible(
        &mut self,
        key: Key,
        v: VersionNo,
    ) -> Result<(VersionNo, Value), StoreError> {
        self.stripe_mut(key).read_visible(key, v)
    }

    /// Update rule (§4.1 step 4) on the owning stripe.
    pub fn update(
        &mut self,
        key: Key,
        v: VersionNo,
        op: UpdateOp,
        txn: TxnId,
        undo: Option<&mut UndoLog>,
    ) -> Result<UpdateOutcome, StoreError> {
        self.stripe_mut(key).update(key, v, op, txn, undo)
    }

    /// Does any version of `key` exist strictly above `v`? (NC3V §5.)
    pub fn exists_above(&self, key: Key, v: VersionNo) -> Result<bool, StoreError> {
        self.stripe(key).exists_above(key, v)
    }

    /// Apply an undo log newest-first, routing each entry to its stripe.
    /// Equivalent to [`Store::rollback`]: restores are single-version
    /// writes, so per-entry routing preserves the newest-first order that
    /// matters (entries for one key always land on one stripe).
    pub fn rollback(&mut self, log: UndoLog) {
        for (key, version, prior) in log.into_entries_rev() {
            self.stripe_mut(key).restore_version(key, version, prior);
        }
    }

    /// Restore version `v` of `key` to `prior` (WAL replay helper).
    pub fn restore_version(&mut self, key: Key, v: VersionNo, prior: Option<Value>) {
        self.stripe_mut(key).restore_version(key, v, prior);
    }

    /// Garbage-collect every stripe for the new read version (§4.3
    /// Phase 4). One logical sweep; each stripe's `gc_runs` ticks once.
    pub fn gc(&mut self, vr_new: VersionNo) {
        for s in &mut self.stripes {
            s.gc(vr_new);
        }
    }

    /// Export the full version layout of every key, sorted by key — the
    /// same image a single store exports, whatever the stripe count.
    pub fn export_parts(&self) -> Vec<(Key, Vec<(VersionNo, Value)>)> {
        let mut parts: Vec<_> = self.stripes.iter().flat_map(|s| s.export_parts()).collect();
        parts.sort_unstable_by_key(|(k, _)| *k);
        parts
    }

    /// Version layout of one key.
    pub fn layout(&self, key: Key) -> Option<Vec<(VersionNo, Value)>> {
        self.stripe(key).layout(key)
    }

    /// Current maximum live version count across all items.
    pub fn current_max_versions(&self) -> usize {
        self.stripes
            .iter()
            .map(Store::current_max_versions)
            .max()
            .unwrap_or(0)
    }

    /// All keys, ascending.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.iter_versions().map(|(k, _)| k)
    }

    /// Non-cloning snapshot view of every chain, merged back into key
    /// order (the single-store iteration order downstream checks rely on).
    pub fn iter_versions(&self) -> impl Iterator<Item = (Key, &VersionedRecord)> + '_ {
        let mut rows: Vec<(Key, &VersionedRecord)> = self
            .stripes
            .iter()
            .flat_map(|s| s.iter_versions())
            .collect();
        rows.sort_unstable_by_key(|(k, _)| *k);
        rows.into_iter()
    }

    /// Persist dirty records in every stripe; returns total bytes written.
    pub fn flush_dirty(&mut self, lsn: u64) -> u64 {
        self.stripes.iter_mut().map(|s| s.flush_dirty(lsn)).sum()
    }

    /// LSN the durable image is current to: the *minimum* over stripes
    /// (the image as a whole is only as new as its stalest stripe).
    pub fn durable_lsn(&self) -> Option<u64> {
        self.stripes.iter().filter_map(Store::durable_lsn).min()
    }

    /// Do the backends hold chains on stable storage?
    pub fn persists_chains(&self) -> bool {
        self.stripes.iter().any(Store::persists_chains)
    }
}

/// The NC3V lock table split into N key-striped [`LockTable`]s.
///
/// Every `acquire` decision in [`LockTable`] is a pure function of the
/// addressed key's holders and waiters (wait-die compares the requester
/// against *that key's* conflict set only), so routing by key is exact.
#[derive(Debug)]
pub struct StripedLocks {
    stripes: Vec<LockTable>,
}

impl StripedLocks {
    /// New empty table with `n` stripes (`n <= 1` → one classic table).
    pub fn new(n_stripes: u16) -> Self {
        let n = usize::from(n_stripes.max(1));
        StripedLocks {
            stripes: (0..n).map(|_| LockTable::new()).collect(),
        }
    }

    /// Wrap an existing single table (recovery installs).
    pub fn from_single(table: LockTable) -> Self {
        StripedLocks {
            stripes: vec![table],
        }
    }

    /// Rebuild an `n`-striped table from merged exported parts (checkpoint
    /// recovery). Statistics restart at zero, as in
    /// [`LockTable::from_parts`].
    #[allow(clippy::type_complexity)]
    pub fn from_merged_parts(
        parts: Vec<(Key, Vec<(TxnId, LockMode, u32)>, Vec<(TxnId, LockMode)>)>,
        n_stripes: u16,
    ) -> Self {
        let n = usize::from(n_stripes.max(1));
        let mut routed: Vec<Vec<_>> = (0..n).map(|_| Vec::new()).collect();
        for row in parts {
            routed[stripe_of(row.0, n)].push(row);
        }
        StripedLocks {
            stripes: routed.into_iter().map(LockTable::from_parts).collect(),
        }
    }

    /// Number of stripes.
    pub fn n_stripes(&self) -> usize {
        self.stripes.len()
    }

    #[inline]
    fn stripe_mut(&mut self, key: Key) -> &mut LockTable {
        let idx = stripe_of(key, self.stripes.len());
        &mut self.stripes[idx]
    }

    #[inline]
    fn stripe(&self, key: Key) -> &LockTable {
        &self.stripes[stripe_of(key, self.stripes.len())]
    }

    /// Request `mode` on `key` for `txn` (routed; see [`LockTable::acquire`]).
    pub fn acquire(&mut self, key: Key, mode: LockMode, txn: TxnId) -> LockDecision {
        self.stripe_mut(key).acquire(key, mode, txn)
    }

    /// Release every lock held or awaited by `txn` across all stripes,
    /// returning the grants that become possible **in key order** — the
    /// exact order the single table's key-ordered promotion sweep emits.
    /// The sort is stable so one key's FIFO grant order (all from one
    /// stripe) is preserved.
    pub fn release_all(&mut self, txn: TxnId) -> Grants {
        let mut grants = Grants::new();
        for s in &mut self.stripes {
            grants.append(&mut s.release_all(txn));
        }
        if self.stripes.len() > 1 {
            grants.sort_by_key(|&(_, key, _)| key);
        }
        grants
    }

    /// Does `txn` currently hold a lock on `key`?
    pub fn holds(&self, txn: TxnId, key: Key) -> bool {
        self.stripe(key).holds(txn, key)
    }

    /// Number of holders on `key`.
    pub fn holder_count(&self, key: Key) -> usize {
        self.stripe(key).holder_count(key)
    }

    /// Number of waiters on `key`.
    pub fn waiter_count(&self, key: Key) -> usize {
        self.stripe(key).waiter_count(key)
    }

    /// Is every stripe completely free? (Quiescence invariant.)
    pub fn is_idle(&self) -> bool {
        self.stripes.iter().all(LockTable::is_idle)
    }

    /// Total waits observed across stripes (experiment X6).
    pub fn waits(&self) -> u64 {
        self.stripes.iter().map(|s| s.waits).sum()
    }

    /// Total wait-die aborts across stripes.
    pub fn die_aborts(&self) -> u64 {
        self.stripes.iter().map(|s| s.die_aborts).sum()
    }

    /// Export the merged table for a durability checkpoint, sorted by key —
    /// the same image a single table exports.
    #[allow(clippy::type_complexity)]
    pub fn export_parts(&self) -> Vec<(Key, Vec<(TxnId, LockMode, u32)>, Vec<(TxnId, LockMode)>)> {
        let mut parts: Vec<_> = self.stripes.iter().flat_map(|s| s.export_parts()).collect();
        parts.sort_unstable_by_key(|(k, ..)| *k);
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::KeyDecl;

    fn t(seq: u64) -> TxnId {
        TxnId::new(seq, NodeId(0))
    }
    fn v(n: u32) -> VersionNo {
        VersionNo(n)
    }

    fn schema(n_keys: u64) -> Schema {
        Schema::new(
            (0..n_keys)
                .map(|k| KeyDecl::counter(Key(k), NodeId(0), 100))
                .collect(),
        )
    }

    fn striped(n: u16) -> StripedStore {
        StripedStore::from_schema_on_config(&BackendConfig::Mem, &schema(16), NodeId(0), n).unwrap()
    }

    #[test]
    fn stripe_of_is_total_and_stable() {
        for k in 0..1000u64 {
            assert_eq!(stripe_of(Key(k), 0), 0);
            assert_eq!(stripe_of(Key(k), 1), 0);
            for n in [2usize, 3, 8] {
                let s = stripe_of(Key(k), n);
                assert!(s < n);
                assert_eq!(s, stripe_of(Key(k), n), "deterministic");
            }
        }
    }

    #[test]
    fn stripes_spread_keys_and_preserve_totals() {
        let s = striped(8);
        assert_eq!(s.n_stripes(), 8);
        assert_eq!(s.len(), 16);
        assert!(!s.is_empty());
        // At least two stripes are non-empty for 16 dense keys.
        let occupied = (0..16u64)
            .map(|k| s.stripe_of_key(Key(k)))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(
            occupied.len() >= 2,
            "hash must actually spread: {occupied:?}"
        );
    }

    /// The load-bearing property: a scripted op sequence produces the same
    /// merged layouts, stats, and errors at every stripe count.
    #[test]
    fn striped_store_equals_single_store() {
        let mut engines: Vec<StripedStore> = [1u16, 2, 8].iter().map(|&n| striped(n)).collect();
        // A deterministic mixed script: updates at skewed versions, reads,
        // rollbacks, straggler dual writes, GC.
        for s in &mut engines {
            s.update(Key(1), v(1), UpdateOp::Add(10), t(1), None)
                .unwrap();
            s.update(Key(2), v(1), UpdateOp::Add(5), t(1), None)
                .unwrap();
            s.update(Key(1), v(2), UpdateOp::Add(100), t(2), None)
                .unwrap();
            s.update(Key(9), v(2), UpdateOp::Add(7), t(2), None)
                .unwrap();
            // Straggler at v1 -> dual write on Key(1).
            s.update(Key(1), v(1), UpdateOp::Add(1), t(3), None)
                .unwrap();
            assert_eq!(s.read_visible(Key(1), v(1)).unwrap().1, Value::Counter(111));
            assert_eq!(s.read_visible(Key(2), v(0)).unwrap().1, Value::Counter(100));
            // Undo-logged update rolled back.
            let mut log = UndoLog::default();
            s.update(Key(5), v(1), UpdateOp::Add(50), t(4), Some(&mut log))
                .unwrap();
            s.rollback(log);
            assert!(s.exists_above(Key(9), v(1)).unwrap());
            assert!(s.check_read(Key(3), v(0)).is_ok());
            assert!(s.check_update(Key(3), v(1), UpdateOp::Add(1)).is_ok());
            assert!(matches!(
                s.read_visible(Key(99), v(0)),
                Err(StoreError::UnknownKey { .. })
            ));
            s.gc(v(1));
        }
        let baseline = &engines[0];
        for s in &engines[1..] {
            assert_eq!(s.export_parts(), baseline.export_parts());
            assert_eq!(s.stats(), baseline.stats());
            assert_eq!(s.current_max_versions(), baseline.current_max_versions());
            assert_eq!(
                s.keys().collect::<Vec<_>>(),
                baseline.keys().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn merged_views_are_key_sorted() {
        let s = striped(8);
        let keys: Vec<Key> = s.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        let parts = s.export_parts();
        assert!(parts.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn from_merged_parts_round_trips() {
        let mut s = striped(4);
        s.update(Key(1), v(1), UpdateOp::Add(10), t(1), None)
            .unwrap();
        s.update(Key(7), v(1), UpdateOp::Add(3), t(1), None)
            .unwrap();
        let parts = s.export_parts();
        for n in [1u16, 2, 8] {
            let r = StripedStore::from_merged_parts(NodeId(0), parts.clone(), n);
            assert_eq!(r.export_parts(), parts);
            assert_eq!(r.n_stripes(), usize::from(n));
        }
    }

    #[test]
    fn striped_locks_equal_single_table() {
        // Same request script against 1 and 8 stripes: identical decisions
        // and identical merged grant order on release.
        let keys: Vec<Key> = (0..8u64).map(Key).collect();
        let mut one = StripedLocks::new(1);
        let mut eight = StripedLocks::new(8);
        for lt in [&mut one, &mut eight] {
            for &k in &keys {
                assert_eq!(
                    lt.acquire(k, LockMode::Exclusive, t(1)),
                    LockDecision::Granted
                );
            }
            // Older waiters queue; younger die — per key.
            for &k in &keys {
                assert_eq!(
                    lt.acquire(k, LockMode::Commute, t(0)),
                    LockDecision::Waiting
                );
                assert_eq!(lt.acquire(k, LockMode::Commute, t(5)), LockDecision::Abort);
            }
        }
        assert_eq!(one.waits(), eight.waits());
        assert_eq!(one.die_aborts(), eight.die_aborts());
        assert_eq!(one.export_parts(), eight.export_parts());
        let g1 = one.release_all(t(1));
        let g8 = eight.release_all(t(1));
        assert_eq!(g1, g8, "merged grants must reproduce single-table order");
        assert!(g1.windows(2).all(|w| w[0].1 < w[1].1), "grants key-sorted");
        assert!(!one.is_idle() || one.holder_count(Key(0)) == 0);
        let _ = one.release_all(t(0));
        let _ = eight.release_all(t(0));
        assert!(one.is_idle() && eight.is_idle());
    }

    #[test]
    fn striped_locks_from_merged_parts_routes_rows() {
        let mut lt = StripedLocks::new(4);
        lt.acquire(Key(3), LockMode::Commute, t(1));
        lt.acquire(Key(11), LockMode::Exclusive, t(2));
        let parts = lt.export_parts();
        let rebuilt = StripedLocks::from_merged_parts(parts.clone(), 8);
        assert_eq!(rebuilt.export_parts(), parts);
        assert!(rebuilt.holds(t(1), Key(3)));
        assert!(rebuilt.holds(t(2), Key(11)));
    }
}
