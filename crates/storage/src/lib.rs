//! Per-node multiversion storage engine for the 3V protocol.
//!
//! Implements exactly the storage behaviour the paper assumes of each node
//! (§4):
//!
//! * a bounded **version chain** per data item — at most three versions ever
//!   exist ([`record`]);
//! * **copy-on-update**: version `v` of item `x` is created lazily when a
//!   `v`-transaction first writes `x`, by copying the maximum existing
//!   version ≤ `v` (§2.1, §4.1 step 4);
//! * **read-max-≤v**: reads return the maximum existing version not
//!   exceeding the transaction's version (§4.1 step 3, §4.2);
//! * **update-all-≥v**: an update applies to every existing version ≥ the
//!   transaction's version — this single rule realises the "execute against
//!   both copies" treatment of stragglers (§2.3);
//! * **garbage collection** (§4.3 Phase 4): drop versions older than the new
//!   read version, renaming the latest survivor when needed;
//! * a **lock table** with commute / non-commute modes and wait-die deadlock
//!   avoidance, used only by the NC3V extension (§5) — pure 3V takes no
//!   locks;
//! * an **undo log** for local rollback, feeding the compensation machinery
//!   (§3.2).
//!
//! Where the chains *live* is pluggable ([`backend`]): the in-memory
//! [`MemBackend`] (the default, fully deterministic), or the on-disk
//! [`paged`] engine holding the chains natively in fixed-size pages with
//! incremental (dirty-record) checkpointing. The shared little-endian
//! framing both the page files and the durability WAL use is in [`wire`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod locks;
pub mod paged;
pub mod record;
pub mod store;
pub mod stripe;
pub mod undo;
pub mod wire;

pub use backend::{AnyBackend, BackendConfig, MemBackend, StorageBackend};
pub use locks::{LockDecision, LockMode, LockTable};
pub use paged::{PageAllocator, PagedBackend, PAGE_SIZE};
pub use record::{GcAction, UpdateOutcome, VersionedRecord};
pub use store::{Store, StoreError, StoreStats};
pub use stripe::{stripe_of, StripedLocks, StripedStore};
pub use undo::UndoLog;
