//! Hand-rolled little-endian wire encoding.
//!
//! No serialisation dependency exists in this workspace, and none is
//! needed: the WAL, checkpoint, and page-file formats are closed (every
//! type is known here), so a small writer/reader pair over `Vec<u8>`
//! suffices. All integers are little-endian; collections are
//! length-prefixed with a `u32`; options carry a one-byte tag.
//!
//! This module lives in `threev-storage` (the bottom of the dependency
//! stack) so both the [`paged`](crate::paged) backend and the
//! `threev-durability` WAL/checkpoint codecs can share one framing
//! discipline; durability re-exports it as `threev_durability::wire`.

use crate::locks::LockMode;
use threev_model::{
    JournalEntry, Key, NodeId, OpStep, SubtxnPlan, TxnId, TxnKind, TxnPlan, UpdateOp, Value,
    VersionNo,
};

/// Decoding failure: the input is truncated or structurally invalid.
///
/// Carries a static description of what was being decoded — enough to
/// debug a corrupt log without dragging a position through every call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode failed: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Fixed-size array view of a slice. [`ByteReader::take`] always hands back
/// exactly the requested length, so the error arm is unreachable — but an
/// error return beats an `unwrap` panic in protocol code.
fn arr<const N: usize>(slice: &[u8]) -> Result<[u8; N], WireError> {
    slice
        .try_into()
        .map_err(|_| WireError("internal slice-length mismatch"))
}

/// Append-only byte sink.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Finish, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write a raw byte.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Write a `u16`.
    pub fn u16(&mut self, x: u16) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write a `u32`.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write an `i64`.
    pub fn i64(&mut self, x: i64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Write a collection length.
    pub fn len(&mut self, n: usize) {
        // lint-allow(panic-hygiene): a collection the wire format cannot
        // express must not be logged truncated — fail-stop.
        self.u32(u32::try_from(n).expect("collection too large for wire format"));
    }

    /// Write a [`NodeId`].
    pub fn node(&mut self, n: NodeId) {
        self.u16(n.0);
    }

    /// Write a [`Key`].
    pub fn key(&mut self, k: Key) {
        self.u64(k.0);
    }

    /// Write a [`VersionNo`].
    pub fn version(&mut self, v: VersionNo) {
        self.u32(v.0);
    }

    /// Write a `u64` as a LEB128 varint (7 bits per byte, little-endian,
    /// high bit = continuation). Dense structures that repeat small
    /// numbers — the paged backend's meta directory — use this so their
    /// size tracks the magnitudes stored, not the field widths.
    pub fn varint(&mut self, mut x: u64) {
        while x >= 0x80 {
            self.buf.push((x as u8) | 0x80);
            x >>= 7;
        }
        self.buf.push(x as u8);
    }

    /// Write a [`TxnId`].
    pub fn txn(&mut self, t: TxnId) {
        self.u64(t.seq);
        self.node(t.origin);
    }

    /// Write an [`UpdateOp`].
    pub fn op(&mut self, op: UpdateOp) {
        match op {
            UpdateOp::Add(d) => {
                self.u8(0);
                self.i64(d);
            }
            UpdateOp::Append { amount, tag } => {
                self.u8(1);
                self.i64(amount);
                self.u32(tag);
            }
            UpdateOp::Retract { amount, tag } => {
                self.u8(2);
                self.i64(amount);
                self.u32(tag);
            }
            UpdateOp::Assign(x) => {
                self.u8(3);
                self.i64(x);
            }
        }
    }

    /// Write a [`Value`].
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Counter(c) => {
                self.u8(0);
                self.i64(*c);
            }
            Value::Journal(entries) => {
                self.u8(1);
                self.len(entries.len());
                for e in entries {
                    self.txn(e.txn);
                    self.i64(e.amount);
                    self.u32(e.tag);
                }
            }
            Value::Register(r) => {
                self.u8(2);
                self.i64(*r);
            }
        }
    }

    /// Write an `Option<Value>`.
    pub fn opt_value(&mut self, v: &Option<Value>) {
        match v {
            None => self.u8(0),
            Some(val) => {
                self.u8(1);
                self.value(val);
            }
        }
    }

    /// Write a [`LockMode`].
    pub fn lock_mode(&mut self, m: LockMode) {
        self.u8(match m {
            LockMode::Commute => 0,
            LockMode::Exclusive => 1,
        });
    }

    /// Write a UTF-8 string, length-prefixed.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a [`TxnKind`].
    pub fn txn_kind(&mut self, k: TxnKind) {
        self.u8(match k {
            TxnKind::ReadOnly => 0,
            TxnKind::Commuting => 1,
            TxnKind::NonCommuting => 2,
        });
    }

    /// Write an [`OpStep`].
    pub fn op_step(&mut self, s: &OpStep) {
        match s {
            OpStep::Read(k) => {
                self.u8(0);
                self.key(*k);
            }
            OpStep::Update(k, op) => {
                self.u8(1);
                self.key(*k);
                self.op(*op);
            }
        }
    }

    /// Write a [`SubtxnPlan`] subtree (preorder: node, steps, children).
    pub fn sub_plan(&mut self, p: &SubtxnPlan) {
        self.node(p.node);
        self.len(p.steps.len());
        for s in &p.steps {
            self.op_step(s);
        }
        self.len(p.children.len());
        for c in &p.children {
            self.sub_plan(c);
        }
    }

    /// Write a whole [`TxnPlan`].
    pub fn txn_plan(&mut self, p: &TxnPlan) {
        self.txn_kind(p.kind);
        self.sub_plan(&p.root);
    }
}

/// Sequential byte source over a borrowed slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(arr(self.take(2, "u16")?)?))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(arr(self.take(4, "u32")?)?))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(arr(self.take(8, "u64")?)?))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(arr(self.take(8, "i64")?)?))
    }

    /// Read a LEB128 varint written by [`ByteWriter::varint`]. Rejects
    /// encodings longer than a `u64` can carry.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut x = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            x |= u64::from(b & 0x7F) << shift;
            if b < 0x80 {
                return Ok(x);
            }
        }
        Err(WireError("varint overruns u64"))
    }

    /// Read a collection length, bounded by the bytes actually remaining
    /// so corrupt lengths fail instead of triggering huge allocations.
    pub fn read_len(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(WireError("length exceeds remaining input"));
        }
        Ok(n)
    }

    /// Read a [`NodeId`].
    pub fn node(&mut self) -> Result<NodeId, WireError> {
        Ok(NodeId(self.u16()?))
    }

    /// Read a [`Key`].
    pub fn key(&mut self) -> Result<Key, WireError> {
        Ok(Key(self.u64()?))
    }

    /// Read a [`VersionNo`].
    pub fn version(&mut self) -> Result<VersionNo, WireError> {
        Ok(VersionNo(self.u32()?))
    }

    /// Read a [`TxnId`].
    pub fn txn(&mut self) -> Result<TxnId, WireError> {
        let seq = self.u64()?;
        let origin = self.node()?;
        Ok(TxnId { seq, origin })
    }

    /// Read an [`UpdateOp`].
    pub fn op(&mut self) -> Result<UpdateOp, WireError> {
        match self.u8()? {
            0 => Ok(UpdateOp::Add(self.i64()?)),
            1 => {
                let amount = self.i64()?;
                let tag = self.u32()?;
                Ok(UpdateOp::Append { amount, tag })
            }
            2 => {
                let amount = self.i64()?;
                let tag = self.u32()?;
                Ok(UpdateOp::Retract { amount, tag })
            }
            3 => Ok(UpdateOp::Assign(self.i64()?)),
            _ => Err(WireError("unknown UpdateOp tag")),
        }
    }

    /// Read a [`Value`].
    pub fn value(&mut self) -> Result<Value, WireError> {
        match self.u8()? {
            0 => Ok(Value::Counter(self.i64()?)),
            1 => {
                let n = self.read_len()?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let txn = self.txn()?;
                    let amount = self.i64()?;
                    let tag = self.u32()?;
                    entries.push(JournalEntry { txn, amount, tag });
                }
                Ok(Value::Journal(entries))
            }
            2 => Ok(Value::Register(self.i64()?)),
            _ => Err(WireError("unknown Value tag")),
        }
    }

    /// Read an `Option<Value>`.
    pub fn opt_value(&mut self) -> Result<Option<Value>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.value()?)),
            _ => Err(WireError("unknown Option tag")),
        }
    }

    /// Read a [`LockMode`].
    pub fn lock_mode(&mut self) -> Result<LockMode, WireError> {
        match self.u8()? {
            0 => Ok(LockMode::Commute),
            1 => Ok(LockMode::Exclusive),
            _ => Err(WireError("unknown LockMode tag")),
        }
    }

    /// Read a UTF-8 string written by [`ByteWriter::str`].
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.read_len()?;
        let bytes = self.take(n, "str body")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError("string is not UTF-8"))
    }

    /// Read a [`TxnKind`].
    pub fn txn_kind(&mut self) -> Result<TxnKind, WireError> {
        match self.u8()? {
            0 => Ok(TxnKind::ReadOnly),
            1 => Ok(TxnKind::Commuting),
            2 => Ok(TxnKind::NonCommuting),
            _ => Err(WireError("unknown TxnKind tag")),
        }
    }

    /// Read an [`OpStep`].
    pub fn op_step(&mut self) -> Result<OpStep, WireError> {
        match self.u8()? {
            0 => Ok(OpStep::Read(self.key()?)),
            1 => {
                let k = self.key()?;
                let op = self.op()?;
                Ok(OpStep::Update(k, op))
            }
            _ => Err(WireError("unknown OpStep tag")),
        }
    }

    /// Read a [`SubtxnPlan`] subtree. Recursion is bounded by
    /// [`MAX_PLAN_DEPTH`]: `read_len` caps each child *count* by the
    /// remaining bytes, but a malicious frame could still nest one child
    /// per level and overflow the stack without an explicit depth fence.
    pub fn sub_plan(&mut self) -> Result<SubtxnPlan, WireError> {
        self.sub_plan_at(0)
    }

    fn sub_plan_at(&mut self, depth: usize) -> Result<SubtxnPlan, WireError> {
        if depth > MAX_PLAN_DEPTH {
            return Err(WireError("plan nesting exceeds MAX_PLAN_DEPTH"));
        }
        let node = self.node()?;
        let n_steps = self.read_len()?;
        let mut steps = Vec::with_capacity(n_steps);
        for _ in 0..n_steps {
            steps.push(self.op_step()?);
        }
        let n_children = self.read_len()?;
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            children.push(self.sub_plan_at(depth + 1)?);
        }
        Ok(SubtxnPlan {
            node,
            steps,
            children,
        })
    }

    /// Read a whole [`TxnPlan`].
    pub fn txn_plan(&mut self) -> Result<TxnPlan, WireError> {
        let kind = self.txn_kind()?;
        let root = self.sub_plan()?;
        Ok(TxnPlan { kind, root })
    }
}

/// FNV-1a checksum of `bytes`, folded to 32 bits. Used by the file
/// backend to detect torn or corrupt log frames.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

/// First four bytes of every client-protocol frame: `"RFV3"` on the wire
/// (the u32 is little-endian, so the constant reads back-to-front).
pub const FRAME_MAGIC: u32 = 0x3356_4652;

/// Byte length of the fixed frame header.
pub const FRAME_HEADER_LEN: usize = 16;

/// Hard cap on a frame payload. A header announcing more than this is
/// rejected before any allocation — the bound that keeps a hostile
/// 4 GiB length prefix from becoming a 4 GiB `Vec`.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Deepest [`SubtxnPlan`] nesting the decoder will follow. `read_len`
/// bounds child *counts* by remaining bytes, but one-child-per-level
/// nesting is linear in input size and would otherwise recurse without
/// limit.
pub const MAX_PLAN_DEPTH: usize = 64;

/// Decoded fixed header of a client-protocol frame.
///
/// Layout (16 bytes, all little-endian):
///
/// | offset | field       | type  |
/// |-------:|-------------|-------|
/// |      0 | magic       | `u32` |
/// |      4 | version     | `u16` |
/// |      6 | kind        | `u8`  |
/// |      7 | reserved(0) | `u8`  |
/// |      8 | payload len | `u32` |
/// |     12 | checksum    | `u32` |
///
/// The checksum is [`checksum`] over the payload bytes only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version the sender speaks.
    pub version: u16,
    /// Message kind discriminant (meaning belongs to the layer above).
    pub kind: u8,
    /// Payload byte length, already validated `<=` [`MAX_FRAME_PAYLOAD`].
    pub payload_len: usize,
    /// FNV-1a checksum of the payload.
    pub checksum: u32,
}

/// Encode a frame: fixed header plus payload. Fails (rather than
/// truncating or panicking) if the payload exceeds [`MAX_FRAME_PAYLOAD`].
pub fn encode_frame(version: u16, kind: u8, payload: &[u8]) -> Result<Vec<u8>, WireError> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(WireError("payload exceeds MAX_FRAME_PAYLOAD"));
    }
    let mut w = ByteWriter::new();
    w.u32(FRAME_MAGIC);
    w.u16(version);
    w.u8(kind);
    w.u8(0);
    w.u32(payload.len() as u32);
    w.u32(checksum(payload));
    let mut buf = w.into_bytes();
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Decode and validate the fixed 16-byte header. Rejects short input,
/// bad magic, a non-zero reserved byte, and oversized payload lengths —
/// everything a reader can check before touching the payload.
pub fn decode_frame_header(bytes: &[u8]) -> Result<FrameHeader, WireError> {
    let mut r = ByteReader::new(bytes);
    if r.remaining() < FRAME_HEADER_LEN {
        return Err(WireError("frame header truncated"));
    }
    if r.u32()? != FRAME_MAGIC {
        return Err(WireError("bad frame magic"));
    }
    let version = r.u16()?;
    let kind = r.u8()?;
    if r.u8()? != 0 {
        return Err(WireError("reserved frame byte is non-zero"));
    }
    let payload_len = r.u32()? as usize;
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(WireError("frame payload length exceeds limit"));
    }
    let cksum = r.u32()?;
    Ok(FrameHeader {
        version,
        kind,
        payload_len,
        checksum: cksum,
    })
}

/// Verify a received payload against its header (length, then checksum).
pub fn verify_frame_payload(header: &FrameHeader, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() != header.payload_len {
        return Err(WireError("frame payload length mismatch"));
    }
    if checksum(payload) != header.checksum {
        return Err(WireError("frame checksum mismatch"));
    }
    Ok(())
}

/// Decode one whole frame from a contiguous buffer: header, exact-length
/// payload, checksum. Trailing bytes after the payload are rejected so a
/// frame is one frame, not a prefix.
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), WireError> {
    let header = decode_frame_header(bytes)?;
    let body = &bytes[FRAME_HEADER_LEN..];
    if body.len() != header.payload_len {
        return Err(WireError("frame payload length mismatch"));
    }
    verify_frame_payload(&header, body)?;
    Ok((header, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(65_535);
        w.u32(123_456);
        w.u64(u64::MAX);
        w.i64(-42);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_535);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.is_exhausted());
    }

    #[test]
    fn varints_round_trip_at_every_width() {
        let cases = [0, 1, 0x7F, 0x80, 0x3FFF, 0x4000, 1 << 56, u64::MAX];
        let mut w = ByteWriter::new();
        for &x in &cases {
            w.varint(x);
        }
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 1 + 1 + 1 + 2 + 2 + 3 + 9 + 10);
        let mut r = ByteReader::new(&bytes);
        for &x in &cases {
            assert_eq!(r.varint().unwrap(), x);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn varint_rejects_overrun() {
        let bytes = [0xFF; 11];
        assert!(ByteReader::new(&bytes).varint().is_err());
    }

    #[test]
    fn model_types_round_trip() {
        let ops = [
            UpdateOp::Add(-5),
            UpdateOp::Append { amount: 7, tag: 3 },
            UpdateOp::Retract { amount: 7, tag: 3 },
            UpdateOp::Assign(9),
        ];
        let values = [
            Value::Counter(-100),
            Value::Register(55),
            Value::Journal(vec![JournalEntry {
                txn: TxnId::new(3, NodeId(1)),
                amount: 12,
                tag: 4,
            }]),
        ];
        let mut w = ByteWriter::new();
        w.txn(TxnId::new(9, NodeId(2)));
        w.key(Key(77));
        w.version(VersionNo(6));
        for op in ops {
            w.op(op);
        }
        for v in &values {
            w.value(v);
        }
        w.opt_value(&None);
        w.opt_value(&Some(Value::Counter(1)));
        w.lock_mode(LockMode::Commute);
        w.lock_mode(LockMode::Exclusive);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.txn().unwrap(), TxnId::new(9, NodeId(2)));
        assert_eq!(r.key().unwrap(), Key(77));
        assert_eq!(r.version().unwrap(), VersionNo(6));
        for op in ops {
            assert_eq!(r.op().unwrap(), op);
        }
        for v in &values {
            assert_eq!(&r.value().unwrap(), v);
        }
        assert_eq!(r.opt_value().unwrap(), None);
        assert_eq!(r.opt_value().unwrap(), Some(Value::Counter(1)));
        assert_eq!(r.lock_mode().unwrap(), LockMode::Commute);
        assert_eq!(r.lock_mode().unwrap(), LockMode::Exclusive);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = ByteWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.read_len(),
            Err(WireError("length exceeds remaining input"))
        );
    }

    #[test]
    fn checksum_differs_on_flip() {
        let a = checksum(b"hello world");
        let b = checksum(b"hello worle");
        assert_ne!(a, b);
        assert_eq!(a, checksum(b"hello world"));
    }

    #[test]
    fn strings_round_trip() {
        let mut w = ByteWriter::new();
        w.str("");
        w.str("hello ↔ wire");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.str().unwrap(), "");
        assert_eq!(r.str().unwrap(), "hello ↔ wire");
        assert!(r.is_exhausted());
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let mut w = ByteWriter::new();
        w.len(2);
        w.u8(0xFF);
        w.u8(0xFE);
        let bytes = w.into_bytes();
        assert_eq!(
            ByteReader::new(&bytes).str(),
            Err(WireError("string is not UTF-8"))
        );
    }

    fn sample_plan() -> TxnPlan {
        TxnPlan {
            kind: TxnKind::Commuting,
            root: SubtxnPlan {
                node: NodeId(0),
                steps: vec![
                    OpStep::Read(Key(1)),
                    OpStep::Update(Key(2), UpdateOp::Add(3)),
                ],
                children: vec![SubtxnPlan {
                    node: NodeId(1),
                    steps: vec![OpStep::Update(
                        Key(9),
                        UpdateOp::Append { amount: 1, tag: 7 },
                    )],
                    children: vec![],
                }],
            },
        }
    }

    #[test]
    fn txn_plan_round_trips() {
        let plan = sample_plan();
        let mut w = ByteWriter::new();
        w.txn_plan(&plan);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.txn_plan().unwrap(), plan);
        assert!(r.is_exhausted());
    }

    #[test]
    fn plan_nesting_depth_is_fenced() {
        // One child per level: linear in bytes, unbounded in depth.
        let mut deep = SubtxnPlan {
            node: NodeId(0),
            steps: vec![],
            children: vec![],
        };
        for _ in 0..(MAX_PLAN_DEPTH + 2) {
            deep = SubtxnPlan {
                node: NodeId(0),
                steps: vec![],
                children: vec![deep],
            };
        }
        let mut w = ByteWriter::new();
        w.sub_plan(&deep);
        let bytes = w.into_bytes();
        assert_eq!(
            ByteReader::new(&bytes).sub_plan(),
            Err(WireError("plan nesting exceeds MAX_PLAN_DEPTH"))
        );
    }

    #[test]
    fn frames_round_trip() {
        let payload = b"commuting updates".as_slice();
        let frame = encode_frame(1, 4, payload).unwrap();
        assert_eq!(frame.len(), FRAME_HEADER_LEN + payload.len());
        let (header, body) = decode_frame(&frame).unwrap();
        assert_eq!(header.version, 1);
        assert_eq!(header.kind, 4);
        assert_eq!(body, payload);

        // Empty payload is a legal frame.
        let empty = encode_frame(1, 0, &[]).unwrap();
        let (h, b) = decode_frame(&empty).unwrap();
        assert_eq!(h.payload_len, 0);
        assert!(b.is_empty());
    }

    #[test]
    fn frame_rejects_corruption() {
        let frame = encode_frame(1, 2, b"payload").unwrap();

        // Truncation at every length short of the full frame.
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut at {cut}");
        }

        // A flip anywhere — magic, header fields, or payload — must fail
        // (flips inside `version`/`kind` survive header checks, but then
        // the checksum was computed for a different (version, kind)
        // pairing only if the payload changed; version/kind flips are
        // caught one layer up, so only assert no panic for those).
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            let _ = decode_frame(&bad); // must not panic
        }

        // Payload flips specifically must fail the checksum.
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(
            decode_frame(&bad),
            Err(WireError("frame checksum mismatch"))
        );

        // Oversized announced length is rejected before allocation.
        let mut w = ByteWriter::new();
        w.u32(FRAME_MAGIC);
        w.u16(1);
        w.u8(0);
        w.u8(0);
        w.u32(u32::MAX);
        w.u32(0);
        assert_eq!(
            decode_frame_header(&w.into_bytes()),
            Err(WireError("frame payload length exceeds limit"))
        );

        // Trailing garbage after the payload is not a frame.
        let mut long = frame.clone();
        long.push(0);
        assert!(decode_frame(&long).is_err());
    }

    #[test]
    fn oversized_payload_refused_at_encode() {
        let big = vec![0u8; MAX_FRAME_PAYLOAD + 1];
        assert_eq!(
            encode_frame(1, 0, &big),
            Err(WireError("payload exceeds MAX_FRAME_PAYLOAD"))
        );
    }
}
