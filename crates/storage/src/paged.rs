//! On-disk paged storage backend: ≤3-version chains held natively in
//! fixed-size pages.
//!
//! Layout (two files per node, under the node's store directory):
//!
//! ```text
//! pages.bin   ── array of 256-byte pages
//!   page := payload_len  u32 │ checksum(payload) u32 │ payload │ zero pad
//!   record payload (may span pages, in directory order):
//!     key u64 │ n_versions u32 │ (version u32, value)*     (wire codec)
//!
//! meta.bin    ── single checksum-framed frame (atomic tmp+rename publish)
//!   frame   := payload_len u32 │ checksum(payload) u32 │ payload
//!   payload := magic u32 │ format u8 │ lsn u64 │ vr_floor u32
//!            │ directory: len │ (key_delta varint, n_pages varint, page varint *)*
//!            │ free list: len │ page_delta varint *   (ascending)
//!            │ next_fresh u32
//! ```
//!
//! The meta frame is republished on *every* flush, so its directory is
//! delta-varint packed (keys ascending, each stored as the gap from its
//! predecessor; chain page ids absolute, in chain order): a few bytes per
//! key instead of 16, which keeps the per-checkpoint floor well below the
//! cost of serialising the records themselves.
//!
//! Writes are **shadow paged**: a flush encodes every dirty record into
//! freshly allocated pages, syncs `pages.bin`, publishes the new `meta.bin`
//! via the same atomic tmp+rename discipline as the durability
//! checkpoint, and only *then* returns the superseded pages to the
//! [`PageAllocator`]'s free list. A torn page write can therefore only ever
//! land in space the last published meta considers free — recovery opens
//! the old meta and never reads the torn bytes. The per-page checksum
//! (same FNV-1a framing as the WAL, [`crate::wire::checksum`]) catches the
//! remaining corruption modes fail-stop.
//!
//! The whole record set is mirrored in an in-memory `BTreeMap` cache, so
//! reads and the §4 update rules run at memory speed and stay
//! deterministic; the disk image is only read again at
//! [`PagedBackend::open`] (recovery).
//!
//! **GC renames are metadata, not data.** A §4.3 Phase-4 sweep renames the
//! surviving version of *every* record whose chain predates the new read
//! version — naively that dirties the whole store on every advancement and
//! incremental checkpointing degenerates to full rewrites. But the sweep
//! is a deterministic function of `(record, vr_new)`, so the backend
//! persists only the highest swept version (`vr_floor` in the meta) and
//! re-applies `VersionedRecord::gc(vr_floor)` to each chain at open. Only
//! records whose *bytes changed for any other reason* (updates, restores)
//! are marked dirty; `gc` is idempotent and composable over monotone
//! versions, so replaying the floor over an already-swept or
//! freshly-flushed record is a no-op.

use std::collections::{btree_map, BTreeMap, BTreeSet};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use threev_model::{Key, VersionNo};

use crate::backend::StorageBackend;
use crate::record::VersionedRecord;
use crate::wire::{checksum, ByteReader, ByteWriter, WireError};

/// On-disk page size in bytes (header included).
pub const PAGE_SIZE: usize = 256;
/// Per-page header: payload length + payload checksum.
const PAGE_HEADER: usize = 8;
/// Payload capacity of one page.
const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;
/// `meta.bin` magic ("3VPG").
const META_MAGIC: u32 = 0x3356_5047;
/// `meta.bin` format version.
const META_FORMAT: u8 = 1;

/// Free-list page allocator: recycles the lowest-numbered free page first
/// (deterministic), growing the file only when the free list is empty.
///
/// Pages are identified by index (`offset = index * PAGE_SIZE`). The
/// allocator never shrinks the file; GC shrinking a chain simply returns
/// pages here for reuse.
#[derive(Clone, Debug, Default)]
pub struct PageAllocator {
    free: BTreeSet<u32>,
    next_fresh: u32,
}

impl PageAllocator {
    /// Rebuild an allocator from a recovered meta image.
    pub fn new(next_fresh: u32, free: impl IntoIterator<Item = u32>) -> Self {
        PageAllocator {
            free: free.into_iter().collect(),
            next_fresh,
        }
    }

    /// Allocate one page: the smallest free index, else a fresh one.
    pub fn alloc(&mut self) -> u32 {
        match self.free.iter().next().copied() {
            Some(p) => {
                self.free.remove(&p);
                p
            }
            None => {
                let p = self.next_fresh;
                self.next_fresh += 1;
                p
            }
        }
    }

    /// Return a previously allocated page to the free list.
    pub fn free(&mut self, page: u32) {
        assert!(
            page < self.next_fresh,
            "freeing never-allocated page {page}"
        );
        assert!(self.free.insert(page), "double free of page {page}");
    }

    /// One past the highest page ever allocated (the file's page count).
    pub fn high_water(&self) -> u32 {
        self.next_fresh
    }

    /// Currently free page indices, ascending.
    pub fn free_pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.free.iter().copied()
    }

    /// Number of free pages.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }
}

/// The on-disk paged backend. See the module docs for the file layout and
/// the shadow-paging flush protocol.
#[derive(Debug)]
pub struct PagedBackend {
    dir: PathBuf,
    pages: File,
    cache: BTreeMap<Key, VersionedRecord>,
    dirty: BTreeSet<Key>,
    directory: BTreeMap<Key, Vec<u32>>,
    alloc: PageAllocator,
    lsn: u64,
    /// Highest GC sweep seen; persisted in the meta and re-applied to
    /// every chain at open (see the module docs).
    vr_floor: VersionNo,
}

fn corrupt(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("page store: {what}"))
}

/// Encode one record as a self-describing page payload.
fn encode_record(key: Key, rec: &VersionedRecord) -> Vec<u8> {
    let pairs: Vec<_> = rec
        .version_numbers()
        .filter_map(|v| rec.value_at(v).map(|val| (v, val)))
        .collect();
    let mut w = ByteWriter::new();
    w.key(key);
    w.len(pairs.len());
    for (v, val) in pairs {
        w.version(v);
        w.value(val);
    }
    w.into_bytes()
}

/// Decode a record payload written by [`encode_record`].
fn decode_record(payload: &[u8]) -> Result<(Key, VersionedRecord), WireError> {
    let mut r = ByteReader::new(payload);
    let key = r.key()?;
    let n = r.read_len()?;
    if !(1..=crate::record::MAX_VERSIONS).contains(&n) {
        return Err(WireError("record version count out of range"));
    }
    let mut versions = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.version()?;
        let val = r.value()?;
        versions.push((v, val));
    }
    if !r.is_exhausted() {
        return Err(WireError("trailing bytes after record"));
    }
    Ok((key, VersionedRecord::from_versions(versions)))
}

struct Meta {
    lsn: u64,
    vr_floor: VersionNo,
    directory: BTreeMap<Key, Vec<u32>>,
    free: Vec<u32>,
    next_fresh: u32,
}

fn encode_meta(meta: &Meta) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(META_MAGIC);
    w.u8(META_FORMAT);
    w.u64(meta.lsn);
    w.version(meta.vr_floor);
    w.len(meta.directory.len());
    let mut prev_key = 0u64;
    for (key, pages) in &meta.directory {
        w.varint(key.0 - prev_key);
        prev_key = key.0;
        w.varint(pages.len() as u64);
        for &p in pages {
            w.varint(u64::from(p));
        }
    }
    // The free list is a set (the allocator re-sorts it on open), so it is
    // serialised ascending for delta packing.
    let mut free_sorted = meta.free.clone();
    free_sorted.sort_unstable();
    w.len(free_sorted.len());
    let mut prev_free = 0u64;
    for &p in &free_sorted {
        w.varint(u64::from(p) - prev_free);
        prev_free = u64::from(p);
    }
    w.u32(meta.next_fresh);
    let payload = w.into_bytes();
    let mut framed = ByteWriter::new();
    framed.len(payload.len());
    framed.u32(checksum(&payload));
    let mut bytes = framed.into_bytes();
    bytes.extend_from_slice(&payload);
    bytes
}

fn decode_meta(bytes: &[u8]) -> Result<Meta, WireError> {
    let mut frame = ByteReader::new(bytes);
    let len = frame.read_len()?;
    let cks = frame.u32()?;
    let payload = &bytes[8..8 + len];
    if checksum(payload) != cks {
        return Err(WireError("meta checksum mismatch"));
    }
    let mut r = ByteReader::new(payload);
    if r.u32()? != META_MAGIC {
        return Err(WireError("bad meta magic"));
    }
    if r.u8()? != META_FORMAT {
        return Err(WireError("unknown meta format"));
    }
    let lsn = r.u64()?;
    let vr_floor = r.version()?;
    let n_keys = r.read_len()?;
    let mut directory = BTreeMap::new();
    let mut prev_key = 0u64;
    for _ in 0..n_keys {
        let key = prev_key
            .checked_add(r.varint()?)
            .ok_or(WireError("directory key delta overflows"))?;
        prev_key = key;
        let n_pages = r.varint()? as usize;
        if n_pages > r.remaining() {
            return Err(WireError("directory page list longer than meta"));
        }
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            pages.push(u32::try_from(r.varint()?).map_err(|_| WireError("page id exceeds u32"))?);
        }
        directory.insert(Key(key), pages);
    }
    let n_free = r.read_len()?;
    let mut free = Vec::with_capacity(n_free);
    let mut prev_free = 0u64;
    for _ in 0..n_free {
        let p = prev_free
            .checked_add(r.varint()?)
            .ok_or(WireError("free-list delta overflows"))?;
        prev_free = p;
        free.push(u32::try_from(p).map_err(|_| WireError("free page id exceeds u32"))?);
    }
    let next_fresh = r.u32()?;
    if !r.is_exhausted() {
        return Err(WireError("trailing bytes after meta"));
    }
    Ok(Meta {
        lsn,
        vr_floor,
        directory,
        free,
        next_fresh,
    })
}

impl PagedBackend {
    /// Open (or create) the paged store rooted at `dir`, loading every
    /// chain the last published meta references into the cache.
    ///
    /// # Errors
    /// I/O failures, and fail-stop `InvalidData` on any corruption the
    /// checksums or the allocator-accounting cross-checks catch. Bytes
    /// beyond what the published meta references — e.g. pages torn by a
    /// crash mid-flush — are never read and never an error.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let mut pages = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join("pages.bin"))?;
        let meta = match fs::read(dir.join("meta.bin")) {
            Ok(bytes) => decode_meta(&bytes).map_err(corrupt)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Meta {
                lsn: 0,
                vr_floor: VersionNo(0),
                directory: BTreeMap::new(),
                free: Vec::new(),
                next_fresh: 0,
            },
            Err(e) => return Err(e),
        };
        // Every page must be accounted for exactly once (free xor in one
        // chain) and lie below the high-water mark — otherwise the
        // allocator would eventually hand out a live page.
        let mut seen = BTreeSet::new();
        for &p in meta.directory.values().flatten().chain(meta.free.iter()) {
            if p >= meta.next_fresh || !seen.insert(p) {
                return Err(corrupt(format!("page {p} double-booked or out of range")));
            }
        }
        let mut cache = BTreeMap::new();
        for (key, page_list) in &meta.directory {
            let payload = read_chain(&mut pages, page_list)?;
            let (k, mut rec) = decode_record(&payload).map_err(corrupt)?;
            if k != *key {
                return Err(corrupt(format!("directory says {key:?}, page says {k:?}")));
            }
            // Replay the persisted GC floor: sweeps do not rewrite pages
            // (module docs), so the on-disk chain may predate the last
            // advancement's rename. No dirty marking — the page image is
            // still canonical for this floor.
            rec.gc(meta.vr_floor);
            cache.insert(*key, rec);
        }
        Ok(PagedBackend {
            dir: dir.to_path_buf(),
            pages,
            cache,
            dirty: BTreeSet::new(),
            directory: meta.directory,
            alloc: PageAllocator::new(meta.next_fresh, meta.free),
            lsn: meta.lsn,
            vr_floor: meta.vr_floor,
        })
    }

    /// Directory root of this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records modified since the last flush.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// The page allocator (observability for tests and benches).
    pub fn allocator(&self) -> &PageAllocator {
        &self.alloc
    }

    /// Shadow-paged flush of every dirty record; see the module docs.
    /// Returns the bytes written (pages + meta).
    fn flush_inner(&mut self, lsn: u64) -> io::Result<u64> {
        let mut bytes = 0u64;
        let mut pending_free: Vec<u32> = Vec::new();
        for key in std::mem::take(&mut self.dirty) {
            let Some(rec) = self.cache.get(&key) else {
                continue;
            };
            let payload = encode_record(key, rec);
            let n_pages = payload.len().div_ceil(PAGE_PAYLOAD);
            let page_list: Vec<u32> = (0..n_pages).map(|_| self.alloc.alloc()).collect();
            for (i, &page) in page_list.iter().enumerate() {
                let chunk = &payload[i * PAGE_PAYLOAD..payload.len().min((i + 1) * PAGE_PAYLOAD)];
                let mut buf = [0u8; PAGE_SIZE];
                buf[0..4].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
                buf[4..8].copy_from_slice(&checksum(chunk).to_le_bytes());
                buf[PAGE_HEADER..PAGE_HEADER + chunk.len()].copy_from_slice(chunk);
                self.pages
                    .seek(SeekFrom::Start(u64::from(page) * PAGE_SIZE as u64))?;
                self.pages.write_all(&buf)?;
                bytes += PAGE_SIZE as u64;
            }
            if let Some(old) = self.directory.insert(key, page_list) {
                pending_free.extend(old);
            }
        }
        self.pages.sync_data()?;
        // Publish: the new meta's free list already includes the pages the
        // superseded chains occupied (they are free the instant the rename
        // lands), but the in-memory allocator only learns about them after
        // the rename — so an interrupted flush can never have handed old
        // chain pages out for reuse while an old meta still references them.
        let meta_bytes = encode_meta(&Meta {
            lsn,
            vr_floor: self.vr_floor,
            directory: self.directory.clone(),
            free: self
                .alloc
                .free_pages()
                .chain(pending_free.iter().copied())
                .collect(),
            next_fresh: self.alloc.high_water(),
        });
        let tmp = self.dir.join("meta.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&meta_bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, self.dir.join("meta.bin"))?;
        bytes += meta_bytes.len() as u64;
        for p in pending_free {
            self.alloc.free(p);
        }
        self.lsn = lsn;
        Ok(bytes)
    }
}

/// Read and verify one record's page chain, concatenating the payloads.
fn read_chain(pages: &mut File, page_list: &[u32]) -> io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    for &page in page_list {
        let mut buf = [0u8; PAGE_SIZE];
        pages.seek(SeekFrom::Start(u64::from(page) * PAGE_SIZE as u64))?;
        pages.read_exact(&mut buf)?;
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        let cks = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
        if len > PAGE_PAYLOAD {
            return Err(corrupt(format!("page {page} payload length {len}")));
        }
        let chunk = &buf[PAGE_HEADER..PAGE_HEADER + len];
        if checksum(chunk) != cks {
            return Err(corrupt(format!("page {page} checksum mismatch")));
        }
        payload.extend_from_slice(chunk);
    }
    Ok(payload)
}

impl StorageBackend for PagedBackend {
    fn get(&self, key: Key) -> Option<&VersionedRecord> {
        self.cache.get(&key)
    }

    fn get_mut(&mut self, key: Key) -> Option<&mut VersionedRecord> {
        let rec = self.cache.get_mut(&key)?;
        self.dirty.insert(key);
        Some(rec)
    }

    fn insert(&mut self, key: Key, rec: VersionedRecord) {
        self.cache.insert(key, rec);
        self.dirty.insert(key);
    }

    fn len(&self) -> usize {
        self.cache.len()
    }

    fn iter(&self) -> btree_map::Iter<'_, Key, VersionedRecord> {
        self.cache.iter()
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(Key, &mut VersionedRecord) -> bool) {
        for (k, rec) in self.cache.iter_mut() {
            if f(*k, rec) {
                self.dirty.insert(*k);
            }
        }
    }

    fn note_gc(&mut self, vr_new: VersionNo) {
        self.vr_floor = self.vr_floor.max(vr_new);
    }

    fn flush(&mut self, lsn: u64) -> u64 {
        // lint-allow(panic-hygiene): fail-stop — if the page files can no
        // longer be written the node must not keep acknowledging commits
        // against a durable image that stopped advancing.
        self.flush_inner(lsn)
            .unwrap_or_else(|e| panic!("paged store flush to {:?}: {e}", self.dir))
    }

    fn durable_lsn(&self) -> Option<u64> {
        Some(self.lsn)
    }

    fn persists_chains(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::{NodeId, TxnId, UpdateOp, Value, VersionNo};

    fn tdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("threev-paged-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(n: i64) -> VersionedRecord {
        VersionedRecord::initial(Value::Counter(n))
    }

    #[test]
    fn flush_and_reopen_round_trips() {
        let dir = tdir("roundtrip");
        let mut b = PagedBackend::open(&dir).unwrap();
        b.insert(Key(1), rec(10));
        b.insert(Key(2), rec(20));
        b.get_mut(Key(1))
            .unwrap()
            .update(
                Key(1),
                VersionNo(1),
                UpdateOp::Add(5),
                TxnId::new(1, NodeId(0)),
            )
            .unwrap();
        assert_eq!(b.dirty_count(), 2);
        let bytes = b.flush(7);
        assert!(bytes > 0);
        assert_eq!(b.dirty_count(), 0);
        drop(b);

        let b2 = PagedBackend::open(&dir).unwrap();
        assert_eq!(b2.durable_lsn(), Some(7));
        assert_eq!(b2.len(), 2);
        assert_eq!(
            b2.get(Key(1)).unwrap().value_at(VersionNo(1)),
            Some(&Value::Counter(15))
        );
        assert_eq!(
            b2.get(Key(2)).unwrap().value_at(VersionNo(0)),
            Some(&Value::Counter(20))
        );
    }

    #[test]
    fn unflushed_records_do_not_survive_reopen() {
        let dir = tdir("volatile-tail");
        let mut b = PagedBackend::open(&dir).unwrap();
        b.insert(Key(1), rec(1));
        b.flush(1);
        b.insert(Key(2), rec(2));
        drop(b); // crash before flush

        let b2 = PagedBackend::open(&dir).unwrap();
        assert_eq!(b2.len(), 1, "Key(2) was never flushed");
        assert_eq!(b2.durable_lsn(), Some(1));
    }

    #[test]
    fn big_journal_spans_pages_and_gc_reclaims_them() {
        let dir = tdir("overflow");
        let mut b = PagedBackend::open(&dir).unwrap();
        b.insert(Key(5), VersionedRecord::initial(Value::Journal(Vec::new())));
        // ~40 journal entries at 22 bytes each: several pages.
        for i in 0..40 {
            b.get_mut(Key(5))
                .unwrap()
                .update(
                    Key(5),
                    VersionNo(1),
                    UpdateOp::Append { amount: i, tag: 0 },
                    TxnId::new(i as u64, NodeId(0)),
                )
                .unwrap();
        }
        b.flush(1);
        let big_pages = b.directory[&Key(5)].len();
        assert!(big_pages > 1, "journal should overflow one page");
        drop(b);

        let mut b2 = PagedBackend::open(&dir).unwrap();
        assert_eq!(
            b2.get(Key(5)).unwrap().value_at(VersionNo(1)).unwrap(),
            b2.cache[&Key(5)].value_at(VersionNo(1)).unwrap()
        );
        // Shrink the record sharply (GC to a renamed single version after
        // assigning a small value) and check pages return to the free list.
        b2.get_mut(Key(5)).unwrap();
        *b2.cache.get_mut(&Key(5)).unwrap() =
            VersionedRecord::from_versions(vec![(VersionNo(2), Value::Counter(0))]);
        b2.dirty.insert(Key(5));
        b2.flush(2);
        assert_eq!(b2.directory[&Key(5)].len(), 1);
        assert!(
            b2.allocator().free_count() >= big_pages - 1,
            "superseded overflow pages must be reusable"
        );
        // And reuse actually happens: the next flush allocates from them.
        let high_water = b2.allocator().high_water();
        b2.insert(Key(6), rec(6));
        b2.flush(3);
        assert_eq!(b2.allocator().high_water(), high_water, "no fresh growth");
    }

    #[test]
    fn torn_tail_beyond_meta_is_ignored() {
        let dir = tdir("torn");
        let mut b = PagedBackend::open(&dir).unwrap();
        b.insert(Key(1), rec(1));
        b.flush(1);
        drop(b);
        // A crash mid-flush leaves garbage past the published high water.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("pages.bin"))
            .unwrap();
        f.write_all(&[0xAB; PAGE_SIZE / 2]).unwrap();
        drop(f);

        let b2 = PagedBackend::open(&dir).unwrap();
        assert_eq!(b2.len(), 1);
        assert_eq!(b2.durable_lsn(), Some(1));
    }

    #[test]
    fn corrupt_referenced_page_fails_stop() {
        let dir = tdir("corrupt");
        let mut b = PagedBackend::open(&dir).unwrap();
        b.insert(Key(1), rec(1));
        b.flush(1);
        drop(b);
        let mut f = OpenOptions::new()
            .write(true)
            .open(dir.join("pages.bin"))
            .unwrap();
        f.seek(SeekFrom::Start(PAGE_HEADER as u64)).unwrap();
        f.write_all(&[0xFF]).unwrap();
        drop(f);
        assert!(PagedBackend::open(&dir).is_err());
    }

    #[test]
    fn gc_floor_persists_without_dirtying_chains() {
        let dir = tdir("gc-floor");
        let mut b = PagedBackend::open(&dir).unwrap();
        b.insert(Key(1), rec(10)); // single version 0
        b.flush(1);
        // A §4.3 sweep at v3 renames Key(1)'s version 0 -> 3 in memory.
        // The backend records only the floor; the chain stays clean.
        b.get_mut(Key(1)).unwrap().gc(VersionNo(3));
        b.dirty.clear();
        b.note_gc(VersionNo(3));
        assert_eq!(b.dirty_count(), 0);
        b.note_gc(VersionNo(2)); // floors are monotone: lower is a no-op
        b.flush(2);
        drop(b);

        // Reopen re-derives the rename from the persisted floor, so the
        // cache matches the pre-crash in-memory image bit for bit.
        let b2 = PagedBackend::open(&dir).unwrap();
        assert_eq!(b2.vr_floor, VersionNo(3));
        assert_eq!(
            b2.get(Key(1)).unwrap().value_at(VersionNo(3)),
            Some(&Value::Counter(10))
        );
        assert_eq!(b2.get(Key(1)).unwrap().version_count(), 1);
    }

    #[test]
    fn allocator_reuses_lowest_free_page_first() {
        let mut a = PageAllocator::default();
        assert_eq!((a.alloc(), a.alloc(), a.alloc()), (0, 1, 2));
        a.free(1);
        a.free(0);
        assert_eq!(a.alloc(), 0, "lowest free index first");
        assert_eq!(a.alloc(), 1);
        assert_eq!(a.alloc(), 3, "then fresh growth");
        assert_eq!(a.high_water(), 4);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn allocator_rejects_double_free() {
        let mut a = PageAllocator::default();
        let p = a.alloc();
        a.free(p);
        a.free(p);
    }
}
