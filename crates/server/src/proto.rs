//! The client protocol: typed requests/responses over checksummed frames.
//!
//! Every message is one frame (see `threev_storage::wire`): a 16-byte
//! header — magic, protocol version, message kind, payload length, FNV-1a
//! payload checksum — followed by the payload. Payload field layouts reuse
//! the storage crate's `ByteWriter`/`ByteReader` codec, so the message
//! plane and the durability plane share one framing discipline.
//!
//! Decoding **degrades, never panics**: any truncation, bit flip, unknown
//! tag, oversized length, or trailing byte surfaces as a `WireError`,
//! which the server answers with a typed [`Response::Error`] before
//! closing the connection.
//!
//! A connection starts with version negotiation: the client's first frame
//! must be [`Request::Hello`] carrying the inclusive version range it
//! speaks; the server answers [`Response::HelloOk`] with the version it
//! picked (currently always [`PROTOCOL_VERSION`]) or rejects the
//! connection.

use std::io::{Read, Write};

use threev_model::{Key, TxnId, TxnPlan, Value, VersionNo};
use threev_storage::wire::{
    decode_frame_header, encode_frame, verify_frame_payload, ByteReader, ByteWriter, WireError,
    FRAME_HEADER_LEN,
};

/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Typed error codes carried by [`Response::Error`].
pub mod codes {
    /// Frame or payload failed to decode.
    pub const MALFORMED: u8 = 1;
    /// Submitted plan failed validation (kind mismatch, unknown node, …).
    pub const INVALID_PLAN: u8 = 2;
    /// A read named a key outside the schema.
    pub const UNKNOWN_KEY: u8 = 3;
    /// No overlap between client and server version ranges.
    pub const UNSUPPORTED_VERSION: u8 = 4;
    /// Out-of-order protocol use (e.g. a request before `Hello`).
    pub const PROTOCOL_VIOLATION: u8 = 5;
    /// `Stall` sent to a server that does not allow it.
    pub const STALL_DISABLED: u8 = 6;
    /// The server is draining for shutdown.
    pub const SHUTTING_DOWN: u8 = 7;
    /// The engine failed internally (should not happen; reported, not
    /// panicked).
    pub const INTERNAL: u8 = 8;
}

// Frame kinds. Requests are < 0x80, responses have the high bit set.
const K_HELLO: u8 = 0x01;
const K_SUBMIT: u8 = 0x02;
const K_READ: u8 = 0x03;
const K_STATS: u8 = 0x04;
const K_ADVANCE: u8 = 0x05;
const K_FINGERPRINT: u8 = 0x06;
const K_STALL: u8 = 0x07;
const K_SHUTDOWN: u8 = 0x08;
const K_HELLO_OK: u8 = 0x81;
const K_TXN_DONE: u8 = 0x82;
const K_READ_OK: u8 = 0x83;
const K_STATS_OK: u8 = 0x84;
const K_OK: u8 = 0x85;
const K_FINGERPRINT_OK: u8 = 0x86;
const K_BUSY: u8 = 0x87;
const K_ERROR: u8 = 0x88;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Version negotiation; must be the first frame on a connection.
    Hello {
        /// Lowest protocol version the client speaks.
        min_version: u16,
        /// Highest protocol version the client speaks.
        max_version: u16,
    },
    /// Submit one transaction plan for execution.
    Submit {
        /// The plan, validated server-side against its declared kind.
        plan: TxnPlan,
    },
    /// Read the transaction-visible values of `keys` (a read-only txn).
    Read {
        /// Keys to read; duplicates are deduplicated server-side.
        keys: Vec<Key>,
    },
    /// Fetch server counters.
    Stats,
    /// Ask every partition's coordinator for one version advancement.
    TriggerAdvancement,
    /// Fetch the committed-store fingerprint (see `Engine::fingerprint`).
    Fingerprint,
    /// Hold the engine thread for `millis` — a test/harness hook for
    /// exercising backpressure deterministically. Rejected unless the
    /// server was configured with `allow_stall`.
    Stall {
        /// Milliseconds to sleep on the engine thread.
        millis: u32,
    },
    /// Drain, checkpoint, and exit.
    Shutdown,
}

/// One answered read: mirrors `threev_analysis::ReadObservation`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadResult {
    /// Key read.
    pub key: Key,
    /// Version the store served.
    pub version: Option<VersionNo>,
    /// Value snapshot.
    pub value: Value,
}

/// Server counters reported by [`Response::StatsOk`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Update transactions accepted (committed + aborted + in flight).
    pub submitted: u64,
    /// Update transactions committed.
    pub committed: u64,
    /// Update transactions aborted.
    pub aborted: u64,
    /// Read-only transactions served.
    pub reads_served: u64,
    /// Advancement rounds triggered (each asks every partition).
    pub advancements: u64,
    /// Requests refused with [`Response::Busy`].
    pub busy_rejections: u64,
    /// Messages shuttled across partition boundaries.
    pub cross_messages: u64,
    /// Engine virtual time in microseconds.
    pub virtual_now_us: u64,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Version negotiation succeeded.
    HelloOk {
        /// The version the server picked from the client's range.
        version: u16,
    },
    /// A submitted transaction finished.
    TxnDone {
        /// Id the server assigned.
        txn: TxnId,
        /// Did the whole tree commit?
        committed: bool,
        /// Version the transaction executed in.
        version: Option<VersionNo>,
    },
    /// A read-only transaction finished.
    ReadOk {
        /// One result per (deduplicated) requested key, in request order.
        reads: Vec<ReadResult>,
    },
    /// Server counters.
    StatsOk {
        /// The counters.
        stats: ServerStats,
    },
    /// Generic success (advancement, stall, shutdown).
    Ok,
    /// Committed-store fingerprint.
    FingerprintOk {
        /// FNV-1a hash of the canonical store dump.
        hash: u64,
        /// Database nodes covered.
        nodes: u32,
        /// Total keys across all stores.
        keys: u64,
    },
    /// Backpressure: the engine queue is full; retry later.
    Busy,
    /// Typed failure; see [`codes`].
    Error {
        /// One of [`codes`].
        code: u8,
        /// Human-readable detail.
        message: String,
    },
}

impl Request {
    fn kind(&self) -> u8 {
        match self {
            Request::Hello { .. } => K_HELLO,
            Request::Submit { .. } => K_SUBMIT,
            Request::Read { .. } => K_READ,
            Request::Stats => K_STATS,
            Request::TriggerAdvancement => K_ADVANCE,
            Request::Fingerprint => K_FINGERPRINT,
            Request::Stall { .. } => K_STALL,
            Request::Shutdown => K_SHUTDOWN,
        }
    }

    /// Encode into one full frame (header + payload).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut w = ByteWriter::new();
        match self {
            Request::Hello {
                min_version,
                max_version,
            } => {
                w.u16(*min_version);
                w.u16(*max_version);
            }
            Request::Submit { plan } => w.txn_plan(plan),
            Request::Read { keys } => {
                w.len(keys.len());
                for k in keys {
                    w.key(*k);
                }
            }
            Request::Stats
            | Request::TriggerAdvancement
            | Request::Fingerprint
            | Request::Shutdown => {}
            Request::Stall { millis } => w.u32(*millis),
        }
        encode_frame(PROTOCOL_VERSION, self.kind(), &w.into_bytes())
    }

    /// Decode from a verified frame's kind + payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = ByteReader::new(payload);
        let req = match kind {
            K_HELLO => Request::Hello {
                min_version: r.u16()?,
                max_version: r.u16()?,
            },
            K_SUBMIT => Request::Submit {
                plan: r.txn_plan()?,
            },
            K_READ => {
                let n = r.read_len()?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(r.key()?);
                }
                Request::Read { keys }
            }
            K_STATS => Request::Stats,
            K_ADVANCE => Request::TriggerAdvancement,
            K_FINGERPRINT => Request::Fingerprint,
            K_STALL => Request::Stall { millis: r.u32()? },
            K_SHUTDOWN => Request::Shutdown,
            _ => return Err(WireError("unknown request kind")),
        };
        if !r.is_exhausted() {
            return Err(WireError("trailing bytes in request payload"));
        }
        Ok(req)
    }
}

impl Response {
    fn kind(&self) -> u8 {
        match self {
            Response::HelloOk { .. } => K_HELLO_OK,
            Response::TxnDone { .. } => K_TXN_DONE,
            Response::ReadOk { .. } => K_READ_OK,
            Response::StatsOk { .. } => K_STATS_OK,
            Response::Ok => K_OK,
            Response::FingerprintOk { .. } => K_FINGERPRINT_OK,
            Response::Busy => K_BUSY,
            Response::Error { .. } => K_ERROR,
        }
    }

    /// Encode into one full frame (header + payload).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut w = ByteWriter::new();
        match self {
            Response::HelloOk { version } => w.u16(*version),
            Response::TxnDone {
                txn,
                committed,
                version,
            } => {
                w.txn(*txn);
                w.u8(u8::from(*committed));
                match version {
                    None => w.u8(0),
                    Some(v) => {
                        w.u8(1);
                        w.version(*v);
                    }
                }
            }
            Response::ReadOk { reads } => {
                w.len(reads.len());
                for rr in reads {
                    w.key(rr.key);
                    match rr.version {
                        None => w.u8(0),
                        Some(v) => {
                            w.u8(1);
                            w.version(v);
                        }
                    }
                    w.value(&rr.value);
                }
            }
            Response::StatsOk { stats } => {
                w.u64(stats.submitted);
                w.u64(stats.committed);
                w.u64(stats.aborted);
                w.u64(stats.reads_served);
                w.u64(stats.advancements);
                w.u64(stats.busy_rejections);
                w.u64(stats.cross_messages);
                w.u64(stats.virtual_now_us);
            }
            Response::Ok | Response::Busy => {}
            Response::FingerprintOk { hash, nodes, keys } => {
                w.u64(*hash);
                w.u32(*nodes);
                w.u64(*keys);
            }
            Response::Error { code, message } => {
                w.u8(*code);
                w.str(message);
            }
        }
        encode_frame(PROTOCOL_VERSION, self.kind(), &w.into_bytes())
    }

    /// Decode from a verified frame's kind + payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = ByteReader::new(payload);
        let resp = match kind {
            K_HELLO_OK => Response::HelloOk { version: r.u16()? },
            K_TXN_DONE => {
                let txn = r.txn()?;
                let committed = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError("bad committed flag")),
                };
                let version = match r.u8()? {
                    0 => None,
                    1 => Some(r.version()?),
                    _ => return Err(WireError("bad version option tag")),
                };
                Response::TxnDone {
                    txn,
                    committed,
                    version,
                }
            }
            K_READ_OK => {
                let n = r.read_len()?;
                let mut reads = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = r.key()?;
                    let version = match r.u8()? {
                        0 => None,
                        1 => Some(r.version()?),
                        _ => return Err(WireError("bad version option tag")),
                    };
                    let value = r.value()?;
                    reads.push(ReadResult {
                        key,
                        version,
                        value,
                    });
                }
                Response::ReadOk { reads }
            }
            K_STATS_OK => Response::StatsOk {
                stats: ServerStats {
                    submitted: r.u64()?,
                    committed: r.u64()?,
                    aborted: r.u64()?,
                    reads_served: r.u64()?,
                    advancements: r.u64()?,
                    busy_rejections: r.u64()?,
                    cross_messages: r.u64()?,
                    virtual_now_us: r.u64()?,
                },
            },
            K_OK => Response::Ok,
            K_FINGERPRINT_OK => Response::FingerprintOk {
                hash: r.u64()?,
                nodes: r.u32()?,
                keys: r.u64()?,
            },
            K_BUSY => Response::Busy,
            K_ERROR => Response::Error {
                code: r.u8()?,
                message: r.str()?,
            },
            _ => return Err(WireError("unknown response kind")),
        };
        if !r.is_exhausted() {
            return Err(WireError("trailing bytes in response payload"));
        }
        Ok(resp)
    }
}

/// Write one already-encoded frame and flush it.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Read one frame with plain blocking semantics: `Ok(None)` on a clean
/// EOF at a frame boundary; mid-frame EOF, bad headers, and checksum
/// mismatches are `WireError`s. Used by the client library; the server
/// side layers timeouts on top (see `server::read_frame_polling`).
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut header_buf = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header_buf.len() {
        match r.read(&mut header_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Wire(WireError("connection closed mid-frame"))),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let header = decode_frame_header(&header_buf)?;
    let mut payload = vec![0u8; header.payload_len];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Wire(WireError("connection closed mid-frame"))),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    verify_frame_payload(&header, &payload)?;
    if header.version != PROTOCOL_VERSION {
        return Err(FrameError::Wire(WireError("unsupported frame version")));
    }
    Ok(Some((header.kind, payload)))
}

/// Failure while reading a frame off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The bytes arrived but do not form a valid frame.
    Wire(WireError),
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::{NodeId, SubtxnPlan, UpdateOp};

    fn plan() -> TxnPlan {
        TxnPlan::commuting(
            SubtxnPlan::new(NodeId(0))
                .update(Key(1), UpdateOp::Add(5))
                .child(
                    SubtxnPlan::new(NodeId(3))
                        .update(Key(9), UpdateOp::Append { amount: 2, tag: 7 }),
                ),
        )
    }

    fn round_trip_request(req: Request) {
        let frame = req.encode().unwrap();
        let (header, payload) = threev_storage::wire::decode_frame(&frame).unwrap();
        assert_eq!(Request::decode(header.kind, payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let frame = resp.encode().unwrap();
        let (header, payload) = threev_storage::wire::decode_frame(&frame).unwrap();
        assert_eq!(Response::decode(header.kind, payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello {
            min_version: 1,
            max_version: 3,
        });
        round_trip_request(Request::Submit { plan: plan() });
        round_trip_request(Request::Read {
            keys: vec![Key(1), Key(2), Key(u64::MAX)],
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::TriggerAdvancement);
        round_trip_request(Request::Fingerprint);
        round_trip_request(Request::Stall { millis: 250 });
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::HelloOk { version: 1 });
        round_trip_response(Response::TxnDone {
            txn: TxnId::new(42, NodeId(3)),
            committed: true,
            version: Some(VersionNo(7)),
        });
        round_trip_response(Response::TxnDone {
            txn: TxnId::new(0, NodeId(0)),
            committed: false,
            version: None,
        });
        round_trip_response(Response::ReadOk {
            reads: vec![
                ReadResult {
                    key: Key(1),
                    version: Some(VersionNo(2)),
                    value: Value::Counter(-5),
                },
                ReadResult {
                    key: Key(2),
                    version: None,
                    value: Value::Register(9),
                },
            ],
        });
        round_trip_response(Response::StatsOk {
            stats: ServerStats {
                submitted: 1,
                committed: 2,
                aborted: 3,
                reads_served: 4,
                advancements: 5,
                busy_rejections: 6,
                cross_messages: 7,
                virtual_now_us: 8,
            },
        });
        round_trip_response(Response::Ok);
        round_trip_response(Response::FingerprintOk {
            hash: u64::MAX,
            nodes: 8,
            keys: 4096,
        });
        round_trip_response(Response::Busy);
        round_trip_response(Response::Error {
            code: codes::INVALID_PLAN,
            message: "plan has no steps".to_string(),
        });
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let frame = Request::Stats.encode().unwrap();
        let (header, _) = threev_storage::wire::decode_frame(&frame).unwrap();
        assert_eq!(
            Request::decode(header.kind, &[0]),
            Err(WireError("trailing bytes in request payload"))
        );
        assert_eq!(
            Response::decode(K_OK, &[0]),
            Err(WireError("trailing bytes in response payload"))
        );
    }

    #[test]
    fn unknown_kinds_rejected() {
        assert!(Request::decode(0x7F, &[]).is_err());
        assert!(Response::decode(0xFF, &[]).is_err());
    }

    #[test]
    fn read_frame_round_trips_over_a_cursor() {
        let frame = Request::Fingerprint.encode().unwrap();
        let mut cursor = std::io::Cursor::new(frame);
        let (kind, payload) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(
            Request::decode(kind, &payload).unwrap(),
            Request::Fingerprint
        );
        // Clean EOF at the boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn read_frame_rejects_mid_frame_eof() {
        let frame = Request::Stall { millis: 9 }.encode().unwrap();
        let mut cursor = std::io::Cursor::new(frame[..frame.len() - 1].to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Wire(WireError("connection closed mid-frame")))
        ));
    }
}
