//! The TCP server: one acceptor, a bounded worker pool, one engine thread.
//!
//! Threads and their channels:
//!
//! * the **acceptor** owns the listener and hands accepted connections to
//!   the worker pool over an MPMC channel;
//! * **workers** (fixed pool) each drive one connection at a time: framed
//!   reads with an idle deadline (half-open connections are reaped),
//!   protocol-state checks (`Hello` first), and forwarding to the engine;
//! * the **engine thread** owns the [`Engine`] and executes commands
//!   strictly one at a time — the deterministic heart of the server.
//!
//! Backpressure contract: at most `queue_capacity` commands may be queued
//! for the engine at once (admission by compare-and-swap on a shared
//! counter, decremented when the engine *dequeues* — the counter measures
//! queue occupancy, not service time). A connection that finds the queue
//! full gets a typed [`Response::Busy`] immediately and keeps its
//! connection; the client decides whether to retry. Nothing ever blocks
//! the acceptor on the engine.
//!
//! Graceful shutdown: a `Shutdown` request (or
//! [`ServerHandle::request_shutdown`]) flips the shared flag. The
//! acceptor stops accepting, workers finish their current connection,
//! and the engine drains its queue — answering stragglers with
//! `SHUTTING_DOWN` — runs one final advancement round (so paged backends
//! checkpoint their committed state), and exits.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use threev_storage::wire::{decode_frame_header, verify_frame_payload, FRAME_HEADER_LEN};

use crate::engine::{Engine, EngineError};
use crate::proto::{codes, Request, Response, PROTOCOL_VERSION};

/// How long the blocking primitives sleep between checks of the shutdown
/// flag. Bounds shutdown latency, not correctness.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Worker pool size — the number of connections served concurrently.
    pub workers: usize,
    /// Engine queue bound; requests beyond it are answered [`Response::Busy`].
    pub queue_capacity: usize,
    /// Reap a connection that sends no byte for this long.
    pub idle_timeout: Duration,
    /// Honour [`Request::Stall`] (tests/harness only); otherwise it is
    /// refused with [`codes::STALL_DISABLED`].
    pub allow_stall: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            idle_timeout: Duration::from_secs(30),
            allow_stall: false,
        }
    }
}

/// One queued unit of engine work.
struct Command {
    request: Request,
    reply: mpsc::Sender<Response>,
}

/// A running server: the bound address plus the thread handles.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to drain and exit (same effect as a `Shutdown`
    /// request over the wire).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Wait for every server thread to exit.
    pub fn join(self) -> std::io::Result<()> {
        for t in self.threads {
            if t.join().is_err() {
                return Err(std::io::Error::other("server thread panicked"));
            }
        }
        Ok(())
    }
}

/// Start serving `engine` per `cfg`. Returns once the listener is bound;
/// the server runs on background threads until shut down.
pub fn serve(engine: Engine, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let inflight = Arc::new(AtomicUsize::new(0));
    let busy_rejections = Arc::new(AtomicU64::new(0));
    let (cmd_tx, cmd_rx) = unbounded::<Command>();
    let (conn_tx, conn_rx) = unbounded::<TcpStream>();

    let mut threads = Vec::with_capacity(cfg.workers + 2);

    {
        let shutdown = Arc::clone(&shutdown);
        let inflight = Arc::clone(&inflight);
        let busy = Arc::clone(&busy_rejections);
        threads.push(
            std::thread::Builder::new()
                .name("threev-engine".to_string())
                .spawn(move || engine_loop(engine, cmd_rx, &inflight, &busy, &shutdown))?,
        );
    }

    for i in 0..cfg.workers.max(1) {
        let conn_rx = conn_rx.clone();
        let cmd_tx = cmd_tx.clone();
        let shutdown = Arc::clone(&shutdown);
        let inflight = Arc::clone(&inflight);
        let busy = Arc::clone(&busy_rejections);
        let cfg = cfg.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("threev-worker-{i}"))
                .spawn(move || worker_loop(&conn_rx, &cmd_tx, &inflight, &busy, &shutdown, &cfg))?,
        );
    }

    {
        let shutdown = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name("threev-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &conn_tx, &shutdown))?,
        );
    }

    Ok(ServerHandle {
        addr,
        shutdown,
        threads,
    })
}

fn acceptor_loop(listener: &TcpListener, conn_tx: &Sender<TcpStream>, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return; // dropping conn_tx lets idle workers drain out
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // A dead worker pool means shutdown already started.
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_TICK);
            }
            // Transient accept errors (e.g. the peer reset before we got
            // to it) are not fatal to the listener.
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

fn worker_loop(
    conn_rx: &Receiver<TcpStream>,
    cmd_tx: &Sender<Command>,
    inflight: &AtomicUsize,
    busy: &AtomicU64,
    shutdown: &AtomicBool,
    cfg: &ServerConfig,
) {
    loop {
        match conn_rx.recv_timeout(POLL_TICK) {
            Ok(stream) => handle_conn(stream, cmd_tx, inflight, busy, shutdown, cfg),
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Outcome of one framed read attempt on a connection.
enum ConnRead {
    Frame(u8, Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// No byte for `idle_timeout` — a half-open or abandoned connection.
    Idle,
    /// The server is shutting down.
    Shutdown,
    /// The bytes do not form a valid frame.
    Malformed(&'static str),
    /// Transport failure (reset, broken pipe, …).
    Io,
}

/// Read one frame with 100ms poll ticks so the idle deadline and the
/// shutdown flag are both honoured even while blocked. Receiving any byte
/// resets the idle deadline; a connection that goes quiet *mid-frame* is
/// reaped just like one that never speaks.
fn read_frame_polling(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    idle_timeout: Duration,
) -> ConnRead {
    let mut buf: Vec<u8> = Vec::with_capacity(FRAME_HEADER_LEN);
    let mut need = FRAME_HEADER_LEN;
    let mut header = None;
    let mut last_byte = Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return ConnRead::Shutdown;
        }
        if last_byte.elapsed() >= idle_timeout {
            return ConnRead::Idle;
        }
        let start = buf.len();
        buf.resize(need, 0);
        match std::io::Read::read(stream, &mut buf[start..]) {
            Ok(0) => {
                return if start == 0 && header.is_none() {
                    ConnRead::Eof
                } else {
                    ConnRead::Malformed("connection closed mid-frame")
                };
            }
            Ok(n) => {
                buf.truncate(start + n);
                last_byte = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                buf.truncate(start);
                continue;
            }
            Err(_) => return ConnRead::Io,
        }
        if buf.len() < need {
            continue;
        }
        match header {
            None => match decode_frame_header(&buf) {
                Ok(h) => {
                    if h.version != PROTOCOL_VERSION {
                        return ConnRead::Malformed("unsupported frame version");
                    }
                    if h.payload_len == 0 {
                        return match verify_frame_payload(&h, &[]) {
                            Ok(()) => ConnRead::Frame(h.kind, Vec::new()),
                            Err(e) => ConnRead::Malformed(e.0),
                        };
                    }
                    need = h.payload_len;
                    header = Some(h);
                    buf.clear();
                }
                Err(e) => return ConnRead::Malformed(e.0),
            },
            Some(ref h) => {
                return match verify_frame_payload(h, &buf) {
                    Ok(()) => ConnRead::Frame(h.kind, buf),
                    Err(e) => ConnRead::Malformed(e.0),
                };
            }
        }
    }
}

/// Encode and send one response; `false` means the connection is gone.
fn send_response(stream: &mut TcpStream, resp: &Response) -> bool {
    let frame = match resp.encode() {
        Ok(f) => f,
        Err(e) => {
            // Response too large to frame — degrade to a typed error.
            let fallback = Response::Error {
                code: codes::INTERNAL,
                message: format!("response unencodable: {e}"),
            };
            match fallback.encode() {
                Ok(f) => f,
                Err(_) => return false,
            }
        }
    };
    stream.write_all(&frame).is_ok() && stream.flush().is_ok()
}

/// Close after a terminal error response without losing it: an abrupt
/// close with unread bytes in the kernel buffer turns into a TCP RST
/// that can discard the response in flight. Send FIN first, then drain
/// briefly until the peer closes.
fn close_gracefully(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 1024];
    for _ in 0..20 {
        match std::io::Read::read(stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn handle_conn(
    mut stream: TcpStream,
    cmd_tx: &Sender<Command>,
    inflight: &AtomicUsize,
    busy: &AtomicU64,
    shutdown: &AtomicBool,
    cfg: &ServerConfig,
) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut greeted = false;
    loop {
        let (kind, payload) = match read_frame_polling(&mut stream, shutdown, cfg.idle_timeout) {
            ConnRead::Frame(k, p) => (k, p),
            ConnRead::Eof | ConnRead::Idle | ConnRead::Io => return,
            ConnRead::Shutdown => {
                let _ = send_response(
                    &mut stream,
                    &Response::Error {
                        code: codes::SHUTTING_DOWN,
                        message: "server is draining".to_string(),
                    },
                );
                close_gracefully(&mut stream);
                return;
            }
            ConnRead::Malformed(msg) => {
                let _ = send_response(
                    &mut stream,
                    &Response::Error {
                        code: codes::MALFORMED,
                        message: msg.to_string(),
                    },
                );
                close_gracefully(&mut stream);
                return;
            }
        };
        let request = match Request::decode(kind, &payload) {
            Ok(r) => r,
            Err(e) => {
                let _ = send_response(
                    &mut stream,
                    &Response::Error {
                        code: codes::MALFORMED,
                        message: e.0.to_string(),
                    },
                );
                close_gracefully(&mut stream);
                return;
            }
        };
        let response = match (&request, greeted) {
            (
                Request::Hello {
                    min_version,
                    max_version,
                },
                false,
            ) => {
                if *min_version <= PROTOCOL_VERSION && PROTOCOL_VERSION <= *max_version {
                    greeted = true;
                    Response::HelloOk {
                        version: PROTOCOL_VERSION,
                    }
                } else {
                    let resp = Response::Error {
                        code: codes::UNSUPPORTED_VERSION,
                        message: format!(
                            "server speaks only version {PROTOCOL_VERSION}, \
                             client offered [{min_version}, {max_version}]"
                        ),
                    };
                    let _ = send_response(&mut stream, &resp);
                    close_gracefully(&mut stream);
                    return;
                }
            }
            (Request::Hello { .. }, true) | (_, false) => {
                let resp = Response::Error {
                    code: codes::PROTOCOL_VIOLATION,
                    message: "a connection starts with exactly one Hello".to_string(),
                };
                let _ = send_response(&mut stream, &resp);
                close_gracefully(&mut stream);
                return;
            }
            (Request::Stall { .. }, true) if !cfg.allow_stall => Response::Error {
                code: codes::STALL_DISABLED,
                message: "this server does not allow Stall".to_string(),
            },
            (_, true) => dispatch(&request, cmd_tx, inflight, busy, shutdown, cfg),
        };
        if !send_response(&mut stream, &response) {
            return;
        }
        if matches!(response, Response::Error { code, .. } if code == codes::SHUTTING_DOWN) {
            close_gracefully(&mut stream);
            return;
        }
    }
}

/// Admission control + forwarding to the engine thread.
fn dispatch(
    request: &Request,
    cmd_tx: &Sender<Command>,
    inflight: &AtomicUsize,
    busy: &AtomicU64,
    shutdown: &AtomicBool,
    cfg: &ServerConfig,
) -> Response {
    if shutdown.load(Ordering::SeqCst) {
        return Response::Error {
            code: codes::SHUTTING_DOWN,
            message: "server is draining".to_string(),
        };
    }
    // Reserve a queue slot: CAS keeps occupancy at or below the bound even
    // under concurrent admissions.
    loop {
        let cur = inflight.load(Ordering::SeqCst);
        if cur >= cfg.queue_capacity {
            busy.fetch_add(1, Ordering::SeqCst);
            return Response::Busy;
        }
        if inflight
            .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            break;
        }
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    if cmd_tx
        .send(Command {
            request: request.clone(),
            reply: reply_tx,
        })
        .is_err()
    {
        inflight.fetch_sub(1, Ordering::SeqCst);
        return Response::Error {
            code: codes::SHUTTING_DOWN,
            message: "engine has exited".to_string(),
        };
    }
    match reply_rx.recv() {
        Ok(resp) => resp,
        Err(_) => Response::Error {
            code: codes::SHUTTING_DOWN,
            message: "engine dropped the request during shutdown".to_string(),
        },
    }
}

fn engine_loop(
    mut engine: Engine,
    cmd_rx: Receiver<Command>,
    inflight: &AtomicUsize,
    busy: &AtomicU64,
    shutdown: &AtomicBool,
) {
    loop {
        match cmd_rx.recv_timeout(POLL_TICK) {
            Ok(cmd) => {
                // The slot frees at dequeue: the bound is queue occupancy.
                inflight.fetch_sub(1, Ordering::SeqCst);
                let stop = matches!(cmd.request, Request::Shutdown);
                let resp = execute(&mut engine, &cmd.request, busy, shutdown);
                let _ = cmd.reply.send(resp);
                if stop {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    shutdown.store(true, Ordering::SeqCst);
    // Drain stragglers that were admitted before the flag flipped.
    while let Ok(cmd) = cmd_rx.try_recv() {
        inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = cmd.reply.send(Response::Error {
            code: codes::SHUTTING_DOWN,
            message: "server is draining".to_string(),
        });
    }
    // Final advancement round: paged backends checkpoint the committed
    // state they would otherwise only flush on the next advancement.
    engine.trigger_advancement();
}

fn execute(
    engine: &mut Engine,
    request: &Request,
    busy: &AtomicU64,
    shutdown: &AtomicBool,
) -> Response {
    match request {
        // Hello and the Stall gate are handled at the connection layer;
        // reaching here means a worker bug, reported as a violation.
        Request::Hello { .. } => Response::Error {
            code: codes::PROTOCOL_VIOLATION,
            message: "Hello is a connection-layer request".to_string(),
        },
        Request::Submit { plan } => match engine.submit(plan) {
            Ok(out) => Response::TxnDone {
                txn: out.txn,
                committed: out.committed,
                version: out.version,
            },
            Err(e) => engine_error(&e),
        },
        Request::Read { keys } => match engine.read(keys) {
            Ok(reads) => Response::ReadOk { reads },
            Err(e) => engine_error(&e),
        },
        Request::Stats => {
            let mut stats = engine.stats();
            stats.busy_rejections = busy.load(Ordering::SeqCst);
            Response::StatsOk { stats }
        }
        Request::TriggerAdvancement => {
            engine.trigger_advancement();
            Response::Ok
        }
        Request::Fingerprint => {
            let (hash, nodes, keys) = engine.fingerprint_hash();
            Response::FingerprintOk { hash, nodes, keys }
        }
        Request::Stall { millis } => {
            std::thread::sleep(Duration::from_millis(u64::from(*millis)));
            Response::Ok
        }
        Request::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            Response::Ok
        }
    }
}

fn engine_error(e: &EngineError) -> Response {
    let code = match e {
        EngineError::Submit(_) => codes::INVALID_PLAN,
        EngineError::UnknownKey(_) => codes::UNKNOWN_KEY,
        EngineError::RecordMissing(_) => codes::INTERNAL,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}
