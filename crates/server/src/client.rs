//! The blocking client library.
//!
//! One [`Client`] wraps one TCP connection. `connect` performs the
//! `Hello` negotiation; every method then sends one request frame and
//! blocks for its response frame. The server processes each connection's
//! requests in order, so a single `Client` behaves like a synchronous
//! remote handle on the engine; open more connections for concurrency.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use threev_model::{Key, TxnId, TxnPlan, VersionNo};

use crate::proto::{
    read_frame, write_frame, FrameError, ReadResult, Request, Response, ServerStats,
    PROTOCOL_VERSION,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, send, or receive).
    Io(std::io::Error),
    /// The server's bytes do not form a valid frame/response.
    Wire(threev_storage::wire::WireError),
    /// The server refused the request under backpressure; retry later.
    Busy,
    /// The server answered with a typed error (see `proto::codes`).
    Server {
        /// One of `proto::codes`.
        code: u8,
        /// Server-side detail.
        message: String,
    },
    /// The server answered with a response of the wrong kind.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o failed: {e}"),
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Busy => write!(f, "server is busy"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<threev_storage::wire::WireError> for ClientError {
    fn from(e: threev_storage::wire::WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// The result of one submitted transaction, client-side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Id the server assigned.
    pub txn: TxnId,
    /// Did the whole tree commit?
    pub committed: bool,
    /// Version the transaction executed in.
    pub version: Option<VersionNo>,
}

/// A negotiated connection to a `threev-server`.
pub struct Client {
    stream: TcpStream,
    version: u16,
}

impl Client {
    /// Connect and negotiate the protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client { stream, version: 0 };
        let resp = client.round_trip(&Request::Hello {
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION,
        })?;
        match resp {
            Response::HelloOk { version } => {
                client.version = version;
                Ok(client)
            }
            other => Err(unexpected(other, "HelloOk")),
        }
    }

    /// The negotiated protocol version.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Bound how long any single call may block on the socket.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Submit one transaction plan and wait for its outcome.
    pub fn submit(&mut self, plan: &TxnPlan) -> Result<SubmitOutcome, ClientError> {
        match self.round_trip(&Request::Submit { plan: plan.clone() })? {
            Response::TxnDone {
                txn,
                committed,
                version,
            } => Ok(SubmitOutcome {
                txn,
                committed,
                version,
            }),
            other => Err(unexpected(other, "TxnDone")),
        }
    }

    /// Read the transaction-visible values of `keys`.
    pub fn read(&mut self, keys: &[Key]) -> Result<Vec<ReadResult>, ClientError> {
        match self.round_trip(&Request::Read {
            keys: keys.to_vec(),
        })? {
            Response::ReadOk { reads } => Ok(reads),
            other => Err(unexpected(other, "ReadOk")),
        }
    }

    /// Fetch server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::StatsOk { stats } => Ok(stats),
            other => Err(unexpected(other, "StatsOk")),
        }
    }

    /// Ask for one advancement round.
    pub fn trigger_advancement(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::TriggerAdvancement)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, "Ok")),
        }
    }

    /// Fetch the committed-store fingerprint `(hash, nodes, keys)`.
    pub fn fingerprint(&mut self) -> Result<(u64, u32, u64), ClientError> {
        match self.round_trip(&Request::Fingerprint)? {
            Response::FingerprintOk { hash, nodes, keys } => Ok((hash, nodes, keys)),
            other => Err(unexpected(other, "FingerprintOk")),
        }
    }

    /// Hold the engine thread for `millis` (test servers only).
    pub fn stall(&mut self, millis: u32) -> Result<(), ClientError> {
        match self.round_trip(&Request::Stall { millis })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, "Ok")),
        }
    }

    /// Ask the server to drain, checkpoint, and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other, "Ok")),
        }
    }

    /// Send one request frame and read its response frame.
    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let frame = request.encode()?;
        write_frame(&mut self.stream, &frame)?;
        match read_frame(&mut self.stream)? {
            Some((kind, payload)) => Ok(Response::decode(kind, &payload)?),
            None => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }
}

fn unexpected(resp: Response, wanted: &'static str) -> ClientError {
    match resp {
        Response::Busy => ClientError::Busy,
        Response::Error { code, message } => ClientError::Server { code, message },
        _ => ClientError::Protocol(wanted),
    }
}
