//! The command-driven engine behind the server.
//!
//! An [`Engine`] owns a [`ShardedCluster`] and executes one command at a
//! time: a submission is injected at the current virtual instant and the
//! cluster runs to quiescence before the outcome is reported. That makes
//! the server's protocol-visible behaviour a pure function of the command
//! sequence — the socket layer may race over *which* command arrives next,
//! but never over what a given command does. The loopback e2e test leans
//! on this: a workload replayed through real sockets must leave the same
//! committed store as the in-process driver at the same seed.
//!
//! Version advancement runs on a commit cadence (`advance_every`): after
//! every N committed updates the engine asks every partition's coordinator
//! for one advancement and drains it, so read-only transactions see fresh
//! versions without any wall-clock timers inside the deterministic core.

use std::collections::BTreeMap;

use threev_model::{Key, NodeId, Schema, SubtxnPlan, TxnId, TxnKind, TxnPlan, VersionNo};
use threev_shard::{ShardedCluster, ShardedConfig, SubmitError};
use threev_sim::SimTime;

use crate::proto::{ReadResult, ServerStats};
use threev_analysis::TxnStatus;
use threev_model::PartitionId;

/// Why the engine refused or failed a command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The cluster rejected the plan before execution.
    Submit(SubmitError),
    /// A read named a key the schema does not declare.
    UnknownKey(Key),
    /// The cluster ran to quiescence but the transaction's record is
    /// missing or unfinished — an engine invariant violation, reported
    /// (never panicked) so the server can answer with a typed error.
    RecordMissing(TxnId),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Submit(e) => write!(f, "{e}"),
            EngineError::UnknownKey(k) => write!(f, "key {k} is not in the schema"),
            EngineError::RecordMissing(t) => {
                write!(f, "transaction {t:?} left no finished record")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The reported outcome of one submitted transaction.
#[derive(Clone, Debug)]
pub struct TxnOutcome {
    /// Id the engine assigned.
    pub txn: TxnId,
    /// Did the whole tree commit?
    pub committed: bool,
    /// Version the transaction executed in.
    pub version: Option<VersionNo>,
    /// Reads observed during execution.
    pub reads: Vec<ReadResult>,
}

/// The sharded cluster plus the submission/advancement bookkeeping the
/// server needs.
pub struct Engine {
    cluster: ShardedCluster,
    schema: Schema,
    next_seq: u64,
    advance_every: u64,
    since_advance: u64,
    submitted: u64,
    committed: u64,
    aborted: u64,
    reads_served: u64,
    advancements: u64,
}

impl Engine {
    /// Build an engine over `schema` with no scheduled arrivals: every
    /// transaction enters through [`Engine::submit`]. `advance_every` is
    /// the commit cadence of automatic version advancement (0 disables
    /// it; advancement then only happens via
    /// [`Engine::trigger_advancement`]).
    pub fn new(schema: &Schema, cfg: ShardedConfig, advance_every: u64) -> Self {
        let partitions = usize::from(cfg.topology.n_partitions());
        let cluster = ShardedCluster::new(schema, cfg, vec![Vec::new(); partitions]);
        Engine {
            cluster,
            schema: schema.clone(),
            next_seq: 0,
            advance_every,
            since_advance: 0,
            submitted: 0,
            committed: 0,
            aborted: 0,
            reads_served: 0,
            advancements: 0,
        }
    }

    /// The schema this engine serves.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Execute one plan to completion and report its outcome.
    pub fn submit(&mut self, plan: &TxnPlan) -> Result<TxnOutcome, EngineError> {
        let txn = self
            .cluster
            .submit_external(self.next_seq, plan, None)
            .map_err(EngineError::Submit)?;
        self.next_seq += 1;
        self.submitted += 1;
        self.cluster.run(SimTime::MAX);
        let outcome = self.outcome_of(plan.root.node, txn)?;
        if outcome.committed {
            self.committed += 1;
            if plan.kind != TxnKind::ReadOnly && self.advance_every > 0 {
                self.since_advance += 1;
                if self.since_advance >= self.advance_every {
                    self.trigger_advancement();
                }
            }
        } else {
            self.aborted += 1;
        }
        Ok(outcome)
    }

    /// Read the transaction-visible values of `keys` through a read-only
    /// transaction tree spanning every home node. Duplicates are served
    /// once; results come back in first-occurrence order.
    pub fn read(&mut self, keys: &[Key]) -> Result<Vec<ReadResult>, EngineError> {
        let mut unique: Vec<Key> = Vec::new();
        let mut by_node: BTreeMap<NodeId, Vec<Key>> = BTreeMap::new();
        for &k in keys {
            if unique.contains(&k) {
                continue;
            }
            let home = self.schema.home(k).ok_or(EngineError::UnknownKey(k))?;
            unique.push(k);
            by_node.entry(home).or_default().push(k);
        }
        if unique.is_empty() {
            return Ok(Vec::new());
        }
        // Root on the first key's home node; every other node becomes a
        // child subtransaction (order fixed by the BTreeMap for
        // determinism).
        let root_node = match self.schema.home(unique[0]) {
            Some(n) => n,
            None => return Err(EngineError::UnknownKey(unique[0])),
        };
        let mut root = SubtxnPlan::new(root_node);
        if let Some(ks) = by_node.remove(&root_node) {
            for k in ks {
                root = root.read(k);
            }
        }
        for (node, ks) in by_node {
            let mut sub = SubtxnPlan::new(node);
            for k in ks {
                sub = sub.read(k);
            }
            root = root.child(sub);
        }
        let outcome = self.submit(&TxnPlan::read_only(root))?;
        self.reads_served += 1;
        // Reorder the observations to first-occurrence request order.
        let mut out = Vec::with_capacity(unique.len());
        for k in unique {
            match outcome.reads.iter().find(|r| r.key == k) {
                Some(r) => out.push(r.clone()),
                None => return Err(EngineError::RecordMissing(outcome.txn)),
            }
        }
        Ok(out)
    }

    /// One advancement round: ask every partition's coordinator and run
    /// the cluster until the round completes.
    pub fn trigger_advancement(&mut self) {
        self.cluster.trigger_advancement_all();
        self.cluster.run(SimTime::MAX);
        self.since_advance = 0;
        self.advancements += 1;
    }

    /// Server counters. `busy_rejections` belongs to the socket layer and
    /// is filled in there; the engine reports it as zero.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.submitted,
            committed: self.committed,
            aborted: self.aborted,
            reads_served: self.reads_served,
            advancements: self.advancements,
            busy_rejections: 0,
            cross_messages: self.cluster.cross_messages(),
            virtual_now_us: self.cluster.now().0,
        }
    }

    /// Canonical dump of every node's committed store: `vu`/`vr` plus the
    /// full per-key version layouts, in global node order. Two engines
    /// that executed equivalent histories produce byte-identical dumps.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for id in self.cluster.node_ids() {
            let n = self.cluster.node(id);
            let _ = writeln!(out, "node {id:?} vu={:?} vr={:?}", n.vu(), n.vr());
            let mut keys: Vec<Key> = n.store().keys().collect();
            keys.sort_unstable();
            for k in keys {
                let _ = writeln!(out, "  {k:?} => {:?}", n.store().layout(k));
            }
        }
        out
    }

    /// `(fnv1a64(fingerprint), node count, total keys)` — the compact form
    /// shipped over the wire.
    pub fn fingerprint_hash(&self) -> (u64, u32, u64) {
        let dump = self.fingerprint();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in dump.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let ids = self.cluster.node_ids();
        let keys: u64 = ids
            .iter()
            .map(|&id| self.cluster.node(id).store().keys().count() as u64)
            .sum();
        (hash, ids.len() as u32, keys)
    }

    /// Direct access to the cluster (tests and the in-process driver).
    pub fn cluster(&self) -> &ShardedCluster {
        &self.cluster
    }

    fn outcome_of(&self, root: NodeId, txn: TxnId) -> Result<TxnOutcome, EngineError> {
        let p = self.cluster.topology().partition_of(root);
        let record = self
            .cluster
            .partition_records(p)
            .iter()
            .rev()
            .find(|r| r.id == txn)
            .ok_or(EngineError::RecordMissing(txn))?;
        if record.status == TxnStatus::InFlight {
            return Err(EngineError::RecordMissing(txn));
        }
        Ok(TxnOutcome {
            txn,
            committed: record.status == TxnStatus::Committed,
            version: record.version,
            reads: record
                .reads
                .iter()
                .map(|o| ReadResult {
                    key: o.key,
                    version: o.version,
                    value: o.value.clone(),
                })
                .collect(),
        })
    }

    /// All partition ids, for callers iterating engine state.
    pub fn partitions(&self) -> Vec<PartitionId> {
        (0..self.cluster.n_partitions()).map(PartitionId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_model::{KeyDecl, Topology, UpdateOp};

    fn schema(topo: Topology) -> Schema {
        let mut decls = Vec::new();
        for p in 0..topo.n_partitions() {
            for n in topo.nodes(PartitionId(p)) {
                decls.push(KeyDecl::counter(Key(u64::from(n.0)), n, 0));
                decls.push(KeyDecl::journal(Key(1_000 + u64::from(n.0)), n));
            }
        }
        Schema::new(decls)
    }

    fn engine(partitions: u16, nodes: u16) -> Engine {
        let cfg = ShardedConfig::new(partitions, nodes).seed(0xE1);
        let schema = schema(cfg.topology);
        Engine::new(&schema, cfg, 4)
    }

    #[test]
    fn submit_commits_and_reads_see_it_after_advancement() {
        let mut e = engine(2, 2);
        let topo = e.cluster().topology();
        let a = topo.nodes(PartitionId(0))[0];
        let b = topo.nodes(PartitionId(1))[1];
        let plan = TxnPlan::commuting(
            SubtxnPlan::new(a)
                .update(Key(u64::from(a.0)), UpdateOp::Add(5))
                .child(SubtxnPlan::new(b).update(Key(u64::from(b.0)), UpdateOp::Add(7))),
        );
        let out = e.submit(&plan).unwrap();
        assert!(out.committed);
        e.trigger_advancement();
        let reads = e.read(&[Key(u64::from(a.0)), Key(u64::from(b.0))]).unwrap();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].value.as_counter(), Some(5));
        assert_eq!(reads[1].value.as_counter(), Some(7));
        let stats = e.stats();
        assert_eq!(stats.submitted, 2); // update + read-only tree
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.reads_served, 1);
        assert!(stats.cross_messages > 0);
    }

    #[test]
    fn unknown_key_and_invalid_plan_are_reported() {
        let mut e = engine(1, 2);
        assert_eq!(
            e.read(&[Key(999_999)]),
            Err(EngineError::UnknownKey(Key(999_999)))
        );
        let empty = TxnPlan::commuting(SubtxnPlan::new(NodeId(0)));
        assert!(matches!(e.submit(&empty), Err(EngineError::Submit(_))));
        // Errors consume no sequence numbers or counters.
        assert_eq!(e.stats().submitted, 0);
    }

    #[test]
    fn duplicate_reads_are_served_once_in_request_order() {
        let mut e = engine(1, 2);
        let n0 = NodeId(0);
        let plan = TxnPlan::commuting(SubtxnPlan::new(n0).update(Key(0), UpdateOp::Add(3)));
        assert!(e.submit(&plan).unwrap().committed);
        e.trigger_advancement();
        let reads = e.read(&[Key(1), Key(0), Key(1)]).unwrap();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].key, Key(1));
        assert_eq!(reads[1].key, Key(0));
        assert_eq!(reads[1].value.as_counter(), Some(3));
    }

    #[test]
    fn advancement_cadence_fires_every_n_commits() {
        let mut e = engine(1, 1);
        let plan = TxnPlan::commuting(SubtxnPlan::new(NodeId(0)).update(Key(0), UpdateOp::Add(1)));
        for _ in 0..8 {
            assert!(e.submit(&plan).unwrap().committed);
        }
        // advance_every = 4 → two automatic rounds.
        assert_eq!(e.stats().advancements, 2);
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let build = || {
            let mut e = engine(2, 2);
            let topo = e.cluster().topology();
            let n = topo.nodes(PartitionId(0))[0];
            let plan = TxnPlan::commuting(
                SubtxnPlan::new(n).update(Key(u64::from(n.0)), UpdateOp::Add(2)),
            );
            e.submit(&plan).unwrap();
            e.trigger_advancement();
            e.fingerprint_hash()
        };
        assert_eq!(build(), build());
        let (_, nodes, keys) = build();
        assert_eq!(nodes, 4);
        assert!(keys > 0);
    }
}
