//! `threev-load` — open-loop load harness for `threev-server`.
//!
//! Default mode spawns a fresh in-process server per measured rate,
//! calibrates the engine's sustained capacity, then measures two
//! Poisson rates — one comfortably below saturation, one past it — and
//! writes the latency/throughput report to `BENCH_server.json`. Point it
//! at an already-running server with `--addr` (the server must have been
//! started with the same `--partitions`/`--nodes`/`--seed` so the schemas
//! match); external-server runs print the report to stdout instead of
//! writing the bench file.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::exit;

use threev_bench::report::{write_bench_report, JsonObject, JsonValue};
use threev_server::load::{run_open_loop, schedule, LoadConfig, LoadReport};
use threev_server::{serve, Client, Engine, ServerConfig};
use threev_shard::ShardedConfig;
use threev_sim::SimDuration;

const USAGE: &str = "usage: threev-load [--addr HOST:PORT] [--partitions P] [--nodes N] \
                     [--connections C] [--duration-ms D] [--seed S] [--rates R1,R2,...] \
                     [--no-report]";

struct Args {
    addr: Option<String>,
    partitions: u16,
    nodes: u16,
    connections: usize,
    duration_ms: u64,
    seed: u64,
    rates: Option<Vec<f64>>,
    write_report: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        partitions: 4,
        nodes: 2,
        connections: 8,
        duration_ms: 2_000,
        seed: 42,
        rates: None,
        write_report: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(val("--addr")?),
            "--partitions" => args.partitions = parse(&val("--partitions")?, "--partitions")?,
            "--nodes" => args.nodes = parse(&val("--nodes")?, "--nodes")?,
            "--connections" => args.connections = parse(&val("--connections")?, "--connections")?,
            "--duration-ms" => args.duration_ms = parse(&val("--duration-ms")?, "--duration-ms")?,
            "--seed" => args.seed = parse(&val("--seed")?, "--seed")?,
            "--rates" => {
                let raw = val("--rates")?;
                let mut rates = Vec::new();
                for part in raw.split(',') {
                    rates.push(parse(part, "--rates")?);
                }
                args.rates = Some(rates);
            }
            "--no-report" => args.write_report = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.partitions == 0 || args.nodes == 0 {
        return Err("--partitions and --nodes must be positive".to_string());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{name}={raw:?} is not a valid value\n{USAGE}"))
}

fn load_config(args: &Args, rate_tps: f64, duration: SimDuration) -> LoadConfig {
    LoadConfig {
        partitions: args.partitions,
        nodes_per_partition: args.nodes,
        rate_tps,
        duration,
        read_pct: 20,
        seed: args.seed,
        connections: args.connections,
    }
}

/// Run one rate: against `--addr` if given, else against a fresh
/// in-process server that is shut down (drain + checkpoint) afterwards.
fn run_rate(args: &Args, rate_tps: f64, duration: SimDuration) -> Result<LoadReport, String> {
    let cfg = load_config(args, rate_tps, duration);
    let hospital = cfg.hospital();
    let jobs = schedule(&hospital);
    if let Some(addr) = &args.addr {
        let addr = resolve(addr)?;
        return run_open_loop(addr, jobs, cfg.connections).map_err(|e| e.to_string());
    }
    let engine = Engine::new(
        &hospital.schema(),
        ShardedConfig::new(args.partitions, args.nodes)
            .seed(args.seed)
            .backend(threev::testutil::backend_from_env("load")),
        32,
    );
    // Workers each own one connection for its lifetime, so the pool must
    // be at least as wide as the harness's connection fan-out — otherwise
    // surplus lanes starve until a served lane closes and their whole
    // backlog lands at once, poisoning the tail percentiles.
    let server_cfg = ServerConfig {
        workers: cfg.connections.max(1),
        ..ServerConfig::default()
    };
    let handle = serve(engine, server_cfg).map_err(|e| format!("bind failed: {e}"))?;
    let addr = handle.addr();
    let result = run_open_loop(addr, jobs, cfg.connections).map_err(|e| e.to_string());
    match Client::connect(addr).and_then(|mut c| c.shutdown()) {
        Ok(()) => {}
        Err(e) => eprintln!("threev-load: shutdown request failed: {e}"),
    }
    if let Err(e) = handle.join() {
        eprintln!("threev-load: server join failed: {e}");
    }
    result
}

fn rate_section(rate_tps: f64, report: &LoadReport) -> JsonObject {
    JsonObject::new()
        .field("offered_rate_tps", JsonValue::Float(rate_tps, 1))
        .field("metrics", report.to_json())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let duration = SimDuration::from_millis(args.duration_ms);

    // Pick the two measured rates: either as given, or derived from a
    // calibration run that estimates the engine's service capacity.
    let (rates, calibrated) = match &args.rates {
        Some(r) => (r.clone(), None),
        None => {
            // A sustained overload over the *same horizon* as the
            // measured runs: service cost grows with store size (journals
            // accumulate, advancement scans more keys), so a short burst
            // badly overestimates the rate the engine holds over the full
            // window. 0.4×/1.2× of the horizon capacity lands the two
            // runs on opposite sides of the knee.
            eprintln!("threev-load: calibrating capacity with a sustained overload...");
            let cal = run_rate(&args, 30_000.0, duration)?;
            let capacity = cal.committed_per_sec.max(50.0);
            eprintln!("threev-load: sustained capacity ~{capacity:.0} committed/s");
            (vec![0.4 * capacity, 1.2 * capacity], Some(capacity))
        }
    };

    let mut report = JsonObject::new().field(
        "config",
        JsonObject::new()
            .field("partitions", args.partitions)
            .field("nodes_per_partition", args.nodes)
            .field("connections", args.connections)
            .field("duration_ms", args.duration_ms)
            .field("seed", args.seed)
            .field("workload", "hospital (20% read-only, zipf 0.9)"),
    );
    if let Some(capacity) = calibrated {
        report = report.field(
            "calibration",
            JsonObject::new().field("sustained_committed_per_sec", JsonValue::Float(capacity, 1)),
        );
    }
    for (i, &rate) in rates.iter().enumerate() {
        eprintln!(
            "threev-load: measuring {rate:.0} tps for {}ms...",
            args.duration_ms
        );
        let r = run_rate(&args, rate, duration)?;
        eprintln!(
            "threev-load:   committed/s={:.1} p50={}us p99={}us p999={}us busy={}",
            r.committed_per_sec, r.p50_us, r.p99_us, r.p999_us, r.busy
        );
        let label = match (calibrated.is_some(), i) {
            (true, 0) => "below_saturation".to_string(),
            (true, 1) => "at_saturation".to_string(),
            _ => format!("rate_{i}"),
        };
        report = report.field(label, rate_section(rate, &r));
    }

    if args.write_report && args.addr.is_none() {
        // lint-allow(panic-hygiene): write_bench_report panics if the report
        // file cannot be written — correct for a CLI harness whose entire
        // output is that file; a silent failure would "pass" with no data.
        write_bench_report("server", &report); // prints the path it wrote
    } else {
        println!("{}", report.render());
    }
    Ok(())
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("--addr {addr:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("--addr {addr:?} resolved to nothing"))
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("threev-load: {msg}");
        exit(2);
    }
}
