//! `threev-server` — serve a sharded 3V cluster over TCP.
//!
//! The served schema is the sharded hospital schema for the requested
//! topology (one department per database node), so `threev-load` pointed
//! at the same `--partitions`/`--nodes` generates matching plans.
//!
//! Shut the server down with a `Shutdown` request over the wire (e.g.
//! `threev-load` does this when it spawned the server itself).

use std::process::exit;

use threev_server::load::LoadConfig;
use threev_server::{serve, Engine, ServerConfig};
use threev_shard::ShardedConfig;
use threev_sim::SimDuration;

const USAGE: &str = "usage: threev-server [--addr HOST:PORT] [--partitions P] [--nodes N] \
                     [--workers W] [--queue Q] [--advance-every K] [--seed S] [--allow-stall]";

struct Args {
    addr: String,
    partitions: u16,
    nodes: u16,
    workers: usize,
    queue: usize,
    advance_every: u64,
    seed: u64,
    allow_stall: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:3377".to_string(),
        partitions: 4,
        nodes: 2,
        workers: 4,
        queue: 64,
        advance_every: 32,
        seed: 42,
        allow_stall: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--partitions" => args.partitions = parse(&val("--partitions")?, "--partitions")?,
            "--nodes" => args.nodes = parse(&val("--nodes")?, "--nodes")?,
            "--workers" => args.workers = parse(&val("--workers")?, "--workers")?,
            "--queue" => args.queue = parse(&val("--queue")?, "--queue")?,
            "--advance-every" => {
                args.advance_every = parse(&val("--advance-every")?, "--advance-every")?
            }
            "--seed" => args.seed = parse(&val("--seed")?, "--seed")?,
            "--allow-stall" => args.allow_stall = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.partitions == 0 || args.nodes == 0 {
        return Err("--partitions and --nodes must be positive".to_string());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{name}={raw:?} is not a valid value\n{USAGE}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    // Nominal rate/duration: only the schema is taken from this config.
    let schema = LoadConfig {
        partitions: args.partitions,
        nodes_per_partition: args.nodes,
        rate_tps: 1_000.0,
        duration: SimDuration::from_millis(1),
        read_pct: 0,
        seed: args.seed,
        connections: 1,
    }
    .hospital()
    .schema();
    let cluster_cfg = ShardedConfig::new(args.partitions, args.nodes)
        .seed(args.seed)
        .backend(threev::testutil::backend_from_env("server"));
    let engine = Engine::new(&schema, cluster_cfg, args.advance_every);
    let server_cfg = ServerConfig {
        addr: args.addr,
        workers: args.workers,
        queue_capacity: args.queue,
        allow_stall: args.allow_stall,
        ..ServerConfig::default()
    };
    let handle = serve(engine, server_cfg).map_err(|e| format!("bind failed: {e}"))?;
    println!("threev-server listening on {}", handle.addr());
    handle.join().map_err(|e| format!("server failed: {e}"))
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("threev-server: {msg}");
        exit(2);
    }
}
