//! Open-loop load generation over real sockets.
//!
//! The harness replays a [`ShardedHospital`] workload against a running
//! server: every arrival keeps the virtual timestamp the workload's
//! Poisson process assigned it (`threev-workload`'s arrival machinery),
//! and the sender fires it at `epoch + that offset` of *wall* time —
//! open-loop, so a slow server does not slow the offered load down, it
//! just grows the queueing delay. Latency is therefore measured from the
//! *scheduled* instant, not the send instant: it includes the time a
//! request spent waiting behind a saturated engine, which is exactly the
//! latency a real client would see.
//!
//! Senders round-robin the arrival list over `connections` independent
//! client connections. [`Response::Busy`] rejections are recorded, not
//! retried — the report shows how much offered load the backpressure
//! contract shed.
//!
//! [`Response::Busy`]: crate::proto::Response::Busy

use std::net::SocketAddr;
use std::time::Instant;

use threev_bench::report::{JsonObject, JsonValue};
use threev_model::{Topology, TxnPlan};
use threev_shard::ShardedHospital;
use threev_sim::SimDuration;
use threev_workload::HospitalWorkload;

use crate::client::{Client, ClientError};

/// Shape of the generated load.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Partition count of the target cluster.
    pub partitions: u16,
    /// Nodes per partition of the target cluster.
    pub nodes_per_partition: u16,
    /// Poisson arrival rate, transactions per second.
    pub rate_tps: f64,
    /// Length of the arrival window.
    pub duration: SimDuration,
    /// Percentage of read-only transactions.
    pub read_pct: u8,
    /// Workload RNG seed.
    pub seed: u64,
    /// Client connections the senders spread over.
    pub connections: usize,
}

impl LoadConfig {
    /// The hospital workload this configuration describes, sharded over
    /// the target topology (one department per database node).
    pub fn hospital(&self) -> ShardedHospital {
        let topology = Topology::new(self.partitions, self.nodes_per_partition);
        let base = HospitalWorkload {
            departments: self.partitions * self.nodes_per_partition,
            patients: 64,
            rate_tps: self.rate_tps,
            read_pct: self.read_pct,
            max_fanout: 3,
            duration: self.duration,
            zipf_s: 0.9,
            seed: self.seed,
        };
        ShardedHospital::new(base, topology)
    }
}

/// All arrivals of the sharded workload, flattened to
/// `(offset_us, plan)` and sorted by offset — the open-loop schedule.
pub fn schedule(hospital: &ShardedHospital) -> Vec<(u64, TxnPlan)> {
    let mut all: Vec<(u64, TxnPlan)> = hospital
        .arrivals()
        .into_iter()
        .flatten()
        .map(|a| (a.at.0, a.plan))
        .collect();
    all.sort_by_key(|(at, _)| *at);
    all
}

/// How one request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SampleOutcome {
    Committed,
    Aborted,
    Busy,
    Error,
}

/// One fired request.
#[derive(Clone, Copy, Debug)]
struct Sample {
    latency_us: u64,
    done_offset_us: u64,
    outcome: SampleOutcome,
}

/// Aggregate result of one open-loop run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests the schedule offered.
    pub offered: u64,
    /// Requests that got a `TxnDone` back.
    pub completed: u64,
    /// ... of which committed.
    pub committed: u64,
    /// ... of which aborted.
    pub aborted: u64,
    /// Requests shed with `Busy`.
    pub busy: u64,
    /// Transport or server errors.
    pub errors: u64,
    /// Wall-clock span from epoch to the last completion, seconds.
    pub wall_secs: f64,
    /// Committed transactions per wall-clock second.
    pub committed_per_sec: f64,
    /// Median completion latency (µs, from *scheduled* arrival).
    pub p50_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// 99.9th percentile latency (µs).
    pub p999_us: u64,
    /// Worst completion latency (µs).
    pub max_us: u64,
}

impl LoadReport {
    /// Render for `BENCH_server.json`.
    pub fn to_json(&self) -> JsonObject {
        JsonObject::new()
            .field("offered", self.offered)
            .field("completed", self.completed)
            .field("committed", self.committed)
            .field("aborted", self.aborted)
            .field("busy", self.busy)
            .field("errors", self.errors)
            .field("wall_secs", JsonValue::Float(self.wall_secs, 3))
            .field(
                "committed_per_sec",
                JsonValue::Float(self.committed_per_sec, 1),
            )
            .field("p50_us", self.p50_us)
            .field("p99_us", self.p99_us)
            .field("p999_us", self.p999_us)
            .field("max_us", self.max_us)
    }
}

/// `q`-quantile (0 < q ≤ 1) of an ascending latency list; 0 when empty.
pub fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (q * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Replay `schedule` open-loop against the server at `addr` over
/// `connections` connections, and aggregate the samples.
pub fn run_open_loop(
    addr: SocketAddr,
    schedule: Vec<(u64, TxnPlan)>,
    connections: usize,
) -> Result<LoadReport, ClientError> {
    let offered = schedule.len() as u64;
    let lanes = connections.max(1);
    let mut per_lane: Vec<Vec<(u64, TxnPlan)>> = (0..lanes).map(|_| Vec::new()).collect();
    for (i, job) in schedule.into_iter().enumerate() {
        per_lane[i % lanes].push(job);
    }
    // A short runway so every sender is connected before the first
    // arrival is due.
    let epoch = Instant::now() + std::time::Duration::from_millis(50);

    let mut handles = Vec::with_capacity(lanes);
    for jobs in per_lane {
        handles.push(std::thread::spawn(move || sender(addr, epoch, jobs)));
    }
    let mut samples: Vec<Sample> = Vec::new();
    let mut dead_lanes = 0u64;
    for h in handles {
        match h.join() {
            Ok(Ok(mut s)) => samples.append(&mut s),
            Ok(Err(_)) | Err(_) => dead_lanes += 1,
        }
    }
    if dead_lanes == lanes as u64 {
        return Err(ClientError::Protocol("every sender lane failed"));
    }

    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut busy = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut last_done = 0u64;
    for s in &samples {
        last_done = last_done.max(s.done_offset_us);
        match s.outcome {
            SampleOutcome::Committed => {
                committed += 1;
                latencies.push(s.latency_us);
            }
            SampleOutcome::Aborted => {
                aborted += 1;
                latencies.push(s.latency_us);
            }
            SampleOutcome::Busy => busy += 1,
            SampleOutcome::Error => errors += 1,
        }
    }
    latencies.sort_unstable();
    let wall_secs = last_done as f64 / 1e6;
    Ok(LoadReport {
        offered,
        completed: committed + aborted,
        committed,
        aborted,
        busy,
        errors,
        wall_secs,
        committed_per_sec: if wall_secs > 0.0 {
            committed as f64 / wall_secs
        } else {
            0.0
        },
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        max_us: latencies.last().copied().unwrap_or(0),
    })
}

/// One sender lane: fire each job at its scheduled instant.
fn sender(
    addr: SocketAddr,
    epoch: Instant,
    jobs: Vec<(u64, TxnPlan)>,
) -> Result<Vec<Sample>, ClientError> {
    let mut client = Client::connect(addr)?;
    let mut samples = Vec::with_capacity(jobs.len());
    for (offset_us, plan) in jobs {
        let target = epoch + std::time::Duration::from_micros(offset_us);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let outcome = match client.submit(&plan) {
            Ok(out) => {
                if out.committed {
                    SampleOutcome::Committed
                } else {
                    SampleOutcome::Aborted
                }
            }
            Err(ClientError::Busy) => SampleOutcome::Busy,
            Err(ClientError::Io(_)) | Err(ClientError::Wire(_)) => {
                // The connection is gone; everything still queued on this
                // lane is lost offered load.
                samples.push(Sample {
                    latency_us: 0,
                    done_offset_us: 0,
                    outcome: SampleOutcome::Error,
                });
                break;
            }
            Err(_) => SampleOutcome::Error,
        };
        let done = Instant::now();
        samples.push(Sample {
            latency_us: done.saturating_duration_since(target).as_micros() as u64,
            done_offset_us: done.saturating_duration_since(epoch).as_micros() as u64,
            outcome,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_right_ranks() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
        assert_eq!(percentile(&[7], 0.999), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 0.999), 100);
        assert_eq!(percentile(&v, 1.0), 100);
    }

    #[test]
    fn schedule_is_sorted_and_complete() {
        let cfg = LoadConfig {
            partitions: 2,
            nodes_per_partition: 2,
            rate_tps: 2_000.0,
            duration: SimDuration::from_millis(50),
            read_pct: 20,
            seed: 0x10AD,
            connections: 2,
        };
        let hospital = cfg.hospital();
        let jobs = schedule(&hospital);
        let direct: usize = hospital.arrivals().iter().map(Vec::len).sum();
        assert_eq!(jobs.len(), direct);
        assert!(!jobs.is_empty(), "50ms at 2k tps must produce arrivals");
        assert!(jobs.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by time");
    }
}
