//! The network front end of the 3V reproduction.
//!
//! Every other crate in the workspace drives the protocol through function
//! calls; this one puts a wire in between. It hosts the deterministic
//! sharded cluster behind a TCP server speaking a length-prefixed,
//! checksummed frame protocol (built on `threev-storage`'s wire codec),
//! ships a thin blocking client library, and carries the open-loop load
//! harness that measures the latency a real user of the protocol would
//! see.
//!
//! * [`proto`] — request/response frames, version negotiation, framed I/O;
//! * [`engine`] — the command-driven wrapper around `ShardedCluster` that
//!   executes submissions in deterministic virtual time;
//! * [`server`] — acceptor + bounded worker pool + single engine thread;
//! * [`client`] — the blocking client library;
//! * [`load`] — Poisson open-loop load generation and latency percentiles.
//!
//! Threading model and backpressure contract are documented in DESIGN.md
//! ("Network front end"). The socket layer is intentionally *not* in the
//! deterministic lint tier — wall-clock timeouts and thread scheduling
//! live here, while everything protocol-visible stays inside the
//! deterministic engine thread.

#![forbid(unsafe_code)]

pub mod client;
pub mod engine;
pub mod load;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use engine::{Engine, EngineError, TxnOutcome};
pub use proto::{Request, Response, PROTOCOL_VERSION};
pub use server::{serve, ServerConfig, ServerHandle};
