//! Loopback end-to-end: the hospital workload through real sockets.
//!
//! The headline claim: driving a 4-partition sharded cluster through the
//! TCP front end — frames, worker pool, engine thread — leaves *exactly*
//! the committed store an in-process `Engine` produces for the same
//! command sequence at the same seed. The socket layer adds transport,
//! not semantics.
//!
//! Around it, the failure-path cases the front end exists for: malformed
//! frames answered with typed errors (never a panic or a hang), half-open
//! connections reaped by the idle deadline, backpressure surfacing as
//! `Busy` when the engine queue is full, version negotiation, and
//! graceful shutdown that drains before exiting.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use threev_server::engine::Engine;
use threev_server::load::{schedule, LoadConfig};
use threev_server::proto::{codes, read_frame, Request, Response, PROTOCOL_VERSION};
use threev_server::{serve, Client, ClientError, ServerConfig};
use threev_shard::ShardedConfig;
use threev_sim::SimDuration;

const SEED: u64 = 0x3E0;
const PARTITIONS: u16 = 4;
const NODES: u16 = 2;
const ADVANCE_EVERY: u64 = 8;

fn load_config(rate_tps: f64, duration_ms: u64) -> LoadConfig {
    LoadConfig {
        partitions: PARTITIONS,
        nodes_per_partition: NODES,
        rate_tps,
        duration: SimDuration::from_millis(duration_ms),
        read_pct: 20,
        seed: SEED,
        connections: 1,
    }
}

fn fresh_engine() -> Engine {
    let hospital = load_config(1_000.0, 1).hospital();
    Engine::new(
        &hospital.schema(),
        ShardedConfig::new(PARTITIONS, NODES).seed(SEED),
        ADVANCE_EVERY,
    )
}

fn start_server(cfg: ServerConfig) -> (threev_server::ServerHandle, std::net::SocketAddr) {
    let handle = serve(fresh_engine(), cfg).expect("bind loopback");
    let addr = handle.addr();
    (handle, addr)
}

fn stop_server(handle: threev_server::ServerHandle, addr: std::net::SocketAddr) {
    if let Ok(mut c) = Client::connect(addr) {
        let _ = c.shutdown();
    } else {
        handle.request_shutdown();
    }
    handle.join().expect("server threads exit cleanly");
}

/// The tentpole: a hospital workload replayed over a real socket matches
/// the in-process driver fingerprint-for-fingerprint at the same seed.
#[test]
fn socket_run_matches_in_process_driver() {
    let jobs = schedule(&load_config(4_000.0, 60).hospital());
    assert!(jobs.len() > 50, "workload too small to be convincing");

    // In-process reference: same engine construction, same plan sequence.
    let mut reference = fresh_engine();
    let mut ref_committed = 0u64;
    for (_, plan) in &jobs {
        if reference.submit(plan).expect("in-process submit").committed {
            ref_committed += 1;
        }
    }
    let ref_fp = reference.fingerprint_hash();

    // Socket path: one connection, the same plans in the same order.
    let (handle, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.version(), PROTOCOL_VERSION);
    let mut committed = 0u64;
    for (_, plan) in &jobs {
        let out = client.submit(plan).expect("socket submit");
        if out.committed {
            committed += 1;
        }
    }
    let socket_fp = client.fingerprint().expect("fingerprint");
    let stats = client.stats().expect("stats");
    stop_server(handle, addr);

    assert_eq!(committed, ref_committed, "commit counts diverged");
    assert!(committed > 0, "nothing committed");
    assert_eq!(
        socket_fp, ref_fp,
        "socket-path store diverged from in-process driver"
    );
    assert_eq!(stats.submitted, jobs.len() as u64);
    assert_eq!(stats.committed + stats.aborted, jobs.len() as u64);
    assert!(
        stats.cross_messages > 0,
        "4-partition hospital must cross partitions"
    );
}

/// Reads through the socket see committed values once versions advance.
#[test]
fn socket_reads_observe_committed_state() {
    let (handle, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    let hospital = load_config(1_000.0, 1).hospital();
    let schema = hospital.schema();
    let key = schema.decls()[0].key;
    let node = schema.decls()[0].node;
    let plan = threev_model::TxnPlan::commuting(
        threev_model::SubtxnPlan::new(node).update(key, threev_model::UpdateOp::Add(17)),
    );
    assert!(client.submit(&plan).expect("submit").committed);
    client.trigger_advancement().expect("advance");
    let reads = client.read(&[key]).expect("read");
    assert_eq!(reads.len(), 1);
    assert_eq!(reads[0].key, key);
    assert_eq!(reads[0].value.as_counter(), Some(17));

    // Unknown keys come back as typed errors, connection intact.
    match client.read(&[threev_model::Key(u64::MAX)]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, codes::UNKNOWN_KEY),
        other => panic!("expected UNKNOWN_KEY, got {other:?}"),
    }
    // Structurally invalid plans too.
    let invalid = threev_model::TxnPlan::commuting(threev_model::SubtxnPlan::new(node));
    match client.submit(&invalid) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, codes::INVALID_PLAN),
        other => panic!("expected INVALID_PLAN, got {other:?}"),
    }
    // The connection survived both errors.
    client.stats().expect("stats after errors");
    stop_server(handle, addr);
}

/// Malformed bytes get a typed MALFORMED error and a closed connection —
/// the server neither panics nor hangs, and keeps serving others.
#[test]
fn malformed_frames_are_rejected_with_typed_errors() {
    let (handle, addr) = start_server(ServerConfig::default());

    // Garbage before Hello.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    let (kind, payload) = read_frame(&mut raw).expect("typed reply").expect("not EOF");
    match Response::decode(kind, &payload).expect("decodes") {
        Response::Error { code, .. } => assert_eq!(code, codes::MALFORMED),
        other => panic!("expected MALFORMED error, got {other:?}"),
    }
    // ... then the server closes the connection.
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).expect("EOF");
    assert!(rest.is_empty());

    // A valid header announcing a payload whose checksum does not match.
    let mut raw = TcpStream::connect(addr).expect("connect");
    let hello = Request::Hello {
        min_version: PROTOCOL_VERSION,
        max_version: PROTOCOL_VERSION,
    }
    .encode()
    .expect("encode");
    raw.write_all(&hello).expect("write hello");
    let (kind, payload) = read_frame(&mut raw).expect("hello reply").expect("not EOF");
    assert!(matches!(
        Response::decode(kind, &payload),
        Ok(Response::HelloOk { .. })
    ));
    let mut corrupt = Request::Stats.encode().expect("encode");
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF; // flip inside the header checksum field
    raw.write_all(&corrupt).expect("write corrupt");
    let (kind, payload) = read_frame(&mut raw).expect("typed reply").expect("not EOF");
    match Response::decode(kind, &payload).expect("decodes") {
        Response::Error { code, .. } => assert_eq!(code, codes::MALFORMED),
        other => panic!("expected MALFORMED error, got {other:?}"),
    }

    // The server still serves healthy clients afterwards.
    let mut client = Client::connect(addr).expect("connect after abuse");
    client.stats().expect("stats");
    stop_server(handle, addr);
}

/// A request before Hello is a protocol violation; a Hello the server
/// cannot satisfy is an unsupported-version rejection.
#[test]
fn handshake_is_enforced() {
    let (handle, addr) = start_server(ServerConfig::default());

    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(&Request::Stats.encode().expect("encode"))
        .expect("write");
    let (kind, payload) = read_frame(&mut raw).expect("reply").expect("not EOF");
    match Response::decode(kind, &payload).expect("decodes") {
        Response::Error { code, .. } => assert_eq!(code, codes::PROTOCOL_VIOLATION),
        other => panic!("expected PROTOCOL_VIOLATION, got {other:?}"),
    }

    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(
        &Request::Hello {
            min_version: 900,
            max_version: 901,
        }
        .encode()
        .expect("encode"),
    )
    .expect("write");
    let (kind, payload) = read_frame(&mut raw).expect("reply").expect("not EOF");
    match Response::decode(kind, &payload).expect("decodes") {
        Response::Error { code, .. } => assert_eq!(code, codes::UNSUPPORTED_VERSION),
        other => panic!("expected UNSUPPORTED_VERSION, got {other:?}"),
    }
    stop_server(handle, addr);
}

/// A connection that goes quiet — before or mid-frame — is reaped after
/// the idle deadline instead of pinning a worker forever.
#[test]
fn half_open_connections_are_reaped() {
    let (handle, addr) = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(300),
        workers: 1, // one worker: a leaked connection would wedge the server
        ..ServerConfig::default()
    });

    // Silent connection, then a mid-frame stall: send half a Hello frame.
    let mut quiet = TcpStream::connect(addr).expect("connect");
    let hello = Request::Hello {
        min_version: PROTOCOL_VERSION,
        max_version: PROTOCOL_VERSION,
    }
    .encode()
    .expect("encode");
    quiet.write_all(&hello[..7]).expect("half a frame");

    let start = Instant::now();
    let mut buf = Vec::new();
    quiet
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    quiet.read_to_end(&mut buf).expect("server closes");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "reap took too long: {:?}",
        start.elapsed()
    );

    // The lone worker is free again: a healthy client gets served.
    let mut client = Client::connect(addr).expect("connect after reap");
    client.stats().expect("stats");
    stop_server(handle, addr);
}

/// With a queue bound of 1 and the engine held busy, the second queued
/// request waits and the third is shed with `Busy` — the backpressure
/// contract, observed from the client side.
#[test]
fn backpressure_surfaces_as_busy() {
    let (handle, addr) = start_server(ServerConfig {
        queue_capacity: 1,
        allow_stall: true,
        ..ServerConfig::default()
    });

    // Hold the engine for long enough to stage the queue behind it.
    let mut staller = Client::connect(addr).expect("connect staller");
    let stall_thread = std::thread::spawn(move || staller.stall(900));
    // Let the engine dequeue the stall (frees the queue slot).
    std::thread::sleep(Duration::from_millis(250));

    // Occupies the single queue slot for the stall's remainder.
    let mut waiter = Client::connect(addr).expect("connect waiter");
    let waiter_thread = std::thread::spawn(move || waiter.stats());
    std::thread::sleep(Duration::from_millis(200));

    // Queue full: this one must bounce, quickly and typed.
    let mut shed = Client::connect(addr).expect("connect shed");
    let started = Instant::now();
    match shed.stats() {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(300),
        "Busy must be immediate, took {:?}",
        started.elapsed()
    );

    stall_thread.join().expect("join").expect("stall ok");
    let stats = waiter_thread
        .join()
        .expect("join")
        .expect("queued request eventually served");
    assert!(stats.busy_rejections >= 1, "rejection must be counted");

    // Stall is a harness hook: servers without allow_stall refuse it.
    stop_server(handle, addr);
    let (handle, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    match client.stall(10) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, codes::STALL_DISABLED),
        other => panic!("expected STALL_DISABLED, got {other:?}"),
    }
    stop_server(handle, addr);
}

/// Shutdown over the wire: Ok to the requester, SHUTTING_DOWN or a
/// closed socket to everyone after, and every thread exits.
#[test]
fn graceful_shutdown_drains_and_exits() {
    let (handle, addr) = start_server(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    assert!(client.submit(&simple_plan()).expect("submit").committed);
    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("all server threads exited");

    // The listener is gone (give the OS a beat to tear it down).
    std::thread::sleep(Duration::from_millis(100));
    if let Ok(mut c) = Client::connect(addr) {
        // Accepted by a dying listener backlog at worst — any request
        // must fail now.
        assert!(c.stats().is_err());
    }
}

fn simple_plan() -> threev_model::TxnPlan {
    let schema = load_config(1_000.0, 1).hospital().schema();
    let d = &schema.decls()[0];
    threev_model::TxnPlan::commuting(
        threev_model::SubtxnPlan::new(d.node).update(d.key, threev_model::UpdateOp::Add(1)),
    )
}
