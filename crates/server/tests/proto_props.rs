//! Property suite for the client protocol.
//!
//! Two claims, checked over generated inputs:
//!
//! 1. **Round-trip**: every request/response the protocol can express
//!    survives encode → frame-decode → payload-decode unchanged.
//! 2. **No panic on garbage**: arbitrary byte soup — including
//!    truncations and bit-flipped corruptions of *valid* frames — either
//!    decodes or returns a `WireError`. The decoder must degrade, never
//!    panic, because these bytes arrive from the network.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

use threev_model::{
    Key, NodeId, OpStep, SubtxnPlan, TxnId, TxnKind, TxnPlan, UpdateOp, Value, VersionNo,
};
use threev_server::proto::{codes, ReadResult, Request, Response, ServerStats};
use threev_storage::wire::decode_frame;

fn key() -> impl Strategy<Value = Key> {
    (0u64..=u64::MAX).prop_map(Key)
}

fn node() -> impl Strategy<Value = NodeId> {
    (0u16..=u16::MAX).prop_map(NodeId)
}

fn txn_id() -> impl Strategy<Value = TxnId> {
    ((0u64..=u64::MAX), node()).prop_map(|(seq, origin)| TxnId::new(seq, origin))
}

fn version() -> impl Strategy<Value = Option<VersionNo>> {
    prop_oneof![
        Just(None),
        (0u32..=u32::MAX).prop_map(|v| Some(VersionNo(v))),
    ]
}

fn update_op() -> impl Strategy<Value = UpdateOp> {
    prop_oneof![
        (i64::MIN..=i64::MAX).prop_map(UpdateOp::Add),
        ((i64::MIN..=i64::MAX), (0u32..=u32::MAX))
            .prop_map(|(amount, tag)| UpdateOp::Append { amount, tag }),
        ((i64::MIN..=i64::MAX), (0u32..=u32::MAX))
            .prop_map(|(amount, tag)| UpdateOp::Retract { amount, tag }),
        (i64::MIN..=i64::MAX).prop_map(UpdateOp::Assign),
    ]
}

fn op_step() -> impl Strategy<Value = OpStep> {
    prop_oneof![
        key().prop_map(OpStep::Read),
        (key(), update_op()).prop_map(|(k, op)| OpStep::Update(k, op)),
    ]
}

fn leaf_plan() -> impl Strategy<Value = SubtxnPlan> {
    (node(), vec(op_step(), 0..5)).prop_map(|(n, steps)| {
        let mut p = SubtxnPlan::new(n);
        p.steps = steps;
        p
    })
}

/// A subtransaction tree up to three levels deep.
fn sub_plan() -> impl Strategy<Value = SubtxnPlan> {
    (
        leaf_plan(),
        vec((leaf_plan(), vec(leaf_plan(), 0..3)), 0..3),
    )
        .prop_map(|(mut root, children)| {
            for (mut mid, leaves) in children {
                for leaf in leaves {
                    mid.children.push(leaf);
                }
                root.children.push(mid);
            }
            root
        })
}

fn txn_plan() -> impl Strategy<Value = TxnPlan> {
    (0u8..3, sub_plan()).prop_map(|(kind, root)| TxnPlan {
        kind: match kind {
            0 => TxnKind::ReadOnly,
            1 => TxnKind::Commuting,
            _ => TxnKind::NonCommuting,
        },
        root,
    })
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (i64::MIN..=i64::MAX).prop_map(Value::Counter),
        (i64::MIN..=i64::MAX).prop_map(Value::Register),
        vec((txn_id(), i64::MIN..=i64::MAX, 0u32..=u32::MAX), 0..4).prop_map(|entries| {
            Value::Journal(
                entries
                    .into_iter()
                    .map(|(txn, amount, tag)| threev_model::JournalEntry { txn, amount, tag })
                    .collect(),
            )
        }),
    ]
}

fn read_result() -> impl Strategy<Value = ReadResult> {
    (key(), version(), value()).prop_map(|(key, version, value)| ReadResult {
        key,
        version,
        value,
    })
}

fn message() -> impl Strategy<Value = String> {
    vec(32u8..127, 0..40).prop_map(|bytes| {
        bytes.into_iter().map(char::from).collect::<String>() + "·µ€" // non-ASCII survives too
    })
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        ((0u16..=u16::MAX), (0u16..=u16::MAX)).prop_map(|(min_version, max_version)| {
            Request::Hello {
                min_version,
                max_version,
            }
        }),
        txn_plan().prop_map(|plan| Request::Submit { plan }),
        vec(key(), 0..8).prop_map(|keys| Request::Read { keys }),
        Just(Request::Stats),
        Just(Request::TriggerAdvancement),
        Just(Request::Fingerprint),
        (0u32..=u32::MAX).prop_map(|millis| Request::Stall { millis }),
        Just(Request::Shutdown),
    ]
}

fn stats() -> impl Strategy<Value = ServerStats> {
    (
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
    )
        .prop_map(
            |(
                submitted,
                committed,
                aborted,
                reads_served,
                advancements,
                busy_rejections,
                cross_messages,
                virtual_now_us,
            )| ServerStats {
                submitted,
                committed,
                aborted,
                reads_served,
                advancements,
                busy_rejections,
                cross_messages,
                virtual_now_us,
            },
        )
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (0u16..=u16::MAX).prop_map(|version| Response::HelloOk { version }),
        (txn_id(), 0u8..2, version()).prop_map(|(txn, c, version)| Response::TxnDone {
            txn,
            committed: c == 1,
            version,
        }),
        vec(read_result(), 0..5).prop_map(|reads| Response::ReadOk { reads }),
        stats().prop_map(|stats| Response::StatsOk { stats }),
        Just(Response::Ok),
        ((0u64..=u64::MAX), (0u32..=u32::MAX), (0u64..=u64::MAX))
            .prop_map(|(hash, nodes, keys)| Response::FingerprintOk { hash, nodes, keys }),
        Just(Response::Busy),
        ((1u8..=8), message()).prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn every_request_round_trips(req in request()) {
        let frame = req.encode().expect("generated requests fit the frame bound");
        let (header, payload) = decode_frame(&frame).expect("self-encoded frame decodes");
        prop_assert_eq!(Request::decode(header.kind, payload).expect("payload decodes"), req);
    }

    #[test]
    fn every_response_round_trips(resp in response()) {
        let frame = resp.encode().expect("generated responses fit the frame bound");
        let (header, payload) = decode_frame(&frame).expect("self-encoded frame decodes");
        prop_assert_eq!(Response::decode(header.kind, payload).expect("payload decodes"), resp);
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in vec(0u8..=255, 0..200)) {
        // Whatever comes back, it must come back as a value, not a panic.
        if let Ok((header, payload)) = decode_frame(&bytes) {
            let _ = Request::decode(header.kind, payload);
            let _ = Response::decode(header.kind, payload);
        }
    }

    #[test]
    fn corrupted_valid_frames_never_panic(req in request(), flips in vec((0u64..=u64::MAX, 0u8..8), 1..6)) {
        let mut frame = req.encode().expect("encodes");
        for (pos, bit) in flips {
            let i = (pos % frame.len() as u64) as usize;
            frame[i] ^= 1 << bit;
        }
        if let Ok((header, payload)) = decode_frame(&frame) {
            let _ = Request::decode(header.kind, payload);
        }
    }

    #[test]
    fn truncations_of_valid_frames_never_panic(resp in response(), cut in 0u64..=u64::MAX) {
        let frame = resp.encode().expect("encodes");
        let len = (cut % frame.len() as u64) as usize;
        if let Ok((header, payload)) = decode_frame(&frame[..len]) {
            let _ = Response::decode(header.kind, payload);
        }
    }
}

/// A deterministic brute loop on top of the properties: every single-byte
/// corruption of one representative frame of *each* kind is fed to the
/// decoder. Complements the sampled flips above with full coverage of one
/// exemplar per message.
#[test]
fn exhaustive_single_byte_corruption_of_exemplars() {
    let mut rng = TestRng::with_seed(0xC0_44_07);
    let exemplars: Vec<Vec<u8>> = vec![
        request().generate(&mut rng).encode().unwrap(),
        Request::Stats.encode().unwrap(),
        Request::Submit {
            plan: txn_plan().generate(&mut rng),
        }
        .encode()
        .unwrap(),
        response().generate(&mut rng).encode().unwrap(),
        Response::Busy.encode().unwrap(),
        Response::Error {
            code: codes::MALFORMED,
            message: "x".into(),
        }
        .encode()
        .unwrap(),
    ];
    for frame in exemplars {
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                if let Ok((header, payload)) = decode_frame(&bad) {
                    let _ = Request::decode(header.kind, payload);
                    let _ = Response::decode(header.kind, payload);
                }
            }
        }
        for len in 0..frame.len() {
            if let Ok((header, payload)) = decode_frame(&frame[..len]) {
                let _ = Request::decode(header.kind, payload);
                let _ = Response::decode(header.kind, payload);
            }
        }
    }
}
