//! Property tests for the key-range router: the placement map must be a
//! total, gap-free, overlap-free function of the keyspace, deterministic
//! across recreation, and refine cleanly when the cluster grows.

use proptest::prelude::*;
use threev_model::PartitionId;
use threev_shard::KeyRangeRouter;

/// Reference implementation: linear scan over the ranges.
fn linear_partition_of(r: &KeyRangeRouter, x: u64) -> PartitionId {
    for p in 0..r.n_partitions() {
        let (lo, hi) = r.range(PartitionId(p));
        if lo <= x && x < hi {
            return PartitionId(p);
        }
    }
    unreachable!("key {x} not covered by any range — keyspace has a gap");
}

/// Derive a valid span (>= n) from a raw random value.
fn span_for(n: u16, raw: u64) -> u64 {
    u64::from(n) + raw % 2_000_000
}

proptest! {
    /// Every key of the span belongs to exactly one partition: the binary
    /// search agrees with the linear scan (no gaps, no overlaps), and the
    /// reported range contains the key.
    #[test]
    fn uniform_covers_without_gaps_or_overlaps(
        n in 1u16..300,
        raw_span in any::<u64>(),
        probes in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let span = span_for(n, raw_span);
        let r = KeyRangeRouter::uniform(n, span);
        prop_assert_eq!(r.n_partitions(), n);
        for raw in probes {
            let x = raw % span;
            let p = r.partition_of(x);
            prop_assert_eq!(p, linear_partition_of(&r, x));
            let (lo, hi) = r.range(p);
            prop_assert!(lo <= x && x < hi);
        }
        // Boundary keys of every range route back to that range.
        for p in 0..n {
            let (lo, hi) = r.range(PartitionId(p));
            prop_assert_eq!(r.partition_of(lo), PartitionId(p));
            prop_assert_eq!(r.partition_of(hi - 1), PartitionId(p));
        }
    }

    /// Ranges tile the span exactly (sum of sizes == span) and uniform
    /// ranges are balanced to within one key.
    #[test]
    fn uniform_is_balanced(n in 1u16..300, raw_span in any::<u64>()) {
        let span = span_for(n, raw_span);
        let r = KeyRangeRouter::uniform(n, span);
        let mut sizes = Vec::new();
        for p in 0..n {
            let (lo, hi) = r.range(PartitionId(p));
            prop_assert!(hi > lo, "empty range at partition {}", p);
            sizes.push(hi - lo);
        }
        prop_assert_eq!(sizes.iter().sum::<u64>(), span);
        let min = sizes.iter().min().copied().unwrap_or(0);
        let max = sizes.iter().max().copied().unwrap_or(0);
        prop_assert!(max - min <= 1, "imbalance: min {}, max {}", min, max);
    }

    /// Routing is a pure function of (n, span): recreating the router
    /// yields the same placement, and `partition_of` is monotone in the
    /// key (contiguous ranges in ascending partition order).
    #[test]
    fn routing_is_deterministic_and_monotone(
        n in 1u16..300,
        raw_span in any::<u64>(),
        probes in proptest::collection::vec(any::<u64>(), 2..50),
    ) {
        let span = span_for(n, raw_span);
        let a = KeyRangeRouter::uniform(n, span);
        let b = KeyRangeRouter::uniform(n, span);
        prop_assert_eq!(&a, &b);
        let mut keys: Vec<u64> = probes.into_iter().map(|raw| raw % span).collect();
        keys.sort_unstable();
        for pair in keys.windows(2) {
            prop_assert!(a.partition_of(pair[0]) <= a.partition_of(pair[1]));
        }
    }

    /// Stability under partition-count changes: scaling the cluster by an
    /// integer factor only *splits* ranges. Every old boundary survives,
    /// so no key crosses a surviving boundary — the refined placement is
    /// consistent with the coarse one (fine partition ⊆ coarse partition).
    #[test]
    fn integer_scaling_refines_ranges(
        n in 1u16..60,
        factor in 2u16..8,
        span_mult in 1u64..4_000,
        probes in proptest::collection::vec(any::<u64>(), 1..30),
    ) {
        let m = n * factor;
        let span = u64::from(m) * span_mult; // span large enough for both
        let coarse = KeyRangeRouter::uniform(n, span);
        let fine = KeyRangeRouter::uniform(m, span);
        // Old boundaries survive refinement.
        for p in 0..n {
            let (lo, _) = coarse.range(PartitionId(p));
            let q = fine.partition_of(lo);
            prop_assert_eq!(fine.range(q).0, lo, "coarse boundary {} moved", lo);
        }
        // Each key's fine range nests inside its coarse range.
        for raw in probes {
            let x = raw % span;
            let (clo, chi) = coarse.range(coarse.partition_of(x));
            let (flo, fhi) = fine.range(fine.partition_of(x));
            prop_assert!(clo <= flo && fhi <= chi,
                "fine range [{},{}) of key {} straddles coarse [{},{})",
                flo, fhi, x, clo, chi);
        }
    }
}
