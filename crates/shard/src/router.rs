//! Key-range routing: which partition owns which slice of the keyspace.
//!
//! The router is the *placement* half of sharding: a total, gap-free,
//! overlap-free map from a `u64` record-id space onto
//! [`PartitionId`]s, as contiguous half-open ranges. Contiguity is what
//! makes the map auditable — the whole placement is `n` boundary values,
//! and membership is one binary search.
//!
//! [`KeyRangeRouter::uniform`] has a refinement property the proptests
//! pin: growing a cluster by an integer factor only *splits* existing
//! ranges, it never moves a key across a surviving boundary. That keeps
//! resharding traffic proportional to the data actually changing owner.

use std::fmt;

use threev_model::PartitionId;

/// A contiguous key-range partitioning of the id space `[0, span)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyRangeRouter {
    span: u64,
    /// `boundaries[i]` is the first id of partition `i`'s range;
    /// `boundaries[0] == 0` and the values are strictly increasing, so
    /// partition `i` owns `[boundaries[i], boundaries[i + 1])` (the last
    /// range is capped by `span`).
    boundaries: Vec<u64>,
}

/// Why a boundary vector does not describe a valid partitioning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouterError {
    /// The keyspace is empty.
    EmptySpan,
    /// No partitions were given.
    NoPartitions,
    /// More partitions than distinct keys (some range would be empty), or
    /// more than `u16::MAX` partitions.
    TooManyPartitions { partitions: usize, span: u64 },
    /// `boundaries[0]` must be 0 so the ranges cover the space from the
    /// bottom.
    FirstBoundaryNonZero(u64),
    /// Boundaries must be strictly increasing (an equal or decreasing pair
    /// would make a range empty or overlapping).
    NotStrictlyIncreasing { index: usize },
    /// A boundary at or past `span` would make the last range(s) empty.
    BoundaryPastSpan { boundary: u64, span: u64 },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::EmptySpan => write!(f, "keyspace span must be non-zero"),
            RouterError::NoPartitions => write!(f, "at least one partition is required"),
            RouterError::TooManyPartitions { partitions, span } => write!(
                f,
                "{partitions} partitions cannot each own a non-empty range of a {span}-key space"
            ),
            RouterError::FirstBoundaryNonZero(b) => {
                write!(f, "first boundary must be 0, got {b}")
            }
            RouterError::NotStrictlyIncreasing { index } => {
                write!(
                    f,
                    "boundaries must be strictly increasing (violated at index {index})"
                )
            }
            RouterError::BoundaryPastSpan { boundary, span } => {
                write!(f, "boundary {boundary} is outside the keyspace [0, {span})")
            }
        }
    }
}

impl std::error::Error for RouterError {}

impl KeyRangeRouter {
    /// Partition `[0, span)` into `n_partitions` ranges of near-equal size
    /// (sizes differ by at most one key).
    ///
    /// # Panics
    /// Panics when the arguments cannot form a valid partitioning (zero
    /// partitions, or fewer keys than partitions); construction parameters
    /// are static configuration, so failing fast is the right behaviour.
    /// Use [`KeyRangeRouter::from_boundaries`] for fallible construction.
    pub fn uniform(n_partitions: u16, span: u64) -> Self {
        assert!(n_partitions >= 1, "at least one partition is required");
        assert!(
            span >= u64::from(n_partitions),
            "{n_partitions} partitions need a keyspace of at least that many keys, got {span}"
        );
        let n = u64::from(n_partitions);
        let boundaries = (0..n)
            // u128 so `i * span` cannot overflow for spans near u64::MAX.
            .map(|i| ((u128::from(i) * u128::from(span)) / u128::from(n)) as u64)
            .collect();
        KeyRangeRouter { span, boundaries }
    }

    /// Build a router from explicit range starts. `boundaries[i]` is the
    /// first key of partition `i`; validity rules are in [`RouterError`].
    pub fn from_boundaries(span: u64, boundaries: Vec<u64>) -> Result<Self, RouterError> {
        if span == 0 {
            return Err(RouterError::EmptySpan);
        }
        if boundaries.is_empty() {
            return Err(RouterError::NoPartitions);
        }
        if boundaries.len() > usize::from(u16::MAX) || boundaries.len() as u64 > span {
            return Err(RouterError::TooManyPartitions {
                partitions: boundaries.len(),
                span,
            });
        }
        if boundaries[0] != 0 {
            return Err(RouterError::FirstBoundaryNonZero(boundaries[0]));
        }
        for (i, pair) in boundaries.windows(2).enumerate() {
            if pair[1] <= pair[0] {
                return Err(RouterError::NotStrictlyIncreasing { index: i + 1 });
            }
        }
        if let Some(&last) = boundaries.last() {
            if last >= span {
                return Err(RouterError::BoundaryPastSpan {
                    boundary: last,
                    span,
                });
            }
        }
        Ok(KeyRangeRouter { span, boundaries })
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> u16 {
        self.boundaries.len() as u16
    }

    /// Size of the routed keyspace.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// The partition owning key `x`.
    ///
    /// # Panics
    /// Panics when `x` is outside `[0, span)` — routing an undeclared key
    /// is a schema/workload bug, not a runtime condition.
    pub fn partition_of(&self, x: u64) -> PartitionId {
        assert!(
            x < self.span,
            "key {x} outside routed keyspace [0, {})",
            self.span
        );
        // partition_point returns the count of boundaries <= x, which is
        // >= 1 because boundaries[0] == 0.
        let idx = self.boundaries.partition_point(|&b| b <= x) - 1;
        PartitionId(idx as u16)
    }

    /// The half-open key range `[lo, hi)` owned by partition `p`.
    ///
    /// # Panics
    /// Panics when `p` is not one of this router's partitions.
    pub fn range(&self, p: PartitionId) -> (u64, u64) {
        assert!(
            p.index() < self.boundaries.len(),
            "partition {p} outside router with {} partitions",
            self.boundaries.len()
        );
        let lo = self.boundaries[p.index()];
        let hi = self
            .boundaries
            .get(p.index() + 1)
            .copied()
            .unwrap_or(self.span);
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_and_balances() {
        let r = KeyRangeRouter::uniform(4, 10);
        assert_eq!(r.n_partitions(), 4);
        let sizes: Vec<u64> = (0..4)
            .map(|p| {
                let (lo, hi) = r.range(PartitionId(p));
                hi - lo
            })
            .collect();
        assert_eq!(sizes.iter().sum::<u64>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
        for x in 0..10 {
            let p = r.partition_of(x);
            let (lo, hi) = r.range(p);
            assert!(lo <= x && x < hi);
        }
    }

    #[test]
    fn single_partition_owns_everything() {
        let r = KeyRangeRouter::uniform(1, 1 << 40);
        assert_eq!(r.partition_of(0), PartitionId(0));
        assert_eq!(r.partition_of((1 << 40) - 1), PartitionId(0));
        assert_eq!(r.range(PartitionId(0)), (0, 1 << 40));
    }

    #[test]
    fn explicit_boundaries_validate() {
        assert!(KeyRangeRouter::from_boundaries(10, vec![0, 4, 7]).is_ok());
        assert_eq!(
            KeyRangeRouter::from_boundaries(0, vec![0]),
            Err(RouterError::EmptySpan)
        );
        assert_eq!(
            KeyRangeRouter::from_boundaries(10, vec![]),
            Err(RouterError::NoPartitions)
        );
        assert_eq!(
            KeyRangeRouter::from_boundaries(10, vec![1, 4]),
            Err(RouterError::FirstBoundaryNonZero(1))
        );
        assert_eq!(
            KeyRangeRouter::from_boundaries(10, vec![0, 4, 4]),
            Err(RouterError::NotStrictlyIncreasing { index: 2 })
        );
        assert_eq!(
            KeyRangeRouter::from_boundaries(10, vec![0, 10]),
            Err(RouterError::BoundaryPastSpan {
                boundary: 10,
                span: 10
            })
        );
        assert_eq!(
            KeyRangeRouter::from_boundaries(2, vec![0, 1, 2]),
            Err(RouterError::TooManyPartitions {
                partitions: 3,
                span: 2
            })
        );
    }

    #[test]
    #[should_panic(expected = "outside routed keyspace")]
    fn out_of_span_key_panics() {
        KeyRangeRouter::uniform(2, 10).partition_of(10);
    }
}
