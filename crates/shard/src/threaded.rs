//! Real-thread hosting of a sharded cluster.
//!
//! The threaded runtime ([`ThreadedRun`]) hosts every actor of a dense
//! `0..n` id space on its own thread and routes messages over channels —
//! it never cares which partition an actor belongs to. A sharded cluster
//! is therefore just a particular actor vector: the partition blocks of
//! [`build_partition_actors`], concatenated in partition order, so that
//! actor `i` of the vector carries global id `i`. Each partition's
//! coordinator thread *is* that partition's advancement loop; gauge node
//! ids are never message targets, so the router's dense-id assumption
//! holds.
//!
//! Wall-clock runs are not bit-comparable to the DES shuttle (real time
//! replaces virtual time), but they exercise the same engine code; the
//! `driver_equivalence` suite covers the single-partition equivalence.

use std::time::Duration;

use threev_analysis::TxnRecord;
use threev_core::client::Arrival;
use threev_core::cluster::{build_partition_actors, ClusterActor};
use threev_model::{PartitionId, Schema};
use threev_runtime::{ThreadedReport, ThreadedRun};

use crate::cluster::ShardedConfig;

/// Build the dense global actor vector of a sharded cluster: partition
/// `p`'s nodes, coordinator, and client occupy global ids
/// `base(p) .. base(p) + stride`.
///
/// # Panics
/// Panics unless `arrivals` has exactly one stream per partition.
pub fn build_sharded_actors(
    schema: &Schema,
    cfg: &ShardedConfig,
    arrivals: Vec<Vec<Arrival>>,
) -> Vec<ClusterActor> {
    let topo = cfg.topology;
    assert_eq!(
        arrivals.len(),
        usize::from(topo.n_partitions()),
        "one arrival stream per partition"
    );
    let ccfg = cfg.cluster_config();
    let mut actors =
        Vec::with_capacity(usize::from(topo.n_partitions()) * usize::from(topo.stride()));
    for (p, stream) in arrivals.into_iter().enumerate() {
        actors.extend(build_partition_actors(
            schema,
            &ccfg,
            stream,
            PartitionId(p as u16),
        ));
    }
    actors
}

/// Run a sharded cluster on real threads for `duration` of wall time
/// (plus a `drain` grace period), returning every partition's transaction
/// records (in partition order) and the runtime report.
pub fn run_sharded_threaded(
    schema: &Schema,
    cfg: &ShardedConfig,
    arrivals: Vec<Vec<Arrival>>,
    duration: Duration,
    drain: Duration,
) -> (Vec<TxnRecord>, ThreadedReport) {
    let actors = build_sharded_actors(schema, cfg, arrivals);
    let (actors, report) = ThreadedRun::run(actors, cfg.sim.clone(), duration, drain);
    let mut records = Vec::new();
    for actor in actors {
        if let ClusterActor::Client(c) = actor {
            records.extend(c.into_records());
        }
    }
    (records, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use threev_analysis::TxnStatus;
    use threev_sim::SimDuration;
    use threev_workload::HospitalWorkload;

    use crate::workload::ShardedHospital;

    #[test]
    fn sharded_actor_vector_is_dense_and_block_ordered() {
        let cfg = ShardedConfig::new(2, 2);
        let hospital = ShardedHospital::new(
            HospitalWorkload {
                departments: 4,
                patients: 5,
                rate_tps: 500.0,
                read_pct: 0,
                max_fanout: 2,
                duration: SimDuration::from_millis(20),
                zipf_s: 0.9,
                seed: 1,
            },
            cfg.topology,
        );
        let actors = build_sharded_actors(&hospital.schema(), &cfg, hospital.arrivals());
        assert_eq!(actors.len(), 8, "2 partitions x (2 nodes + coord + client)");
        for (i, a) in actors.iter().enumerate() {
            let expected = match i % 4 {
                0 | 1 => matches!(a, ClusterActor::Node(_)),
                2 => matches!(a, ClusterActor::Coordinator(_)),
                _ => matches!(a, ClusterActor::Client(_)),
            };
            assert!(expected, "unexpected actor kind at slot {i}");
        }
    }

    /// Smoke: a 2x2 sharded cluster on real threads commits disjoint
    /// traffic. Kept tiny — wall-clock tests must stay fast.
    #[test]
    fn threaded_sharded_smoke() {
        let cfg = ShardedConfig::new(2, 2).seed(17);
        let hospital = ShardedHospital::new(
            HospitalWorkload {
                departments: 4,
                patients: 5,
                rate_tps: 200.0,
                read_pct: 0,
                max_fanout: 2,
                duration: SimDuration::from_millis(50),
                zipf_s: 0.9,
                seed: 17,
            },
            cfg.topology,
        )
        .confined();
        let (records, report) = run_sharded_threaded(
            &hospital.schema(),
            &cfg,
            hospital.arrivals(),
            Duration::from_millis(200),
            Duration::from_millis(200),
        );
        assert!(!records.is_empty(), "workload produced no transactions");
        assert!(
            records.iter().all(|r| r.status == TxnStatus::Committed),
            "confined commuting traffic must all commit"
        );
        assert_eq!(report.messages_per_actor.len(), 8);
    }
}
