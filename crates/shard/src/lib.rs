#![forbid(unsafe_code)]
//! Multi-partition scale-out for the 3V protocol.
//!
//! The single-coordinator core (`threev-core`) advances versions for one
//! partition of nodes. This crate composes many such partitions into a
//! **sharded cluster**: a [`KeyRangeRouter`] maps the record-id keyspace
//! onto partitions, each partition runs its own independent advancement
//! loop (its own [`threev_core::advance::Coordinator`]), and transactions
//! whose subtransaction trees span partitions execute as ordinary 3V
//! trees whose children land on foreign nodes.
//!
//! Cross-partition correctness rests on two core-layer mechanisms (see
//! `DESIGN.md`, "Sharding & cross-partition trees"):
//!
//! * **Gauge counters** — R/C counters keyed per *partition pair* through
//!   reserved sentinel node ids ([`threev_model::GAUGE_BASE`]), so a
//!   partition's advancement only waits on peers it has live traffic
//!   with: with no cross traffic the gauge rows are absent and the
//!   counter matrix is exactly the single-partition one.
//! * **Resolution pins** — a shipper of a cross-partition child holds its
//!   gauge row open until the whole tree resolves, preventing a foreign
//!   partition from advancing past a version that still has in-flight
//!   compensation headed its way.
//!
//! With one partition ([`Topology::is_single`]), every code path in this
//! crate reduces bit-for-bit to the single-cluster
//! [`threev_core::cluster::ThreeVCluster`] — pinned by tests.
//!
//! [`Topology::is_single`]: threev_model::Topology::is_single

pub mod cluster;
pub mod router;
pub mod threaded;
pub mod workload;

pub use cluster::{ShardOutcome, ShardedCluster, ShardedConfig, SubmitError};
pub use router::{KeyRangeRouter, RouterError};
pub use workload::ShardedHospital;
